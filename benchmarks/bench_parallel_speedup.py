"""Serial vs parallel ATC encode throughput on a synthetic 1 M-address trace.

The paper gets its single-pass speed by overlapping compression with trace
generation (an external ``bzip2 -c`` process on another core); this bench
records how well the in-process reproduction of that overlap — the
``workers`` thread pool of the chunk pipeline — scales on the machine the
harness runs on.  Two benchmarks compress the *same* trace with the same
configuration, once with ``workers=1`` (fully serial) and once with
``workers=4``; the ratio of the two medians is the pipeline speedup, and
the containers are asserted byte-identical (the pipeline's hard invariant).

On a single-core runner the two times are expected to be equal; the stdlib
codecs release the GIL, so the speedup materialises with the hardware.
Throughput is recorded as addresses/second in the ``extra_info`` of the
JSON payload so the perf trajectory (BENCH_*.json) captures the win.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.atc import MODE_LOSSLESS, compress_trace
from repro.core.lossy import LossyConfig

#: Addresses in the synthetic trace (the acceptance scenario's 1 M).
TRACE_ADDRESSES = 1_000_000

#: Bytesort buffer / chunk size: 8 chunks of 125 k addresses each, enough
#: chunk-level parallelism for a 4-worker pool to stay busy.
CHUNK_ADDRESSES = 125_000

PARALLEL_WORKERS = 4


@pytest.fixture(scope="module")
def speedup_trace() -> np.ndarray:
    """A phased synthetic trace of 1 M addresses (mixed compressibility)."""
    rng = np.random.default_rng(2009)
    pieces = []
    for phase in range(8):
        base = (phase % 4) * 0x0800_0000
        if phase % 2 == 0:
            start = base + phase * 64
            pieces.append(np.arange(start, start + TRACE_ADDRESSES // 8, dtype=np.uint64))
        else:
            pieces.append(
                rng.integers(base, base + (1 << 22), size=TRACE_ADDRESSES // 8, dtype=np.uint64)
            )
    return np.concatenate(pieces)


def _container_digest(directory: Path) -> str:
    digest = hashlib.sha256()
    for entry in sorted(directory.iterdir()):
        digest.update(entry.name.encode())
        digest.update(entry.read_bytes())
    return digest.hexdigest()


def _encode(trace: np.ndarray, directory: Path, workers: int) -> Path:
    config = LossyConfig(
        chunk_buffer_addresses=CHUNK_ADDRESSES, backend="bz2", workers=workers
    )
    compress_trace(trace, directory, mode=MODE_LOSSLESS, config=config)
    return directory


def _bench_encode(benchmark, tmp_path_factory, trace, workers, label):
    counter = iter(range(1_000_000))

    def run():
        directory = tmp_path_factory.mktemp(f"{label}-{next(counter)}") / "container"
        return _encode(trace, directory, workers)

    directory = benchmark(run)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["trace_addresses"] = int(trace.size)
    benchmark.extra_info["addresses_per_second"] = trace.size / benchmark.stats.stats.median
    return _container_digest(directory)


def test_encode_serial_1m(benchmark, tmp_path_factory, speedup_trace):
    """Baseline: 1 M addresses, bz2 chunks, one worker."""
    digest = _bench_encode(benchmark, tmp_path_factory, speedup_trace, 1, "serial")
    benchmark.extra_info["container_sha256"] = digest


def test_encode_parallel_1m(benchmark, tmp_path_factory, speedup_trace):
    """Pipeline: same trace, four workers; container must be byte-identical."""
    digest = _bench_encode(
        benchmark, tmp_path_factory, speedup_trace, PARALLEL_WORKERS, "parallel"
    )
    benchmark.extra_info["container_sha256"] = digest
    serial_dir = tmp_path_factory.mktemp("serial-ref") / "container"
    _encode(speedup_trace, serial_dir, workers=1)
    assert digest == _container_digest(serial_dir), (
        "parallel container must be byte-identical to the serial one"
    )
