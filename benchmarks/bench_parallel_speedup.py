"""Serial vs parallel ATC encode throughput on a synthetic 1 M-address trace.

The paper gets its single-pass speed by overlapping compression with trace
generation (an external ``bzip2 -c`` process on another core); this bench
records how well the in-process reproduction of that overlap — the chunk
pipeline on the selected executor — scales on the machine the harness runs
on.  Two benchmarks compress the *same* trace with the same configuration,
once with ``workers=1`` (fully serial) and once with ``workers=4`` on the
``--executor`` strategy (threads by default, ``--executor process`` for the
shared-memory process pool); the ratio of the two medians is the pipeline
speedup, and the containers are asserted byte-identical (the pipeline's
hard invariant).

On a single-core runner the two times are expected to be equal; the
speedup materialises with the hardware.  On a host with at least four CPUs
a dedicated acceptance test asserts the process pipeline reaches >= 1.8x
at four workers.  Throughput is recorded as addresses/second in the
``extra_info`` of the JSON payload so the perf trajectory (BENCH_*.json)
captures the win.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.atc import MODE_LOSSLESS, compress_trace
from repro.core.lossy import LossyConfig

#: Addresses in the synthetic trace (the acceptance scenario's 1 M).
TRACE_ADDRESSES = 1_000_000

#: Bytesort buffer / chunk size: 8 chunks of 125 k addresses each, enough
#: chunk-level parallelism for a 4-worker pool to stay busy.
CHUNK_ADDRESSES = 125_000

PARALLEL_WORKERS = 4


@pytest.fixture(scope="module")
def speedup_trace() -> np.ndarray:
    """A phased synthetic trace of 1 M addresses (mixed compressibility)."""
    rng = np.random.default_rng(2009)
    pieces = []
    for phase in range(8):
        base = (phase % 4) * 0x0800_0000
        if phase % 2 == 0:
            start = base + phase * 64
            pieces.append(np.arange(start, start + TRACE_ADDRESSES // 8, dtype=np.uint64))
        else:
            pieces.append(
                rng.integers(base, base + (1 << 22), size=TRACE_ADDRESSES // 8, dtype=np.uint64)
            )
    return np.concatenate(pieces)


def _container_digest(directory: Path) -> str:
    digest = hashlib.sha256()
    for entry in sorted(directory.iterdir()):
        digest.update(entry.name.encode())
        digest.update(entry.read_bytes())
    return digest.hexdigest()


def _encode(trace: np.ndarray, directory: Path, workers: int, executor=None) -> Path:
    config = LossyConfig(
        chunk_buffer_addresses=CHUNK_ADDRESSES, backend="bz2", workers=workers, executor=executor
    )
    compress_trace(trace, directory, mode=MODE_LOSSLESS, config=config)
    return directory


def _bench_encode(benchmark, tmp_path_factory, trace, workers, label, executor=None):
    counter = iter(range(1_000_000))

    def run():
        directory = tmp_path_factory.mktemp(f"{label}-{next(counter)}") / "container"
        return _encode(trace, directory, workers, executor)

    directory = benchmark(run)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["executor"] = executor or "auto"
    benchmark.extra_info["trace_addresses"] = int(trace.size)
    benchmark.extra_info["addresses_per_second"] = trace.size / benchmark.stats.stats.median
    return _container_digest(directory)


def test_encode_serial_1m(benchmark, tmp_path_factory, speedup_trace):
    """Baseline: 1 M addresses, bz2 chunks, one worker."""
    digest = _bench_encode(benchmark, tmp_path_factory, speedup_trace, 1, "serial")
    benchmark.extra_info["container_sha256"] = digest


def test_encode_parallel_1m(benchmark, tmp_path_factory, speedup_trace, bench_executor):
    """Pipeline: same trace, four workers; container must be byte-identical."""
    digest = _bench_encode(
        benchmark, tmp_path_factory, speedup_trace, PARALLEL_WORKERS, "parallel", bench_executor
    )
    benchmark.extra_info["container_sha256"] = digest
    serial_dir = tmp_path_factory.mktemp("serial-ref") / "container"
    _encode(speedup_trace, serial_dir, workers=1)
    assert digest == _container_digest(serial_dir), (
        "parallel container must be byte-identical to the serial one"
    )


@pytest.mark.skipif((os.cpu_count() or 1) < PARALLEL_WORKERS, reason="needs >= 4 CPUs")
def test_process_pipeline_speedup_at_4_workers(tmp_path_factory, speedup_trace, bench_executor):
    """Acceptance: the process pipeline reaches >= 1.8x at four workers.

    Only meaningful with real cores (skipped below four CPUs) and only
    asserted for the process executor (run with ``--executor process``):
    the thread pipeline's ceiling depends on how much of the workload
    releases the GIL, which is hardware- and backend-dependent.
    """
    if bench_executor != "process":
        pytest.skip("speedup is asserted for the process executor (--executor process)")

    def timed(workers, executor, label):
        best = float("inf")
        for round_index in range(2):
            directory = tmp_path_factory.mktemp(f"speedup-{label}-{round_index}") / "container"
            started = time.perf_counter()
            _encode(speedup_trace, directory, workers, executor)
            best = min(best, time.perf_counter() - started)
        return best

    serial_seconds = timed(1, "serial", "serial")
    process_seconds = timed(PARALLEL_WORKERS, "process", "process")
    speedup = serial_seconds / process_seconds
    assert speedup >= 1.8, (
        f"process pipeline speedup {speedup:.2f}x at {PARALLEL_WORKERS} workers "
        f"(serial {serial_seconds:.2f}s vs process {process_seconds:.2f}s)"
    )
