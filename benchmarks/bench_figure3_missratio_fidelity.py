"""Figure 3 — cache miss ratios of exact vs lossy traces.

The paper simulates set-associative LRU caches (sets 2k-512k, associativity
1-32) from the exact trace and from the lossy-compressed trace and shows
that the miss-ratio curves nearly coincide; "even when there is some
distortion, the shape of the miss ratio curves is preserved".

This bench runs the same sweep (scaled set counts) for a subset of the
synthetic traces and asserts that the worst-case absolute miss-ratio error
stays small, and that miss ratios keep their monotone-in-associativity
shape on the lossy trace.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import FIGURE3_SET_COUNTS, LOSSY_INTERVAL, LOSSY_THRESHOLD, SMALL_BUFFER
from repro.analysis.comparison import compare_miss_ratio_surfaces
from repro.analysis.reporting import render_series
from repro.cache.sweep import DEFAULT_ASSOCIATIVITIES
from repro.core.lossy import LossyConfig


def _run_sweeps(figure_traces) -> Dict[str, object]:
    config = LossyConfig(
        interval_length=LOSSY_INTERVAL,
        threshold=LOSSY_THRESHOLD,
        chunk_buffer_addresses=SMALL_BUFFER,
    )
    results = {}
    for name, trace in figure_traces.items():
        if len(trace) < 2 * LOSSY_INTERVAL:
            continue
        results[name] = compare_miss_ratio_surfaces(
            trace.addresses,
            set_counts=FIGURE3_SET_COUNTS,
            config=config,
            trace_name=name,
        )
    return results


def test_figure3_miss_ratio_fidelity(figure_traces, benchmark):
    results = benchmark.pedantic(_run_sweeps, args=(figure_traces,), rounds=1, iterations=1)
    print()
    assert results, "no trace was long enough for the Figure 3 sweep"
    worst_errors = {}
    for name, result in results.items():
        series = {}
        for sets in FIGURE3_SET_COUNTS:
            series[f"exact {sets} sets"] = result.exact_surface.series(sets, DEFAULT_ASSOCIATIVITIES)
            series[f"lossy {sets} sets"] = result.lossy_surface.series(sets, DEFAULT_ASSOCIATIVITIES)
        print(
            render_series(
                f"Figure 3 (reproduction) — {name}: miss ratio vs associativity "
                f"(max |error| {result.max_miss_ratio_error:.3f}, "
                f"mean |error| {result.mean_miss_ratio_error:.3f})",
                x_label="associativity",
                x_values=DEFAULT_ASSOCIATIVITIES,
                series=series,
            )
        )
        print()
        worst_errors[name] = result.max_miss_ratio_error
        # Shape preservation: lossy miss ratio must still be non-increasing
        # in associativity for every set count.
        for sets in FIGURE3_SET_COUNTS:
            lossy_series = result.lossy_surface.series(sets, DEFAULT_ASSOCIATIVITIES)
            assert all(a >= b - 1e-9 for a, b in zip(lossy_series, lossy_series[1:]))
        # Footprint must be roughly preserved (no myopic-interval collapse).
        assert result.distinct_ratio > 0.7, name
    # Fidelity: on average the worst-case error stays small; individual
    # traces may show visible but bounded distortion (as in the paper).
    average_worst = sum(worst_errors.values()) / len(worst_errors)
    assert average_worst < 0.12, worst_errors
    assert max(worst_errors.values()) < 0.30, worst_errors
