"""Ablation — the myopic interval problem (Section 5).

The paper's motivating example: a loop accessing N distinct addresses at
random.  If the interval length L is much smaller than N, the compressed
trace (without byte translation this is unavoidable; with translation it is
mitigated) contains far fewer distinct addresses than the original, so cache
sizing decisions based on it are misleading.

This bench measures the distinct-address ratio of the regenerated trace as
a function of L, with byte translation on and off:

* without translation, small L collapses the footprint (the myopic interval
  problem in its raw form);
* with translation, the footprint stays close to the original even for
  small L — the paper's fix works.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.metrics import distinct_address_ratio
from repro.core.lossy import LossyCodec, LossyConfig

_WORKING_SET_BLOCKS = 8_192
_TRACE_LENGTH = 80_000
_INTERVAL_LENGTHS = (5_000, 10_000, 20_000, 40_000)


def _random_working_set_trace() -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.integers(0, _WORKING_SET_BLOCKS, size=_TRACE_LENGTH, dtype=np.uint64) + np.uint64(1 << 24)


def _sweep_interval_lengths() -> Dict[int, Dict[str, float]]:
    trace = _random_working_set_trace()
    results = {}
    for interval_length in _INTERVAL_LENGTHS:
        row = {}
        for label, enabled in (("translation", True), ("no_translation", False)):
            codec = LossyCodec(
                LossyConfig(interval_length=interval_length, enable_translation=enabled)
            )
            approx = codec.decompress(codec.compress(trace))
            row[label] = distinct_address_ratio(approx, trace)
        results[interval_length] = row
    return results


def test_ablation_interval_length_myopia(benchmark):
    results = benchmark.pedantic(_sweep_interval_lengths, rounds=1, iterations=1)
    print()
    print(
        "Ablation: interval length vs distinct-address ratio "
        f"(random working set of {_WORKING_SET_BLOCKS} blocks, trace length {_TRACE_LENGTH})"
    )
    print(f"{'L':>8} {'with translation':>18} {'without translation':>21}")
    for interval_length in _INTERVAL_LENGTHS:
        row = results[interval_length]
        print(f"{interval_length:>8} {row['translation']:>18.3f} {row['no_translation']:>21.3f}")
    smallest = results[_INTERVAL_LENGTHS[0]]
    # The raw myopic-interval problem: with L << N (5000 intervals over an
    # 8192-block working set) and no translation, the regenerated footprint
    # collapses towards the single-interval footprint.
    assert smallest["no_translation"] < 0.75
    # The byte-translation fix keeps the footprint close to the original.
    assert smallest["translation"] > 0.85
    # Larger intervals shrink the problem even without translation.
    largest = results[_INTERVAL_LENGTHS[-1]]
    assert largest["no_translation"] >= smallest["no_translation"]
