"""Ablation — bytesort buffer size vs compression ratio (Section 4.1/4.2).

The paper: "A bigger buffer means that we work with bigger blocks, where
long-term regularity can be exposed.  Hence a bigger buffer yields a higher
compression ratio" (Table 1's bs1 vs bs10 columns).

This bench sweeps the bytesort buffer size over a few traces and checks the
suite-mean bits per address is non-increasing (within a small tolerance) as
the buffer grows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.reporting import render_table
from repro.core.lossless import lossless_bits_per_address

_BUFFER_SIZES = (1_000, 4_000, 16_000, 64_000)
_WORKLOADS = ("401.bzip2", "429.mcf", "458.sjeng", "470.lbm", "482.sphinx3")


def _sweep_buffers(figure_traces) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for name in _WORKLOADS:
        trace = figure_traces.get(name)
        if trace is None or len(trace) < 4_000:
            continue
        rows[name] = {
            f"B={buffer_size}": lossless_bits_per_address(trace.addresses, buffer_addresses=buffer_size)
            for buffer_size in _BUFFER_SIZES
        }
    return rows


def test_ablation_bytesort_buffer_size(figure_traces, benchmark):
    rows = benchmark.pedantic(_sweep_buffers, args=(figure_traces,), rounds=1, iterations=1)
    columns = [f"B={buffer_size}" for buffer_size in _BUFFER_SIZES]
    print()
    print(render_table("Ablation: bytesort buffer size (bits per address)", rows, columns))
    means: List[float] = [
        arithmetic_mean([row[column] for row in rows.values()]) for column in columns
    ]
    # Mean BPA must not get worse as the buffer grows (small tolerance for
    # bzip2 block-boundary noise on these short traces).
    for smaller, bigger in zip(means, means[1:]):
        assert bigger <= smaller * 1.03
    # And the largest buffer must strictly beat the smallest on the mean.
    assert means[-1] < means[0]
