"""Benchmark harness regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module regenerates one table/figure (see DESIGN.md Section 4 for the
experiment index) and asserts the paper's qualitative claims about it.
"""
