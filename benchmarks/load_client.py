"""Stdlib load client for the ATC service — the driver of the CI smoke lane.

Drives a running ``repro serve`` instance through the same scenario the
service's acceptance criteria describe, using nothing but the standard
library (no ``repro`` import, no numpy), so CI can run it against a server
in a separate process and independently cross-check the results with the
``repro`` CLI:

1. Generate a deterministic raw trace (an LCG over a bounded address set,
   reproducible from ``--seed``).
2. POST it to ``/v1/compress`` ``--requests`` times from ``--concurrency``
   worker threads; every response must be 200 and byte-identical.
3. POST it once more sequentially; this *must* be answered from the dedup
   cache (``X-Atc-Cache: hit``) — the concurrent phase may legitimately
   race all-misses, the sequential repeat cannot.
4. Round trip the served container through ``/v1/decompress`` and require
   the decoded bytes to equal the generated trace exactly.
5. Fetch ``/v1/metrics`` and assert the request count and cache hits line
   up with what was driven.
6. Optionally (``--saturate``) hold that many connections open mid-request
   with raw sockets and require the next connection to be refused with
   ``429`` and a ``Retry-After`` header.

``--save-input``/``--save-container``/``--save-output`` write the trace,
the served container archive and the decoded trace to disk so the CI lane
can diff the container against an offline ``repro compress`` run.

Usage::

    python benchmarks/load_client.py --base http://127.0.0.1:8742 \\
        --requests 16 --concurrency 8 --addresses 50000 --saturate 8
"""

from __future__ import annotations

import argparse
import http.client
import json
import socket
import struct
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import urlsplit

#: Address-space size of the generated workload; small enough that the
#: lossless codec gets real compression out of the bytesort transform.
ADDRESS_SPACE = 4096


def generate_trace(addresses: int, seed: int) -> bytes:
    """A deterministic raw trace: packed little-endian uint64 addresses."""
    state = (seed * 2654435761 + 1) & 0xFFFFFFFFFFFFFFFF
    values = []
    for _ in range(addresses):
        state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        values.append((state >> 33) % ADDRESS_SPACE)
    return struct.pack(f"<{len(values)}Q", *values)


class Client:
    """Thin wrapper over :mod:`http.client` bound to one base URL."""

    def __init__(self, base: str, timeout: float) -> None:
        split = urlsplit(base)
        if split.scheme != "http" or not split.hostname:
            raise SystemExit(f"--base must be an http://host:port URL, got {base!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    def request(self, method: str, path: str, body: bytes = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"load_client: FAIL: {message}")


def compress_path(args: argparse.Namespace) -> str:
    return (
        f"/v1/compress?mode=c&backend={args.backend}"
        f"&interval_length={args.interval_length}"
        f"&chunk_buffer_addresses={args.buffer_addresses}"
    )


def run_load(args: argparse.Namespace, client: Client, trace: bytes) -> bytes:
    """Phases 2-4: concurrent compresses, a guaranteed hit, a round trip."""
    path = compress_path(args)

    def one_compress(_index: int):
        # Honour the backpressure contract: a 429 is an invitation to retry
        # after the server's own hint, not a failure.
        deadline = time.monotonic() + args.timeout
        rejections = 0
        while True:
            status, headers, body = client.request("POST", path, trace)
            if status != 429:
                return status, headers, body, rejections
            check("Retry-After" in headers, "429 response lacks a Retry-After header")
            check(time.monotonic() < deadline, "still saturated after the client timeout")
            rejections += 1
            time.sleep(min(float(headers["Retry-After"]), 0.2))

    with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
        outcomes = list(pool.map(one_compress, range(args.requests)))
    containers = set()
    rejections = 0
    for status, headers, body, rejected in outcomes:
        check(status == 200, f"concurrent compress answered {status}")
        check(headers.get("X-Atc-Cache") in ("hit", "miss"), "missing X-Atc-Cache header")
        containers.add(body)
        rejections += rejected
    check(len(containers) == 1, f"{len(containers)} distinct containers for one input")
    container = containers.pop()
    print(
        f"load_client: {args.requests} concurrent compresses OK "
        f"({len(container)} byte container, {rejections} polite 429 retries)"
    )

    status, headers, repeat = client.request("POST", path, trace)
    check(status == 200, f"sequential repeat answered {status}")
    check(headers.get("X-Atc-Cache") == "hit", "sequential repeat was not a dedup-cache hit")
    check(repeat == container, "cache hit served different container bytes")
    print("load_client: sequential repeat served from the dedup cache")

    status, headers, decoded = client.request("POST", "/v1/decompress", container)
    check(status == 200, f"decompress answered {status}")
    check(decoded == trace, "decompressed bytes differ from the generated trace")
    print(f"load_client: round trip byte-identical ({len(decoded)} bytes)")

    if args.save_output:
        with open(args.save_output, "wb") as sink:
            sink.write(decoded)
    return container


def verify_metrics(args: argparse.Namespace, client: Client) -> None:
    """Phase 5: the server's own counters must match what we drove."""
    status, _, body = client.request("GET", "/v1/metrics")
    check(status == 200, f"metrics endpoint answered {status}")
    snapshot = json.loads(body)
    check(
        snapshot.get("schema") == "repro-service-metrics/2",
        f"unexpected metrics schema: {snapshot.get('schema')!r}",
    )
    check(
        snapshot["cache"]["integrity_evictions"] >= 0,
        "metrics report a negative integrity-eviction count",
    )
    requests = snapshot["requests"]
    # compresses + repeat + decompress (+ this metrics request, already counted).
    expected = args.requests + 3
    check(
        requests["total"] >= expected,
        f"metrics report {requests['total']} requests, expected >= {expected}",
    )
    cache = snapshot["cache"]
    check(cache["hits"] >= 1, "metrics report zero dedup-cache hits")
    check(cache["hit_rate"] > 0, "metrics report a zero cache hit rate")
    check(requests["in_flight"] >= 0 and snapshot["queue_depth"] >= 0, "negative gauge in metrics")
    by_status = requests["by_status"]
    check("200" in by_status, "no 200 responses recorded in metrics")
    print(
        f"load_client: metrics OK ({requests['total']} requests, "
        f"{cache['hits']} cache hits, p95 {snapshot['latency_seconds']['p95']:.3f}s)"
    )


def run_saturation(args: argparse.Namespace, client: Client) -> None:
    """Phase 6: hold connections mid-request; the next one must get 429."""
    holders = []
    head = (
        "POST /v1/compress HTTP/1.1\r\n"
        f"Host: {client.host}\r\n"
        "Content-Length: 1048576\r\n\r\n"
    ).encode("ascii")
    try:
        for _ in range(args.saturate):
            sock = socket.create_connection((client.host, client.port), timeout=10)
            sock.sendall(head)  # never send the body: the slot stays occupied
            holders.append(sock)
        time.sleep(0.2)  # let the server accept and park every holder
        status, headers, _ = client.request("POST", compress_path(args), b"\x00" * 8)
        check(status == 429, f"saturated server answered {status}, expected 429")
        check("Retry-After" in headers, "429 response lacks a Retry-After header")
        print(f"load_client: saturation OK (429, Retry-After: {headers['Retry-After']})")
    finally:
        for sock in holders:
            try:
                sock.close()
            except OSError:
                pass
    # Slots must come back once the held connections are torn down.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status, _, _ = client.request("GET", "/v1/healthz")
        if status == 200:
            print("load_client: slots released after the held connections closed")
            return
        time.sleep(0.1)
    raise SystemExit("load_client: FAIL: server still saturated after holders closed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", required=True, help="server base URL, e.g. http://127.0.0.1:8742")
    parser.add_argument("--requests", type=int, default=16, help="concurrent compress requests")
    parser.add_argument("--concurrency", type=int, default=8, help="client thread count")
    parser.add_argument("--addresses", type=int, default=50_000, help="generated trace length")
    parser.add_argument("--seed", type=int, default=0, help="trace generator seed")
    parser.add_argument("--backend", default="bz2", help="codec back-end query parameter")
    parser.add_argument("--interval-length", type=int, default=20_000)
    parser.add_argument("--buffer-addresses", type=int, default=1_000_000)
    parser.add_argument("--timeout", type=float, default=120.0, help="per-request client timeout")
    parser.add_argument("--saturate", type=int, default=0, metavar="N",
                        help="also hold N connections open and expect a 429 on the next one")
    parser.add_argument("--save-input", default=None, help="write the generated trace here")
    parser.add_argument("--save-container", default=None, help="write the served container archive here")
    parser.add_argument("--save-output", default=None, help="write the decoded trace here")
    args = parser.parse_args(argv)

    client = Client(args.base, args.timeout)
    trace = generate_trace(args.addresses, args.seed)
    if args.save_input:
        with open(args.save_input, "wb") as sink:
            sink.write(trace)

    container = run_load(args, client, trace)
    if args.save_container:
        with open(args.save_container, "wb") as sink:
            sink.write(container)
    verify_metrics(args, client)
    if args.saturate:
        run_saturation(args, client)
    print("load_client: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
