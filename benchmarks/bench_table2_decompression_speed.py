"""Table 2 — decompression speed of bytesort vs the TCgen/VPC baseline.

The paper decompresses the 22 traces of Table 1 (2.2 G addresses) and
reports total time and addresses/second: TCgen 1.83 M addr/s, bytesort(1M)
2.57 M addr/s, bytesort(10M) 2.32 M addr/s — i.e. bytesort decodes 26-40 %
faster than the predictor-based baseline.

This bench decompresses the whole synthetic suite with both codecs and
checks the same relative claim (bytesort decodes more addresses per second
than the VPC baseline).  Absolute numbers are not comparable to the paper's
C implementation on a 2009 workstation — the shape is the claim.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from benchmarks.conftest import BIG_BUFFER, SMALL_BUFFER
from repro.analysis.reporting import render_table
from repro.core.lossless import LosslessCodec
from repro.predictors.vpc import VpcCodec


def _prepare_compressed(suite_traces) -> Tuple[Dict[str, bytes], Dict[str, bytes], Dict[str, bytes], int]:
    bytesort_small, bytesort_big, vpc = {}, {}, {}
    total_addresses = 0
    small_codec = LosslessCodec(buffer_addresses=SMALL_BUFFER)
    big_codec = LosslessCodec(buffer_addresses=BIG_BUFFER)
    for name, trace in suite_traces.items():
        addresses = trace.addresses
        if len(addresses) < 1_000:
            continue
        total_addresses += len(addresses)
        bytesort_small[name] = small_codec.compress(addresses)
        bytesort_big[name] = big_codec.compress(addresses)
        vpc[name] = VpcCodec().compress(addresses)
    return bytesort_small, bytesort_big, vpc, total_addresses


def _time_decompression(payloads: Dict[str, bytes], decompress) -> float:
    start = time.perf_counter()
    for payload in payloads.values():
        decompress(payload)
    return time.perf_counter() - start


def test_table2_decompression_speed(suite_traces, benchmark):
    bytesort_small, bytesort_big, vpc, total_addresses = _prepare_compressed(suite_traces)
    small_codec = LosslessCodec(buffer_addresses=SMALL_BUFFER)
    big_codec = LosslessCodec(buffer_addresses=BIG_BUFFER)
    vpc_codec = VpcCodec()

    def run_all() -> Dict[str, float]:
        return {
            "tcg": _time_decompression(vpc, vpc_codec.decompress),
            "bs-small": _time_decompression(bytesort_small, small_codec.decompress),
            "bs-big": _time_decompression(bytesort_big, big_codec.decompress),
        }

    seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = {
        "total time (s)": {k: v for k, v in seconds.items()},
        "addresses/second (x1e6)": {
            k: (total_addresses / v) / 1e6 if v > 0 else float("inf") for k, v in seconds.items()
        },
    }
    print()
    print(
        render_table(
            f"Table 2 (reproduction): decompression of {total_addresses} addresses",
            rows,
            columns=["tcg", "bs-small", "bs-big"],
            value_format="{:>10.3f}",
            mean_row=False,
        )
    )
    # The paper's relative claim: bytesort decodes faster than the VPC baseline.
    assert seconds["bs-small"] < seconds["tcg"]
    assert seconds["bs-big"] < seconds["tcg"]
