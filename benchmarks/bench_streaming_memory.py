"""Peak memory of the streaming file-to-file pipeline vs. trace length.

The acceptance scenario of the streaming subsystem: a ``repro compress`` ->
``repro decompress`` round-trip of a 10 M-address synthetic trace (80 MB
raw) must run with peak memory *independent of trace length*.  This bench
performs exactly the CLI's file-to-file pipeline — raw chunks ->
``AtcEncoder.encode_stream`` -> container -> ``AtcDecoder.iter_chunks`` ->
raw file — at two trace lengths (default 2 M and 10 M addresses), measures
the peak allocated memory of each run with :mod:`tracemalloc` (NumPy
buffers are tracked since NumPy 1.13), and asserts:

* the round-tripped file is byte-identical to the input (lossless mode);
* the long run's peak is within a small factor of the short run's, i.e.
  peak memory is set by the chunk size, not the trace length;
* both peaks are far below the raw size of the long trace.

``REPRO_BENCH_STREAM_REFS`` overrides the short length (the long run is
always 5x); the default 2 M/10 M pair keeps the bench in the tens of
seconds.  The timed numbers include tracemalloc's bookkeeping overhead —
this bench's product is the memory profile, not a throughput record.
"""

from __future__ import annotations

import os
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.atc import MODE_LOSSLESS, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig
from repro.traces.trace import iter_raw_chunks

#: Short trace length in addresses; the long trace is ``5 x`` this.
STREAM_REFS = int(os.environ.get("REPRO_BENCH_STREAM_REFS", "2000000"))

LONG_FACTOR = 5

#: Pipeline chunk size (addresses); also the lossless bytesort buffer.
CHUNK_ADDRESSES = 65536

#: The long run's peak may exceed the short run's by at most this factor
#: (plus an absolute slack for allocator noise) to count as "flat".
FLATNESS_FACTOR = 1.5

FLATNESS_SLACK_BYTES = 8 << 20


def _write_synthetic_trace(path: Path, length: int) -> None:
    """Write a raw trace of ``length`` addresses chunk by chunk (no full array)."""
    with open(path, "wb") as sink:
        for start in range(0, length, CHUNK_ADDRESSES):
            stop = min(start + CHUNK_ADDRESSES, length)
            index = np.arange(start, stop, dtype=np.uint64)
            # A wrapped strided sweep with a small scrambled offset: regular
            # enough to compress quickly, irregular enough to be honest.
            addresses = (index * np.uint64(64) + (index * np.uint64(2654435761)) % np.uint64(4096)) % np.uint64(
                1 << 34
            )
            sink.write(addresses.tobytes())


def _streaming_roundtrip(input_path: Path, container: Path, output_path: Path) -> None:
    """The CLI pipeline: raw file -> lossless container -> raw file, chunked."""
    config = LossyConfig(chunk_buffer_addresses=CHUNK_ADDRESSES, backend="zlib")
    with AtcEncoder(container, mode=MODE_LOSSLESS, config=config) as encoder:
        encoder.encode_stream(iter_raw_chunks(input_path, CHUNK_ADDRESSES))
    decoder = AtcDecoder(container)
    with open(output_path, "wb") as sink:
        for chunk in decoder.iter_chunks(CHUNK_ADDRESSES):
            sink.write(chunk.astype("<u8", copy=False).tobytes())


def _files_equal(a: Path, b: Path) -> bool:
    """Chunked byte comparison (bounded memory, like everything here)."""
    if a.stat().st_size != b.stat().st_size:
        return False
    with open(a, "rb") as fa, open(b, "rb") as fb:
        while True:
            block_a = fa.read(1 << 20)
            block_b = fb.read(1 << 20)
            if block_a != block_b:
                return False
            if not block_a:
                return True


def _measured_roundtrip(tmp_root: Path, length: int, label: str) -> int:
    """Run one round-trip and return its peak traced memory in bytes."""
    input_path = tmp_root / f"{label}.bin"
    output_path = tmp_root / f"{label}.out.bin"
    container = tmp_root / f"{label}.atc"
    _write_synthetic_trace(input_path, length)
    tracemalloc.start()
    try:
        _streaming_roundtrip(input_path, container, output_path)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert _files_equal(input_path, output_path), (
        f"streaming round-trip of {length} addresses is not byte-identical"
    )
    return int(peak)


def test_streaming_roundtrip_memory_is_flat(benchmark, tmp_path_factory):
    """Peak memory of the 5x-longer trace must match the short trace's."""
    tmp_root = tmp_path_factory.mktemp("stream-mem")
    short_length = STREAM_REFS
    long_length = LONG_FACTOR * STREAM_REFS
    peak_short = _measured_roundtrip(tmp_root, short_length, "short")

    def run_long():
        return _measured_roundtrip(tmp_root / "long-run", long_length, "long")

    (tmp_root / "long-run").mkdir()
    peak_long = benchmark.pedantic(run_long, rounds=1, iterations=1)

    benchmark.extra_info["short_addresses"] = short_length
    benchmark.extra_info["long_addresses"] = long_length
    benchmark.extra_info["peak_bytes_short"] = peak_short
    benchmark.extra_info["peak_bytes_long"] = peak_long
    benchmark.extra_info["chunk_addresses"] = CHUNK_ADDRESSES

    raw_long_bytes = 8 * long_length
    assert peak_long <= FLATNESS_FACTOR * peak_short + FLATNESS_SLACK_BYTES, (
        f"peak memory grew with trace length: {peak_short} -> {peak_long} bytes "
        f"for {short_length} -> {long_length} addresses"
    )
    assert peak_long < raw_long_bytes / 4, (
        f"peak memory {peak_long} is not small against the {raw_long_bytes}-byte raw trace"
    )
