"""Ablation — choice of the byte-level back-end compressor.

The paper uses bzip2 after bytesort ("we could use another compressor, like
gzip" — Section 6).  This bench quantifies that freedom: it compresses a few
traces with bzip2, zlib (gzip's algorithm) and LZMA back-ends, after the
same bytesort transform, and reports bits per address and compression
throughput.  The expected shape is that the transform does most of the work
(every back-end beats raw bzip2-without-bytesort) and stronger back-ends
trade speed for modest extra density.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import SMALL_BUFFER
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.reporting import render_table
from repro.baselines.generic import raw_bits_per_address
from repro.core.lossless import LosslessCodec

_BACKENDS = ("bz2", "zlib", "lzma")
_WORKLOADS = ("410.bwaves", "433.milc", "456.hmmer", "462.libquantum", "470.lbm")


def _compare_backends(suite_traces) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for name in _WORKLOADS:
        trace = suite_traces.get(name)
        if trace is None or len(trace) < 2_000:
            continue
        addresses = trace.addresses
        row = {"raw-bz2": raw_bits_per_address(addresses)}
        for backend in _BACKENDS:
            codec = LosslessCodec(buffer_addresses=SMALL_BUFFER, backend=backend)
            row[f"bs+{backend}"] = codec.bits_per_address(addresses)
        rows[name] = row
    return rows


def test_ablation_backend_choice(suite_traces, benchmark):
    rows = benchmark.pedantic(_compare_backends, args=(suite_traces,), rounds=1, iterations=1)
    columns = ["raw-bz2"] + [f"bs+{backend}" for backend in _BACKENDS]
    print()
    print(render_table("Ablation: byte-level back-end after bytesort (bits per address)", rows, columns))
    assert rows, "no trace was long enough for the backend ablation"
    means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in columns}
    # The bytesort transform dominates: any back-end beats raw bzip2 on these
    # regular traces, which is the paper's point that the transform (not the
    # entropy coder) carries the compression gain.
    for backend in _BACKENDS:
        assert means[f"bs+{backend}"] < means["raw-bz2"]
