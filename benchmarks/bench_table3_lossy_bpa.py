"""Table 3 — bits per address: lossless vs lossy compression.

Paper setup: 1 G-address traces, lossless = bytesort with a 1 M buffer,
lossy = interval length L = 10 M, threshold eps = 0.1.  Paper means:
lossless 3.39 bits/address, lossy 0.72 bits/address, with the gap largest on
stable traces (400, 401, 456, 482) and smallest on unstable ones (403, 447).

This bench reproduces both columns on the 22 synthetic traces with scaled
lengths/intervals and checks:

* lossy is never larger than lossless by more than a whisker on any trace,
* the suite mean drops by a clear factor,
* unstable (phase-churning) traces benefit less than stable ones.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import LOSSY_INTERVAL, LOSSY_THRESHOLD, SMALL_BUFFER
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.reporting import render_table
from repro.core.lossless import lossless_bits_per_address
from repro.core.lossy import LossyCodec, LossyConfig
from repro.traces.spec_like import get_workload

COLUMNS = ("lossless", "lossy")


def _compute_rows(suite_traces) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    config = LossyConfig(
        interval_length=LOSSY_INTERVAL,
        threshold=LOSSY_THRESHOLD,
        chunk_buffer_addresses=SMALL_BUFFER,
    )
    codec = LossyCodec(config)
    for name, trace in suite_traces.items():
        addresses = trace.addresses
        if len(addresses) < 2 * LOSSY_INTERVAL:
            # Need at least two intervals for lossy compression to mean anything.
            continue
        compressed = codec.compress(addresses)
        rows[name] = {
            "lossless": lossless_bits_per_address(addresses, buffer_addresses=SMALL_BUFFER),
            "lossy": compressed.bits_per_address(),
        }
    return rows


def test_table3_lossy_vs_lossless(suite_traces, benchmark):
    rows = benchmark.pedantic(_compute_rows, args=(suite_traces,), rounds=1, iterations=1)
    print()
    print(render_table("Table 3 (reproduction): lossless vs lossy bits per address", rows, COLUMNS))
    lossless_mean = arithmetic_mean([row["lossless"] for row in rows.values()])
    lossy_mean = arithmetic_mean([row["lossy"] for row in rows.values()])
    print(f"\nmean lossless {lossless_mean:.2f} bits/address, mean lossy {lossy_mean:.2f} bits/address")
    # Headline claim: lossy compression is clearly more compact on average.
    assert lossy_mean < lossless_mean * 0.8
    # Per trace, lossy must never lose to lossless by more than the fixed
    # imitation overhead.  At the paper's scale (L = 10 M addresses) the
    # 8 x 256-byte translation tables are negligible; at this bench's scaled
    # interval length (L = 5 k) they amount to up to ~3.3 bits/address, so
    # the bound below is |translation bytes| * 8 / L plus a small margin.
    per_interval_overhead_bits = 8.0 * (8 * 256 + 16) / LOSSY_INTERVAL + 0.5
    for name, row in rows.items():
        assert row["lossy"] <= row["lossless"] + per_interval_overhead_bits, name
    # Stable traces must benefit more than unstable (phase-churning) traces.
    gains_by_stability = {"stable": [], "mixed": [], "unstable": []}
    for name, row in rows.items():
        if row["lossy"] > 0:
            gains_by_stability[get_workload(name).stability].append(row["lossless"] / row["lossy"])
    if gains_by_stability["stable"] and gains_by_stability["unstable"]:
        assert arithmetic_mean(gains_by_stability["stable"]) >= arithmetic_mean(
            gains_by_stability["unstable"]
        )
