"""Figure 4 — the importance of byte translation.

The paper disables byte translation on trace 470.lbm and shows the
miss-ratio curve (256k sets) becomes badly distorted: "the cache size that
is necessary to remove capacity misses looks twice smaller with the
approximate trace than it is in reality".

This bench reproduces the ablation on a phased workload whose successive
phases touch disjoint address regions (the 470.lbm-like analogue):

* with translation, the regenerated trace keeps nearly the full footprint
  and a close miss-ratio curve;
* without translation, the apparent footprint collapses towards a single
  phase's worth of addresses and the miss-ratio curve drops far below the
  exact one.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.metrics import distinct_address_ratio
from repro.analysis.reporting import render_series
from repro.cache.sweep import DEFAULT_ASSOCIATIVITIES, miss_ratio_sweep
from repro.core.lossy import LossyCodec, LossyConfig

_PHASES = 5
_PHASE_LENGTH = 20_000
_BLOCKS_PER_PHASE = 4_096
_SET_COUNT = 256


def _phased_disjoint_trace() -> np.ndarray:
    rng = np.random.default_rng(470)
    phases = [
        rng.integers(0, _BLOCKS_PER_PHASE, size=_PHASE_LENGTH, dtype=np.uint64)
        + np.uint64((index + 1) * (_BLOCKS_PER_PHASE * 4))
        for index in range(_PHASES)
    ]
    return np.concatenate(phases)


def _run_ablation() -> Dict[str, object]:
    trace = _phased_disjoint_trace()
    exact_surface = miss_ratio_sweep(trace, set_counts=[_SET_COUNT])
    outcome = {"exact": exact_surface, "trace": trace}
    for label, enabled in (("translation", True), ("no translation", False)):
        codec = LossyCodec(
            LossyConfig(interval_length=_PHASE_LENGTH, enable_translation=enabled)
        )
        approx = codec.decompress(codec.compress(trace))
        outcome[label] = {
            "surface": miss_ratio_sweep(approx, set_counts=[_SET_COUNT]),
            "distinct_ratio": distinct_address_ratio(approx, trace),
        }
    return outcome


def test_figure4_byte_translation_ablation(benchmark):
    outcome = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    exact_surface = outcome["exact"]
    with_translation = outcome["translation"]
    without_translation = outcome["no translation"]
    series = {
        "exact": exact_surface.series(_SET_COUNT, DEFAULT_ASSOCIATIVITIES),
        "translation": with_translation["surface"].series(_SET_COUNT, DEFAULT_ASSOCIATIVITIES),
        "no translation": without_translation["surface"].series(_SET_COUNT, DEFAULT_ASSOCIATIVITIES),
    }
    print()
    print(
        render_series(
            f"Figure 4 (reproduction) — phased disjoint regions, {_SET_COUNT} sets",
            x_label="associativity",
            x_values=DEFAULT_ASSOCIATIVITIES,
            series=series,
        )
    )
    print(
        f"\ndistinct-address ratio: translation {with_translation['distinct_ratio']:.2f}, "
        f"no translation {without_translation['distinct_ratio']:.2f}"
    )
    # With translation the footprint survives; without it the footprint
    # collapses towards 1/number-of-phases of the real one.
    assert with_translation["distinct_ratio"] > 0.8
    assert without_translation["distinct_ratio"] < 0.5
    # The no-translation curve underestimates the miss ratio at large caches
    # (capacity misses vanish too early), exactly the paper's distortion.
    exact_large = exact_surface.miss_ratio(_SET_COUNT, 32)
    no_translation_large = without_translation["surface"].miss_ratio(_SET_COUNT, 32)
    translation_large = with_translation["surface"].miss_ratio(_SET_COUNT, 32)
    assert no_translation_large < exact_large - 0.1
    assert abs(translation_large - exact_large) < 0.1
