"""Table 1 — bits per address of the lossless compressors.

Paper columns: bzip2 alone (bz2), byte-unshuffling + bzip2 (us), the
TCgen/VPC compressor (tcg), bytesort with a small buffer (bs1) and bytesort
with a big buffer (bs10), over 22 SPEC CPU2006 cache-filtered traces of
100 M addresses each.  Paper means: 8.63 / 5.34 / 3.56 / 3.27 / 2.65.

This bench computes the same five columns over the 22 synthetic SPEC-like
traces (scaled lengths, scaled buffers — see benchmarks/conftest.py) and
checks the ordering claims:

* unshuffling beats bzip2 alone on average,
* bytesort (big buffer) beats unshuffling and the VPC baseline on average,
* the big buffer is at least as good as the small buffer.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import BIG_BUFFER, SMALL_BUFFER
from repro.analysis.metrics import arithmetic_mean, bits_per_address
from repro.analysis.reporting import render_table
from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import unshuffled_bits_per_address
from repro.core.lossless import lossless_bits_per_address
from repro.predictors.vpc import VpcCodec

COLUMNS = ("bz2", "us", "tcg", "bs-small", "bs-big")


def _compute_rows(suite_traces) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for name, trace in suite_traces.items():
        addresses = trace.addresses
        if len(addresses) < 1_000:
            # Too few filtered addresses for a meaningful per-address figure
            # (the povray-like workload is almost fully cache-resident).
            continue
        vpc_payload = VpcCodec().compress(addresses)
        rows[name] = {
            "bz2": raw_bits_per_address(addresses),
            "us": unshuffled_bits_per_address(addresses, buffer_addresses=SMALL_BUFFER),
            "tcg": bits_per_address(len(vpc_payload), len(addresses)),
            "bs-small": lossless_bits_per_address(addresses, buffer_addresses=SMALL_BUFFER),
            "bs-big": lossless_bits_per_address(addresses, buffer_addresses=BIG_BUFFER),
        }
    return rows


def test_table1_lossless_bits_per_address(suite_traces, benchmark):
    rows = benchmark.pedantic(_compute_rows, args=(suite_traces,), rounds=1, iterations=1)
    print()
    print(render_table("Table 1 (reproduction): bits per address, lossless compressors", rows, COLUMNS))
    means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in COLUMNS}
    # Paper claims, checked as orderings of the suite means.
    assert means["us"] < means["bz2"], "byte-unshuffling must beat bzip2 alone on average"
    assert means["bs-big"] < means["us"], "bytesort must beat plain unshuffling on average"
    assert means["bs-big"] < means["tcg"], "big bytesort must beat the TCgen-style baseline"
    assert means["bs-big"] <= means["bs-small"] * 1.02, "a bigger buffer must not hurt"
    # Every method stays below the raw 64 bits/address.
    for row in rows.values():
        for column in COLUMNS:
            assert row[column] < 64.0
