"""Shared fixtures and scale parameters for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on
synthetic, scaled-down material (see DESIGN.md Section 2 for the
substitution rationale and Section 4 for the experiment index).  The scale
knobs below keep a full ``pytest benchmarks/ --benchmark-only`` run in the
minutes range on a laptop; set the ``REPRO_BENCH_REFS`` environment variable
to a larger value for a slower, higher-fidelity run.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np
import pytest

from repro.traces.filter import filter_spec_like_traces
from repro.traces.spec_like import SPEC_LIKE_NAMES
from repro.traces.trace import AddressTrace

#: References generated per workload before cache filtering.
BENCH_REFERENCES = int(os.environ.get("REPRO_BENCH_REFS", "30000"))

#: Workloads generated+filtered concurrently for the suite fixture
#: (``REPRO_BENCH_JOBS=0`` = one per CPU; executor via ``--executor`` /
#: ``REPRO_EXECUTOR``).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--executor",
        default=None,
        choices=("auto", "serial", "thread", "process"),
        help="executor strategy the parallel benchmarks run with "
        "(default: REPRO_EXECUTOR environment variable, else auto)",
    )


@pytest.fixture(scope="session")
def bench_executor(request):
    """The resolved ``--executor`` selection (None = environment/auto)."""
    value = request.config.getoption("--executor")
    return None if value in (None, "auto") else value

#: Bytesort buffer sizes standing in for the paper's 1 M / 10 M buffers.
SMALL_BUFFER = 4_000
BIG_BUFFER = 64_000

#: Lossy interval length standing in for the paper's 10 M-address intervals.
LOSSY_INTERVAL = 5_000

#: The paper's threshold.
LOSSY_THRESHOLD = 0.1

#: Workload subset used by the figure benches (the paper's figures also show
#: a subset of the 22 traces).
FIGURE_WORKLOADS = (
    "400.perlbench",
    "401.bzip2",
    "429.mcf",
    "450.soplex",
    "456.hmmer",
    "458.sjeng",
    "462.libquantum",
    "470.lbm",
    "473.astar",
    "482.sphinx3",
)

#: Cache-set counts for the Figure 3 sweep (scaled from the paper's 2k-512k).
FIGURE3_SET_COUNTS = (64, 256, 1024, 4096)


def _generate_suite(names) -> Dict[str, AddressTrace]:
    # The suite fixture is the harness's biggest fixed cost; the batch
    # fan-out spreads workloads over BENCH_JOBS workers on the selected
    # executor, byte-identically to the serial loop.
    return filter_spec_like_traces(names, BENCH_REFERENCES, seed=0, workers=BENCH_JOBS)


@pytest.fixture(scope="session")
def suite_traces() -> Dict[str, AddressTrace]:
    """Cache-filtered traces for all 22 SPEC-like workloads (Table 1/2/3)."""
    return _generate_suite(SPEC_LIKE_NAMES)


@pytest.fixture(scope="session")
def figure_traces(suite_traces) -> Dict[str, AddressTrace]:
    """The subset of traces used by the figure benches."""
    return {name: suite_traces[name] for name in FIGURE_WORKLOADS}


@pytest.fixture(scope="session")
def random_values() -> np.ndarray:
    """Random 64-bit values for the Figure 8 bench."""
    rng = np.random.default_rng(2009)
    return rng.integers(0, 1 << 64, size=100_000, dtype=np.uint64)
