"""Figure 5 — C/DC address-predictor behaviour on exact vs lossy traces.

The paper simulates an address predictor based on the C/DC prefetcher
(64 KB CZones, 256-entry index table, 256-entry GHB, 2-delta correlation
key) on both the exact and the lossy-compressed trace and shows the
breakdown of non-predicted / correctly predicted / mispredicted addresses is
nearly the same: "overall the lossy-compressed traces look like the exact
ones".

This bench runs the same predictor over a subset of the synthetic traces
and asserts that the per-trace breakdown distributions of exact and lossy
traces stay close (small L1 distance).
"""

from __future__ import annotations

from typing import Dict, Tuple

from benchmarks.conftest import LOSSY_INTERVAL, LOSSY_THRESHOLD, SMALL_BUFFER
from repro.analysis.comparison import compare_cdc_breakdowns
from repro.analysis.reporting import render_breakdown_table
from repro.core.lossy import LossyConfig
from repro.predictors.cdc import CdcConfig


def _run_predictor_study(figure_traces) -> Dict[str, Tuple]:
    config = LossyConfig(
        interval_length=LOSSY_INTERVAL,
        threshold=LOSSY_THRESHOLD,
        chunk_buffer_addresses=SMALL_BUFFER,
    )
    cdc_config = CdcConfig()
    results = {}
    for name, trace in figure_traces.items():
        if len(trace) < 2 * LOSSY_INTERVAL:
            continue
        results[name] = compare_cdc_breakdowns(trace.addresses, config=config, cdc_config=cdc_config)
    return results


def test_figure5_cdc_predictor_fidelity(figure_traces, benchmark):
    results = benchmark.pedantic(_run_predictor_study, args=(figure_traces,), rounds=1, iterations=1)
    assert results, "no trace was long enough for the Figure 5 study"
    breakdowns = {}
    distances = {}
    for name, (exact, lossy, distance) in results.items():
        breakdowns[f"{name} exact"] = exact.fractions()
        breakdowns[f"{name} lossy"] = lossy.fractions()
        distances[name] = distance
    print()
    print(render_breakdown_table("Figure 5 (reproduction): C/DC outcome breakdown", breakdowns))
    print("\nL1 distance between exact and lossy breakdowns per trace:")
    for name, distance in sorted(distances.items()):
        print(f"  {name:<18} {distance:.3f}")
    # The lossy trace "looks like" the exact one to the predictor: the
    # average distributional distance stays small, and no trace is wildly off
    # (the paper itself notes a little distortion on some traces).
    average_distance = sum(distances.values()) / len(distances)
    assert average_distance < 0.15, distances
    assert max(distances.values()) < 0.45, distances
