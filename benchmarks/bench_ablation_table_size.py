"""Ablation — capacity of the in-memory histogram (chunk) table.

Section 5.2: "When the table is full, we evict the entry belonging to the
oldest chunk."  A small table forgets old phases, so a workload that cycles
through phases A, B, A, B, ... keeps re-storing chunks it has already seen;
an adequately sized table stores each phase once and imitates ever after.

This bench compresses a phase-cycling trace with different table capacities
and checks that the chunk count (and hence the compressed size) drops as the
table grows, saturating once every distinct phase fits.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.inspect import analyze_lossy
from repro.core.lossy import LossyCodec, LossyConfig

_INTERVAL = 10_000
_DISTINCT_PHASES = 4
_CYCLES = 4
_TABLE_SIZES = (1, 2, 4, 8)


def _phase_cycling_trace() -> np.ndarray:
    """Four *structurally* different phases, repeated in a cycle.

    The phases differ in their sorted byte-histograms (working-set size and
    address distribution), not merely in which region they touch — ATC can
    imitate a region shift with byte translations, so region-only phases
    would all collapse into one chunk and defeat the ablation.
    """
    rng = np.random.default_rng(11)

    def phase(kind: int, cycle: int) -> np.ndarray:
        seed = 1_000 + kind * 17 + cycle
        local = np.random.default_rng(seed)
        if kind == 0:  # small random working set
            return local.integers(0, 1_024, size=_INTERVAL, dtype=np.uint64) + np.uint64(1 << 20)
        if kind == 1:  # sequential sweep
            start = np.uint64((2 << 20) + cycle)
            return start + np.arange(_INTERVAL, dtype=np.uint64)
        if kind == 2:  # huge sparse working set
            return local.integers(0, 1 << 26, size=_INTERVAL, dtype=np.uint64) + np.uint64(1 << 30)
        # kind == 3: skewed (geometric) reuse
        depths = np.minimum(local.geometric(p=0.01, size=_INTERVAL), 16_384).astype(np.uint64)
        return np.uint64(3 << 20) + depths

    segments = []
    for cycle in range(_CYCLES):
        for kind in range(_DISTINCT_PHASES):
            segments.append(phase(kind, cycle))
    return np.concatenate(segments)


def _sweep_table_sizes() -> Dict[int, Dict[str, float]]:
    trace = _phase_cycling_trace()
    results = {}
    for table_size in _TABLE_SIZES:
        config = LossyConfig(interval_length=_INTERVAL, max_table_entries=table_size)
        compressed = LossyCodec(config).compress(trace)
        report = analyze_lossy(compressed)
        results[table_size] = {
            "chunks": compressed.num_chunks,
            "bpa": compressed.bits_per_address(),
            "imitation_fraction": report.imitation_fraction,
        }
    return results


def test_ablation_chunk_table_capacity(benchmark):
    results = benchmark.pedantic(_sweep_table_sizes, rounds=1, iterations=1)
    print()
    print("Ablation: histogram-table capacity on a phase-cycling trace "
          f"({_DISTINCT_PHASES} phases x {_CYCLES} cycles)")
    print(f"{'table entries':>14} {'chunks':>8} {'bits/addr':>11} {'imitated':>10}")
    for table_size in _TABLE_SIZES:
        row = results[table_size]
        print(
            f"{table_size:>14} {row['chunks']:>8d} {row['bpa']:>11.3f} "
            f"{row['imitation_fraction']:>9.0%}"
        )
    chunk_counts = [results[size]["chunks"] for size in _TABLE_SIZES]
    # Growing the table can only reduce (or keep) the number of stored chunks.
    assert all(a >= b for a, b in zip(chunk_counts, chunk_counts[1:]))
    # Once every distinct phase fits, each phase is stored exactly once.
    assert results[_TABLE_SIZES[-1]]["chunks"] == _DISTINCT_PHASES
    # A one-entry table forgets phases and keeps re-storing them.
    assert results[1]["chunks"] > _DISTINCT_PHASES
