"""Figure 8 — lossy compression of random 64-bit values via the CLI pipeline.

The paper pipes 100 M random 64-bit values through ``bin2atc``: a single
chunk is stored (the first interval), the other nine intervals are
regenerated from it plus byte-translation information, and the compression
ratio is about 10 (the number of intervals).

This bench reproduces the experiment with the streaming container API at a
scaled size and asserts:

* exactly one chunk is stored,
* the decoded length equals the input length,
* the compression ratio is a large fraction of the interval count.
"""

from __future__ import annotations

from repro.core.atc import MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig

_INTERVAL_LENGTH = 10_000


def _compress_random(values, directory) -> AtcDecoder:
    config = LossyConfig(interval_length=_INTERVAL_LENGTH, chunk_buffer_addresses=_INTERVAL_LENGTH)
    with AtcEncoder(directory, mode=MODE_LOSSY, config=config) as encoder:
        encoder.code_many(values)
    return AtcDecoder(directory)


def test_figure8_random_values_compression(random_values, tmp_path, benchmark):
    decoder = benchmark.pedantic(
        _compress_random, args=(random_values, tmp_path / "foobar"), rounds=1, iterations=1
    )
    decoded = decoder.read_all()
    num_intervals = random_values.size // _INTERVAL_LENGTH
    stored_chunks = len(decoder.container.chunk_ids())
    ratio = (random_values.size * 8) / decoder.compressed_bytes()
    print()
    print(f"Figure 8 (reproduction): {random_values.size} random 64-bit values")
    print(f"  intervals           : {num_intervals}")
    print(f"  chunks stored       : {stored_chunks}")
    print(f"  compressed bytes    : {decoder.compressed_bytes()}")
    print(f"  compression ratio   : {ratio:.1f}x (ideal = number of intervals = {num_intervals})")
    assert stored_chunks == 1
    assert decoded.size == random_values.size
    # Random data is incompressible losslessly, so the whole gain comes from
    # interval imitation; the ratio approaches the interval count minus the
    # cost of the stored translations.
    assert ratio > 0.6 * num_intervals
