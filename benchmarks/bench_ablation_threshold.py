"""Ablation — lossy threshold eps vs compression ratio and fidelity.

Section 5.2: "If eps is too small, we obtain a low compression ratio.  If
eps is too high, the compressed trace may not accurately reflect the
original trace.  We found experimentally that eps = 0.1 provides high
compression ratios while preserving the memory locality information."

This bench sweeps eps on a moderately phased trace and checks both halves of
that trade-off:

* the number of stored chunks (hence the compressed size) is non-increasing
  in eps;
* the miss-ratio error is non-decreasing (within tolerance) in eps, and is
  still small at the paper's eps = 0.1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.comparison import compare_miss_ratio_surfaces
from repro.core.lossy import LossyConfig

_THRESHOLDS = (0.01, 0.05, 0.1, 0.3, 1.0)
_INTERVAL = 10_000


def _build_trace() -> np.ndarray:
    """A drifting-working-set trace: phases resemble each other imperfectly."""
    rng = np.random.default_rng(55)
    phases = []
    for index in range(8):
        base = (1 << 22) + index * (1 << 14)
        size = 3_000 + 250 * index
        phases.append(rng.integers(0, size, size=_INTERVAL, dtype=np.uint64) + np.uint64(base))
    return np.concatenate(phases)


def _sweep_thresholds() -> Dict[float, Dict[str, float]]:
    trace = _build_trace()
    results = {}
    for threshold in _THRESHOLDS:
        config = LossyConfig(interval_length=_INTERVAL, threshold=threshold)
        outcome = compare_miss_ratio_surfaces(trace, set_counts=[256], config=config)
        results[threshold] = {
            "chunks": outcome.num_chunks,
            "bpa": outcome.bits_per_address,
            "max_error": outcome.max_miss_ratio_error,
        }
    return results


def test_ablation_threshold_tradeoff(benchmark):
    results = benchmark.pedantic(_sweep_thresholds, rounds=1, iterations=1)
    print()
    print("Ablation: lossy threshold eps (8 intervals, drifting working set)")
    print(f"{'eps':>6} {'chunks':>8} {'bits/addr':>11} {'max miss-ratio error':>22}")
    for threshold in _THRESHOLDS:
        row = results[threshold]
        print(f"{threshold:>6.2f} {row['chunks']:>8d} {row['bpa']:>11.3f} {row['max_error']:>22.4f}")
    chunk_counts = [results[t]["chunks"] for t in _THRESHOLDS]
    bpa_values = [results[t]["bpa"] for t in _THRESHOLDS]
    # Raising the threshold can only merge more intervals into fewer chunks.
    assert all(a >= b for a, b in zip(chunk_counts, chunk_counts[1:]))
    assert all(a >= b * 0.95 for a, b in zip(bpa_values, bpa_values[1:]))
    # At the paper's threshold the fidelity must still be good.
    assert results[0.1]["max_error"] < 0.1
    # A tiny threshold keeps (almost) every interval as its own chunk.
    assert results[0.01]["chunks"] >= results[1.0]["chunks"]
