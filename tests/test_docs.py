"""Tests of the documentation site: structure, links, and format-spec truth.

Two layers of enforcement:

* **Structure** — every page mkdocs.yml navigates to exists, and every
  relative markdown link inside ``docs/`` resolves to a real file/anchor
  target, so ``mkdocs build --strict`` cannot fail on the CI docs job for
  structural reasons the test suite would miss locally.
* **Spec truth** — ``docs/atc-format.md`` is a byte-level specification;
  this module re-parses the golden containers under ``tests/data/golden/``
  with an *independent* reader that follows the documented offsets and
  constants (never the library code) and checks the result against the
  library decoder.  If the format and the document drift apart, one of
  these tests fails.
"""

from __future__ import annotations

import bz2
import json
import lzma
import re
import struct
import zlib
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent
_DOCS = _REPO / "docs"
_GOLDEN = Path(__file__).resolve().parent / "data" / "golden"

# Constants exactly as documented in docs/atc-format.md.
_INFO_MAGIC_V1 = b"ATCINFO1"
_INFO_MAGIC_V2 = b"ATCINFO2"
_FOOTER_BYTES = 32
_CHUNK_DIGEST_HEX = 16
_CHUNK_MAGIC = b"ATCL"
_RECORD_FIXED = struct.Struct("<BII")
_CHUNK_HEADER = struct.Struct("<4sBQQ")
_TRANSLATION_BYTES = 8 * 256
_DECOMPRESS = {"bz2": bz2.decompress, "zlib": zlib.decompress, "lzma": lzma.decompress}

_DOC_METADATA_KEYS_V1 = (
    "format",
    "format_version",
    "mode",
    "backend",
    "original_length",
    "interval_length",
    "threshold",
    "chunk_buffer_addresses",
    "enable_translation",
    "num_chunks",
)
# Format v2 adds exactly one key: the per-chunk digest table.
_DOC_METADATA_KEYS_V2 = _DOC_METADATA_KEYS_V1 + ("chunk_digests",)


def _golden_containers():
    """Top-level (format v2) golden containers — dirs holding an INFO stream."""
    return sorted(path for path in _GOLDEN.iterdir() if path.is_dir() and any(path.glob("INFO.*")))


def _golden_v1_containers():
    """The committed format-v1 twins under tests/data/golden/v1/."""
    return sorted(path for path in (_GOLDEN / "v1").iterdir() if path.is_dir())


def _container_suffix(container: Path) -> str:
    (info,) = container.glob("INFO.*")
    return info.name.split(".", 1)[1]


def _parse_info_per_spec(container: Path):
    """Parse INFO.<suffix> following docs/atc-format.md, not the library.

    Handles both documented format versions: v1 bodies start with
    ``ATCINFO1``; v2 bodies start with ``ATCINFO2`` and end with a 32-byte
    SHA-256 footer over every preceding body byte, verified here with
    ``hashlib`` alone.
    """
    import hashlib

    suffix = _container_suffix(container)
    body = _DECOMPRESS[suffix]((container / f"INFO.{suffix}").read_bytes())
    assert body[:8] in (_INFO_MAGIC_V1, _INFO_MAGIC_V2), "INFO must start with a documented magic"
    if body[:8] == _INFO_MAGIC_V2:
        payload, footer = body[:-_FOOTER_BYTES], body[-_FOOTER_BYTES:]
        assert hashlib.sha256(payload).digest() == footer, (
            "v2 footer is the SHA-256 of every preceding body byte"
        )
        body = payload
    (header_length,) = struct.unpack_from("<I", body, 8)
    metadata = json.loads(body[12 : 12 + header_length].decode("utf-8"))
    offset = 12 + header_length
    (interval_trace_length,) = struct.unpack_from("<I", body, offset)
    offset += 4
    interval_trace = body[offset : offset + interval_trace_length]
    assert offset + interval_trace_length == len(body), "no trailing bytes after interval trace"
    records = []
    position = 0
    while position < len(interval_trace):
        kind, chunk_id, length = _RECORD_FIXED.unpack_from(interval_trace, position)
        position += _RECORD_FIXED.size
        assert kind in (0, 1), "documented kinds are 0 (chunk) and 1 (imitate)"
        record = {"kind": kind, "chunk_id": chunk_id, "length": length}
        if kind == 1:
            record["active"] = interval_trace[position]
            position += 1 + _TRANSLATION_BYTES
        records.append(record)
    return metadata, records


class TestDocsStructure:
    def test_docs_directory_has_the_promised_pages(self):
        for page in ("index.md", "architecture.md", "paper-map.md", "atc-format.md",
                     "trace-formats.md", "workloads.md", "experiments.md",
                     "distributed-sweeps.md", "performance.md", "service.md", "cli.md",
                     "robustness.md"):
            assert (_DOCS / page).is_file(), f"docs/{page} missing"

    def test_mkdocs_nav_targets_exist(self):
        config = (_REPO / "mkdocs.yml").read_text(encoding="utf-8")
        for target in re.findall(r":\s*([\w-]+\.md)\s*$", config, flags=re.MULTILINE):
            assert (_DOCS / target).is_file(), f"mkdocs.yml navigates to missing docs/{target}"

    def test_relative_markdown_links_resolve(self):
        for page in _DOCS.glob("*.md"):
            text = page.read_text(encoding="utf-8")
            for match in re.finditer(r"\]\(([^)#\s]+\.md)(#[\w-]+)?\)", text):
                target = match.group(1)
                if target.startswith("http"):
                    continue
                resolved = (page.parent / target).resolve()
                assert resolved.is_file(), f"{page.name} links to missing {target}"

    def test_anchor_links_point_at_real_headings(self):
        pages = {page.name: page.read_text(encoding="utf-8") for page in _DOCS.glob("*.md")}
        for name, text in pages.items():
            for match in re.finditer(r"\]\(([\w-]+\.md)#([\w-]+)\)", text):
                target, anchor = match.group(1), match.group(2)
                headings = re.findall(r"^#+\s+(.*)$", pages[target], flags=re.MULTILINE)
                slugs = {
                    re.sub(r"[^\w\s-]", "", heading.lower()).strip().replace(" ", "-")
                    for heading in headings
                }
                assert anchor in slugs, f"{name} links to {target}#{anchor}, not a heading there"

    def test_readme_links_into_docs(self):
        readme = (_REPO / "README.md").read_text(encoding="utf-8")
        for target in re.findall(r"\]\((docs/[\w-]+\.md)\)", readme):
            assert (_REPO / target).is_file(), f"README links to missing {target}"
        assert "docs/" in readme, "README must link into the documentation site"


class TestAtcFormatSpecAgainstGoldenFixtures:
    """The independent, documentation-driven parser agrees with the library."""

    @pytest.fixture(
        scope="class",
        params=[
            str(p.relative_to(_GOLDEN))
            for p in (*_golden_containers(), *_golden_v1_containers())
        ],
    )
    def container(self, request):
        return _GOLDEN / request.param

    def test_chunk_files_are_one_indexed_atcl_streams(self, container):
        suffix = _container_suffix(container)
        chunk_files = sorted(
            (p for p in container.iterdir() if p.name[0].isdigit()),
            key=lambda p: int(p.name.split(".")[0]),
        )
        assert chunk_files, "every golden container stores at least one chunk"
        assert [int(p.name.split(".")[0]) for p in chunk_files] == list(
            range(1, len(chunk_files) + 1)
        )
        for path in chunk_files:
            payload = path.read_bytes()
            magic, version, count, buffer_addresses = _CHUNK_HEADER.unpack_from(payload)
            assert magic == _CHUNK_MAGIC
            assert version == 1
            assert count > 0
            assert buffer_addresses > 0

    def test_info_metadata_matches_documented_schema(self, container):
        metadata, _ = _parse_info_per_spec(container)
        is_v1 = container.parent.name == "v1"
        expected_keys = _DOC_METADATA_KEYS_V1 if is_v1 else _DOC_METADATA_KEYS_V2
        assert sorted(metadata) == sorted(expected_keys)
        assert metadata["format"] == "atc"
        assert metadata["format_version"] == (1 if is_v1 else 2)
        assert metadata["mode"] == ("lossy" if container.name.startswith("lossy") else "lossless")
        assert metadata["backend"] == _container_suffix(container)

    def test_v2_chunk_digests_match_the_documented_hash(self, container):
        """Recompute each chunk digest per the spec: SHA-256 of the raw
        chunk-file bytes, truncated to the first 16 hex characters."""
        import hashlib

        metadata, _ = _parse_info_per_spec(container)
        if metadata["format_version"] == 1:
            assert "chunk_digests" not in metadata
            return
        digests = metadata["chunk_digests"]
        suffix = _container_suffix(container)
        chunk_files = {
            int(p.name.split(".")[0]) - 1: p
            for p in container.iterdir()
            if p.name[0].isdigit()
        }
        assert sorted(digests) == sorted(str(i) for i in chunk_files)
        for chunk_id, path in chunk_files.items():
            recomputed = hashlib.sha256(path.read_bytes()).hexdigest()[:_CHUNK_DIGEST_HEX]
            assert digests[str(chunk_id)] == recomputed, f"chunk {chunk_id + 1}.{suffix}"

    def test_interval_trace_is_consistent_with_chunk_files(self, container):
        metadata, records = _parse_info_per_spec(container)
        chunk_ids_on_disk = {
            int(p.name.split(".")[0]) - 1 for p in container.iterdir() if p.name[0].isdigit()
        }
        assert metadata["num_chunks"] == len(chunk_ids_on_disk)
        referenced = {record["chunk_id"] for record in records}
        assert referenced == chunk_ids_on_disk, "records reference exactly the stored chunks"
        stored = [r for r in records if r["kind"] == 0]
        assert {r["chunk_id"] for r in stored} == chunk_ids_on_disk
        assert sum(r["length"] for r in records) == metadata["original_length"]
        if container.name.startswith("lossless"):
            assert all(r["kind"] == 0 for r in records), "lossless containers never imitate"
            assert [r["chunk_id"] for r in records] == list(range(len(records)))
        else:
            assert any(r["kind"] == 1 for r in records), "golden lossy fixtures cover imitation"

    def test_independent_parse_agrees_with_library_decoder(self, container):
        from repro.core.atc import AtcDecoder

        metadata, records = _parse_info_per_spec(container)
        decoder = AtcDecoder(container)
        assert decoder.metadata == metadata
        assert len(decoder.records) == len(records)
        for mine, theirs in zip(records, decoder.records):
            assert mine["kind"] == (0 if theirs.kind == "chunk" else 1)
            assert mine["chunk_id"] == theirs.chunk_id
            assert mine["length"] == theirs.length
        decoded = decoder.read_all()
        assert decoded.size == metadata["original_length"], "the documented integrity check"

    def test_gz_and_xz_aliases_store_canonical_suffixes(self):
        # Documented: aliases never appear on disk.
        names = {p.name for p in _golden_containers()}
        assert {"lossless_gz", "lossless_xz"} <= names
        assert _container_suffix(_GOLDEN / "lossless_gz") == "zlib"
        assert _container_suffix(_GOLDEN / "lossless_xz") == "lzma"

    def test_documented_constants_appear_in_the_spec_page(self):
        spec = (_DOCS / "atc-format.md").read_text(encoding="utf-8")
        for constant in ("ATCINFO1", "ATCINFO2", "ATCL", "'<BII'", "'<4sBQQ'", "2048",
                         "original_length", "u32 header_length", "chunk_digests",
                         "SHA-256", "footer"):
            assert constant in spec, f"atc-format.md no longer documents {constant}"


_TRACES = Path(__file__).resolve().parent / "data" / "traces"

# Constants exactly as documented in docs/trace-formats.md.
_K6_COMMANDS = {"P_MEM_RD": 0, "P_MEM_WR": 1, "P_FETCH": 2}
_SIDECAR_MAGIC = b"ATCSIDE1"


def _parse_k6_per_spec(path: Path):
    """Parse a k6 trace following docs/trace-formats.md, not the library.

    Grammar per the spec page: gz-transparent by filename, blank lines and
    ``#`` comment lines skipped, three whitespace-separated fields per
    record — hex address (optional ``0x``, any case), command token, and
    a decimal cycle count.
    """
    import gzip

    opener = gzip.open if path.name.endswith(".gz") else open
    records = []
    with opener(path, "rt", encoding="ascii") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            address, command, cycle = stripped.split()
            records.append((int(address, 16), _K6_COMMANDS[command], int(cycle)))
    return records


def _parse_sidecar_per_spec(path: Path):
    """Parse SIDECAR.bz2 following docs/trace-formats.md, not the library.

    Documented layout: one bz2 stream whose decompressed body starts with
    the ``ATCSIDE1`` magic, followed by frames of ``u32 count`` (LE, >= 1),
    ``count`` one-byte kinds, then ``count`` ``u64`` little-endian cycle
    deltas; absolute cycles are the running sum modulo 2^64 carried across
    frame boundaries from an initial cycle of 0.
    """
    body = bz2.decompress(path.read_bytes())
    assert body[:8] == _SIDECAR_MAGIC, "sidecar must start with the documented magic"
    offset, cycle, records = 8, 0, []
    while offset < len(body):
        (count,) = struct.unpack_from("<I", body, offset)
        assert count >= 1, "documented frames hold at least one record"
        offset += 4
        kinds = body[offset : offset + count]
        offset += count
        for index in range(count):
            (delta,) = struct.unpack_from("<Q", body, offset + 8 * index)
            cycle = (cycle + delta) % (1 << 64)
            records.append((kinds[index], cycle))
        offset += 8 * count
    assert offset == len(body), "no trailing bytes after the final frame"
    return records


class TestTraceFormatSpecAgainstFixtures:
    """docs/trace-formats.md re-parsed independently against the adapters."""

    @pytest.mark.parametrize("fixture", ["k6_mixed.trc", "k6_golden.trc.gz"])
    def test_doc_driven_k6_parser_agrees_with_the_adapter(self, fixture):
        from repro.traces.formats import concat_records, iter_k6_records

        path = _TRACES / fixture
        documented = _parse_k6_per_spec(path)
        library = concat_records(iter_k6_records(path))
        assert len(documented) == len(library)
        assert [a for a, _, _ in documented] == library.addresses.tolist()
        assert [k for _, k, _ in documented] == library.kinds.tolist()
        assert [c for _, _, c in documented] == library.cycles.tolist()

    def test_doc_driven_sidecar_parser_agrees_with_the_library(self):
        from repro.traces.formats import SidecarReader

        container = _GOLDEN / "lossless_k6"
        documented = _parse_sidecar_per_spec(container / "SIDECAR.bz2")
        reader = SidecarReader(container / "SIDECAR.bz2")
        kinds, cycles = reader.take(len(documented))
        reader.verify_exhausted()
        assert [k for k, _ in documented] == kinds.tolist()
        assert [c for _, c in documented] == cycles.tolist()

    def test_sidecar_covers_the_whole_container(self):
        metadata, _ = _parse_info_per_spec(_GOLDEN / "lossless_k6")
        documented = _parse_sidecar_per_spec(_GOLDEN / "lossless_k6" / "SIDECAR.bz2")
        assert len(documented) == metadata["original_length"]

    def test_documented_constants_appear_in_the_spec_page(self):
        spec = (_DOCS / "trace-formats.md").read_text(encoding="utf-8")
        for constant in ("ATCSIDE1", "SIDECAR.bz2", "P_MEM_RD", "P_MEM_WR", "P_FETCH",
                         "READ", "WRITE", "IFETCH", "u32 count", "mtime=0",
                         "record_bytes", "address_offset", "address_bytes"):
            assert constant in spec, f"trace-formats.md no longer documents {constant}"

    def test_workloads_page_catalogs_every_zoo_name(self):
        from repro.traces.zoo import ZOO_NAMES

        page = (_DOCS / "workloads.md").read_text(encoding="utf-8")
        for name in ZOO_NAMES:
            assert name in page, f"workloads.md does not catalog {name}"


# ``by_endpoint``/``by_status`` hold one entry per endpoint/status seen at
# runtime; the documented example shows plausible entries, a live snapshot
# shows whatever traffic happened — only their *type* is pinned.
_DYNAMIC_METRIC_MAPS = {"by_endpoint", "by_status"}


def _metrics_shape(value, name=""):
    """Reduce a metrics document to its key structure and value types."""
    if isinstance(value, dict):
        if name in _DYNAMIC_METRIC_MAPS:
            return "map"
        return {key: _metrics_shape(child, key) for key, child in sorted(value.items())}
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


class TestServiceMetricsSchemaAgainstLiveServer:
    """docs/service.md's /v1/metrics example is pinned against reality.

    The example JSON document in the service guide is parsed out of the
    page and its shape (keys, nesting, value types) compared with an
    actual ``GET /v1/metrics`` response from a real server — if the
    service grows or renames a counter without the documentation (and
    the schema string) moving with it, this fails.
    """

    def _documented_example(self):
        page = (_DOCS / "service.md").read_text(encoding="utf-8")
        match = re.search(r"```json\n(.*?)```", page, flags=re.DOTALL)
        assert match, "service.md must show the /v1/metrics example document"
        return json.loads(match.group(1))

    def test_documented_example_matches_a_live_snapshot(self):
        import http.client

        from repro.service import BackgroundServer, METRICS_SCHEMA, ServiceConfig

        documented = self._documented_example()
        assert documented["schema"] == METRICS_SCHEMA

        with BackgroundServer(ServiceConfig(port=0)) as server:
            connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                connection.request("GET", "/v1/metrics")
                live = json.loads(connection.getresponse().read())
            finally:
                connection.close()
        assert server.exit_code == 0
        assert _metrics_shape(live) == _metrics_shape(documented)

    def test_scraper_notes_match_the_documented_semantics(self):
        # The page promises these fields by name in its scraper notes;
        # keep the prose anchored to the real counter names.
        page = (_DOCS / "service.md").read_text(encoding="utf-8")
        for field in ("in_flight", "rejected", "aborted", "queue_depth",
                      "hit_rate", "Retry-After", "X-Atc-Cache", "X-Atc-Key"):
            assert field in page, f"service.md no longer documents {field}"
