"""Tests of the documentation site: structure, links, and format-spec truth.

Two layers of enforcement:

* **Structure** — every page mkdocs.yml navigates to exists, and every
  relative markdown link inside ``docs/`` resolves to a real file/anchor
  target, so ``mkdocs build --strict`` cannot fail on the CI docs job for
  structural reasons the test suite would miss locally.
* **Spec truth** — ``docs/atc-format.md`` is a byte-level specification;
  this module re-parses the golden containers under ``tests/data/golden/``
  with an *independent* reader that follows the documented offsets and
  constants (never the library code) and checks the result against the
  library decoder.  If the format and the document drift apart, one of
  these tests fails.
"""

from __future__ import annotations

import bz2
import json
import lzma
import re
import struct
import zlib
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent
_DOCS = _REPO / "docs"
_GOLDEN = Path(__file__).resolve().parent / "data" / "golden"

# Constants exactly as documented in docs/atc-format.md.
_INFO_MAGIC = b"ATCINFO1"
_CHUNK_MAGIC = b"ATCL"
_RECORD_FIXED = struct.Struct("<BII")
_CHUNK_HEADER = struct.Struct("<4sBQQ")
_TRANSLATION_BYTES = 8 * 256
_DECOMPRESS = {"bz2": bz2.decompress, "zlib": zlib.decompress, "lzma": lzma.decompress}

_DOC_METADATA_KEYS = (
    "format",
    "format_version",
    "mode",
    "backend",
    "original_length",
    "interval_length",
    "threshold",
    "chunk_buffer_addresses",
    "enable_translation",
    "num_chunks",
)


def _golden_containers():
    return sorted(path for path in _GOLDEN.iterdir() if path.is_dir())


def _container_suffix(container: Path) -> str:
    (info,) = container.glob("INFO.*")
    return info.name.split(".", 1)[1]


def _parse_info_per_spec(container: Path):
    """Parse INFO.<suffix> following docs/atc-format.md, not the library."""
    suffix = _container_suffix(container)
    body = _DECOMPRESS[suffix]((container / f"INFO.{suffix}").read_bytes())
    assert body[:8] == _INFO_MAGIC, "INFO body must start with the documented magic"
    (header_length,) = struct.unpack_from("<I", body, 8)
    metadata = json.loads(body[12 : 12 + header_length].decode("utf-8"))
    offset = 12 + header_length
    (interval_trace_length,) = struct.unpack_from("<I", body, offset)
    offset += 4
    interval_trace = body[offset : offset + interval_trace_length]
    assert offset + interval_trace_length == len(body), "no trailing bytes after interval trace"
    records = []
    position = 0
    while position < len(interval_trace):
        kind, chunk_id, length = _RECORD_FIXED.unpack_from(interval_trace, position)
        position += _RECORD_FIXED.size
        assert kind in (0, 1), "documented kinds are 0 (chunk) and 1 (imitate)"
        record = {"kind": kind, "chunk_id": chunk_id, "length": length}
        if kind == 1:
            record["active"] = interval_trace[position]
            position += 1 + _TRANSLATION_BYTES
        records.append(record)
    return metadata, records


class TestDocsStructure:
    def test_docs_directory_has_the_promised_pages(self):
        for page in ("index.md", "architecture.md", "paper-map.md", "atc-format.md",
                     "experiments.md", "performance.md", "cli.md"):
            assert (_DOCS / page).is_file(), f"docs/{page} missing"

    def test_mkdocs_nav_targets_exist(self):
        config = (_REPO / "mkdocs.yml").read_text(encoding="utf-8")
        for target in re.findall(r":\s*([\w-]+\.md)\s*$", config, flags=re.MULTILINE):
            assert (_DOCS / target).is_file(), f"mkdocs.yml navigates to missing docs/{target}"

    def test_relative_markdown_links_resolve(self):
        for page in _DOCS.glob("*.md"):
            text = page.read_text(encoding="utf-8")
            for match in re.finditer(r"\]\(([^)#\s]+\.md)(#[\w-]+)?\)", text):
                target = match.group(1)
                if target.startswith("http"):
                    continue
                resolved = (page.parent / target).resolve()
                assert resolved.is_file(), f"{page.name} links to missing {target}"

    def test_anchor_links_point_at_real_headings(self):
        pages = {page.name: page.read_text(encoding="utf-8") for page in _DOCS.glob("*.md")}
        for name, text in pages.items():
            for match in re.finditer(r"\]\(([\w-]+\.md)#([\w-]+)\)", text):
                target, anchor = match.group(1), match.group(2)
                headings = re.findall(r"^#+\s+(.*)$", pages[target], flags=re.MULTILINE)
                slugs = {
                    re.sub(r"[^\w\s-]", "", heading.lower()).strip().replace(" ", "-")
                    for heading in headings
                }
                assert anchor in slugs, f"{name} links to {target}#{anchor}, not a heading there"

    def test_readme_links_into_docs(self):
        readme = (_REPO / "README.md").read_text(encoding="utf-8")
        for target in re.findall(r"\]\((docs/[\w-]+\.md)\)", readme):
            assert (_REPO / target).is_file(), f"README links to missing {target}"
        assert "docs/" in readme, "README must link into the documentation site"


class TestAtcFormatSpecAgainstGoldenFixtures:
    """The independent, documentation-driven parser agrees with the library."""

    @pytest.fixture(scope="class", params=[p.name for p in _golden_containers()])
    def container(self, request):
        return _GOLDEN / request.param

    def test_chunk_files_are_one_indexed_atcl_streams(self, container):
        suffix = _container_suffix(container)
        chunk_files = sorted(
            (p for p in container.iterdir() if p.name[0].isdigit()),
            key=lambda p: int(p.name.split(".")[0]),
        )
        assert chunk_files, "every golden container stores at least one chunk"
        assert [int(p.name.split(".")[0]) for p in chunk_files] == list(
            range(1, len(chunk_files) + 1)
        )
        for path in chunk_files:
            payload = path.read_bytes()
            magic, version, count, buffer_addresses = _CHUNK_HEADER.unpack_from(payload)
            assert magic == _CHUNK_MAGIC
            assert version == 1
            assert count > 0
            assert buffer_addresses > 0

    def test_info_metadata_matches_documented_schema(self, container):
        metadata, _ = _parse_info_per_spec(container)
        assert sorted(metadata) == sorted(_DOC_METADATA_KEYS)
        assert metadata["format"] == "atc"
        assert metadata["format_version"] == 1
        assert metadata["mode"] == ("lossy" if container.name.startswith("lossy") else "lossless")
        assert metadata["backend"] == _container_suffix(container)

    def test_interval_trace_is_consistent_with_chunk_files(self, container):
        metadata, records = _parse_info_per_spec(container)
        chunk_ids_on_disk = {
            int(p.name.split(".")[0]) - 1 for p in container.iterdir() if p.name[0].isdigit()
        }
        assert metadata["num_chunks"] == len(chunk_ids_on_disk)
        referenced = {record["chunk_id"] for record in records}
        assert referenced == chunk_ids_on_disk, "records reference exactly the stored chunks"
        stored = [r for r in records if r["kind"] == 0]
        assert {r["chunk_id"] for r in stored} == chunk_ids_on_disk
        assert sum(r["length"] for r in records) == metadata["original_length"]
        if container.name.startswith("lossless"):
            assert all(r["kind"] == 0 for r in records), "lossless containers never imitate"
            assert [r["chunk_id"] for r in records] == list(range(len(records)))
        else:
            assert any(r["kind"] == 1 for r in records), "golden lossy fixtures cover imitation"

    def test_independent_parse_agrees_with_library_decoder(self, container):
        from repro.core.atc import AtcDecoder

        metadata, records = _parse_info_per_spec(container)
        decoder = AtcDecoder(container)
        assert decoder.metadata == metadata
        assert len(decoder.records) == len(records)
        for mine, theirs in zip(records, decoder.records):
            assert mine["kind"] == (0 if theirs.kind == "chunk" else 1)
            assert mine["chunk_id"] == theirs.chunk_id
            assert mine["length"] == theirs.length
        decoded = decoder.read_all()
        assert decoded.size == metadata["original_length"], "the documented integrity check"

    def test_gz_and_xz_aliases_store_canonical_suffixes(self):
        # Documented: aliases never appear on disk.
        names = {p.name for p in _golden_containers()}
        assert {"lossless_gz", "lossless_xz"} <= names
        assert _container_suffix(_GOLDEN / "lossless_gz") == "zlib"
        assert _container_suffix(_GOLDEN / "lossless_xz") == "lzma"

    def test_documented_constants_appear_in_the_spec_page(self):
        spec = (_DOCS / "atc-format.md").read_text(encoding="utf-8")
        for constant in ("ATCINFO1", "ATCL", "'<BII'", "'<4sBQQ'", "2048",
                         "original_length", "u32 header_length"):
            assert constant in spec, f"atc-format.md no longer documents {constant}"
