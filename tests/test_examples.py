"""Smoke tests that every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each example is run in-process with a reduced workload size where
the script supports it, and its output is checked for the headline strings
a reader would look for.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(monkeypatch, capsys, script: str, argv: list) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(_EXAMPLES_DIR / script), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        output = _run_example(monkeypatch, capsys, "quickstart.py", [])
        assert "bytesort" in output
        assert "reversible                 : True" in output
        assert "lossy bits/address" in output

    def test_random_values_demo(self, monkeypatch, capsys):
        output = _run_example(monkeypatch, capsys, "random_values_demo.py", [])
        assert "chunks stored       : 1" in output
        assert "compression ratio" in output

    def test_spec_like_compression_small(self, monkeypatch, capsys):
        output = _run_example(monkeypatch, capsys, "spec_like_compression.py", ["6000"])
        assert "Bits per address" in output
        assert "arith. mean" in output

    def test_prefetcher_fidelity(self, monkeypatch, capsys):
        output = _run_example(monkeypatch, capsys, "prefetcher_fidelity.py", [])
        assert "C/DC predictor outcome breakdown" in output

    def test_full_evaluation_writes_report(self, monkeypatch, capsys, tmp_path):
        report_path = tmp_path / "report.txt"
        _run_example(monkeypatch, capsys, "full_evaluation.py", [str(report_path)])
        report = report_path.read_text()
        assert "Table 1" in report
        assert "Table 3" in report
        assert "Reuse-distance fidelity" in report
