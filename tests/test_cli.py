"""Tests of the repro / bin2atc / atc2bin / atc-inspect command-line tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import atc2bin_main, bin2atc_main, inspect_main, main
from repro.traces.trace import read_raw_trace, write_raw_trace


@pytest.fixture
def raw_trace_file(tmp_path, working_set_addresses):
    path = tmp_path / "trace.bin"
    write_raw_trace(working_set_addresses, path)
    return path


class TestBin2Atc:
    def test_lossless_roundtrip_via_files(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output)]) == 0
        recovered = read_raw_trace(output)
        assert np.array_equal(recovered.addresses, working_set_addresses)

    def test_lossy_preserves_length(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output)]) == 0
        assert len(read_raw_trace(output)) == working_set_addresses.size

    def test_lossy_stationary_trace_creates_single_chunk(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        chunk_files = [p for p in container.iterdir() if p.name[0].isdigit()]
        assert len(chunk_files) == 1

    def test_alternate_backend(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--backend",
                "zlib",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        assert (container / "INFO.zlib").exists()

    def test_existing_container_rejected(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        assert bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)]) == 0
        assert bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)]) == 1


class TestAtc2Bin:
    def test_missing_container_is_a_usage_error(self, tmp_path):
        # A path that is not an ATC container at all is exit 2 (usage),
        # distinct from exit 1 (a real container that fails mid-decode).
        assert atc2bin_main([str(tmp_path / "missing")]) == 2


class TestJobsFlag:
    def test_parallel_encode_decode_roundtrip(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
                "--jobs",
                "4",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output), "--jobs", "4"]) == 0
        assert np.array_equal(read_raw_trace(output).addresses, working_set_addresses)

    def test_missing_input_file_fails_cleanly(self, tmp_path, capsys):
        container = tmp_path / "container"
        args = [str(container), "--lossless", "--input", str(tmp_path / "nope.bin")]
        assert bin2atc_main(args) == 1
        assert "cannot open input" in capsys.readouterr().err

    def test_unwritable_output_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)])
        capsys.readouterr()
        args = [str(container), "--output", str(tmp_path / "no-dir" / "out.bin")]
        assert atc2bin_main(args) == 1
        assert "cannot open output" in capsys.readouterr().err

    def test_invalid_jobs_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        args = [str(container), "--lossless", "--input", str(raw_trace_file), "--jobs", "-3"]
        assert bin2atc_main(args) == 1
        assert "workers" in capsys.readouterr().err

    def test_invalid_backend_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        args = [str(container), "--input", str(raw_trace_file), "--backend", "bzip99"]
        assert bin2atc_main(args) == 1
        assert "unknown compression backend" in capsys.readouterr().err

    def test_jobs_containers_are_byte_identical(self, tmp_path, raw_trace_file):
        containers = []
        for jobs in ("1", "4"):
            container = tmp_path / f"container-{jobs}"
            bin2atc_main(
                [
                    str(container),
                    "--lossless",
                    "--input",
                    str(raw_trace_file),
                    "--buffer-addresses",
                    "10000",
                    "--jobs",
                    jobs,
                ]
            )
            containers.append(
                {entry.name: entry.read_bytes() for entry in container.iterdir()}
            )
        assert containers[0] == containers[1]


class TestReproUmbrella:
    def test_compress_decompress_inspect(self, tmp_path, raw_trace_file, working_set_addresses, capsys):
        container = tmp_path / "container"
        assert (
            main(
                [
                    "compress",
                    str(container),
                    "--lossless",
                    "--input",
                    str(raw_trace_file),
                    "--buffer-addresses",
                    "10000",
                    "--jobs",
                    "2",
                ]
            )
            == 0
        )
        output = tmp_path / "out.bin"
        assert main(["decompress", str(container), "--output", str(output)]) == 0
        assert np.array_equal(read_raw_trace(output).addresses, working_set_addresses)
        assert main(["inspect", str(container)]) == 0
        assert "lossless" in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        assert main(["transmogrify"]) == 2
        captured = capsys.readouterr().err
        assert "unknown subcommand" in captured
        # The error path prints the full usage, which must list every
        # subcommand registered in the dispatch table.
        for subcommand in ("compress", "decompress", "inspect", "convert", "zoo", "sweep", "bench"):
            assert subcommand in captured

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2
        captured = capsys.readouterr().err
        assert "usage: repro" in captured
        assert "sweep" in captured

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0
        captured = capsys.readouterr().out
        assert "subcommands" in captured
        assert "sweep       run declarative experiment sweeps" in captured
        assert "convert" in captured
        assert "zoo" in captured


@pytest.fixture
def sweep_spec_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(
        """
        {
          "workloads": [{"name": "429.mcf", "references": 5000},
                        {"name": "433.milc", "references": 5000}],
          "filters": [{"label": "l1-paper"},
                      {"label": "l1-8KB", "capacity_bytes": 8192, "associativity": 2}],
          "codecs": [{"kind": "lossless"}, {"kind": "lossless", "backend": "zlib"}],
          "scale": {"small_buffer": 1000, "interval_length": 1000}
        }
        """
    )
    return path


class TestSweepSubcommand:
    def test_run_prints_report_and_populates_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        captured = capsys.readouterr()
        assert "bits per address" in captured.out
        assert "8 cells, 0 from cache" in captured.err
        cache_dir = sweep_spec_file.parent / "grid.sweep-cache"
        assert len(list(cache_dir.glob("*.json"))) == 8

    def test_second_run_serves_from_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        capsys.readouterr()
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        assert "8 from cache" in capsys.readouterr().err

    def test_status_before_and_after(self, sweep_spec_file, capsys):
        assert main(["sweep", "status", str(sweep_spec_file)]) == 0
        before = capsys.readouterr().out
        assert "0/8 cached" in before
        assert "pending" in before
        main(["sweep", "run", str(sweep_spec_file)])
        capsys.readouterr()
        assert main(["sweep", "status", str(sweep_spec_file)]) == 0
        assert "8/8 cached" in capsys.readouterr().out

    def test_report_requires_a_complete_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "report", str(sweep_spec_file)]) == 1
        assert "no cached result" in capsys.readouterr().err
        main(["sweep", "run", str(sweep_spec_file)])
        capsys.readouterr()
        assert main(["sweep", "report", str(sweep_spec_file), "--format", "csv"]) == 0
        report = capsys.readouterr().out
        assert report.startswith("workload,filter,codec,")
        assert len(report.strip().splitlines()) == 9

    def test_run_writes_markdown_report_to_file(self, sweep_spec_file, tmp_path, capsys):
        output = tmp_path / "report.md"
        args = ["sweep", "run", str(sweep_spec_file), "-f", "markdown", "-o", str(output)]
        assert main(args) == 0
        assert "| workload |" in output.read_text()

    def test_missing_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["sweep", "run", str(tmp_path / "absent.json")]) == 1
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"workloads": [], "codecs": ["raw"]}')
        assert main(["sweep", "run", str(bad)]) == 1
        assert "at least one workload" in capsys.readouterr().err

    def test_missing_action_fails_cleanly(self, capsys):
        assert main(["sweep"]) == 2
        assert "an action is required" in capsys.readouterr().err

    def test_broken_pipe_exits_quietly(self, sweep_spec_file, monkeypatch):
        # `repro sweep status SPEC | head` closes stdout early; a
        # well-behaved Unix filter exits 0 (the downstream consumer got all
        # it wanted), not with an error code or a BrokenPipeError traceback.
        import sys as _sys

        class _ClosedPipe:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                pass

            def close(self):
                pass

        saved = _sys.stdout
        monkeypatch.setattr(_sys, "stdout", _ClosedPipe())
        try:
            assert main(["sweep", "status", str(sweep_spec_file)]) == 0
        finally:
            monkeypatch.setattr(_sys, "stdout", saved)

    def test_keyboard_interrupt_exits_130(self, sweep_spec_file, monkeypatch):
        # Ctrl-C must map to the shell convention 128 + SIGINT = 130 so that
        # callers (make, CI, xargs) see the run as interrupted, not failed.
        import repro.cli as cli_module

        def _interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli_module._SUBCOMMANDS, "sweep", (_interrupted, "interrupted"))
        assert main(["sweep", "status", str(sweep_spec_file)]) == 130


class TestInspect:
    def test_inspect_prints_metadata(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        assert inspect_main([str(container)]) == 0
        captured = capsys.readouterr().out
        assert "mode" in captured
        assert "lossy" in captured
        assert "bits per address" in captured

    def test_inspect_missing_container(self, tmp_path):
        assert inspect_main([str(tmp_path / "missing")]) == 2


@pytest.fixture
def k6_trace_file(tmp_path):
    from repro.traces.formats import TraceRecords, write_k6_records

    path = tmp_path / "k6_small.trc.gz"
    addresses = (np.arange(5000, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(1 << 24)
    kinds = (np.arange(5000) % 3).astype(np.uint8)
    cycles = np.arange(5000, dtype=np.uint64) * np.uint64(3)
    records = TraceRecords(addresses, kinds, cycles)
    write_k6_records(path, [records])
    return path, records


class TestConvertSubcommand:
    def test_k6_gz_round_trips_through_a_container(self, tmp_path, k6_trace_file, capsys):
        from repro.traces.formats import iter_k6_records, records_equal

        source, records = k6_trace_file
        container = tmp_path / "container"
        assert (
            main(["convert", str(source), str(container), "--buffer-addresses", "2000"]) == 0
        )
        assert "coded 5000 addresses" in capsys.readouterr().err
        assert (container / "SIDECAR.bz2").is_file()

        back = tmp_path / "back.k6.trc.gz"
        assert main(["convert", str(container), str(back)]) == 0
        assert "exported 5000 records" in capsys.readouterr().err
        chunks = list(iter_k6_records(back))
        parsed = chunks[0] if len(chunks) == 1 else None
        if parsed is None:
            from repro.traces.formats import concat_records

            parsed = concat_records(chunks)
        assert records_equal(parsed, records)

    def test_explicit_format_flags_and_binary_layout(self, tmp_path, k6_trace_file):
        from repro.traces.formats import BinaryLayout, iter_binary_records

        source, records = k6_trace_file
        container = tmp_path / "container"
        assert main(["convert", str(source), str(container), "--buffer-addresses", "2000"]) == 0
        out = tmp_path / "mystery.out"
        assert (
            main(
                ["convert", str(container), str(out), "--to", "bin",
                 "--record-bytes", "12", "--address-bytes", "4"]
            )
            == 0
        )
        layout = BinaryLayout(record_bytes=12, address_bytes=4)
        with open(out, "rb") as handle:
            chunks = list(iter_binary_records(handle, layout=layout))
        total = sum(len(chunk) for chunk in chunks)
        assert total == len(records)

    def test_undetectable_format_is_a_runtime_error(self, tmp_path, capsys):
        source = tmp_path / "mystery.txt"
        source.write_text("0x40 P_MEM_RD 1\n")
        assert main(["convert", str(source), str(tmp_path / "container")]) == 1
        assert "repro convert: error:" in capsys.readouterr().err

    def test_missing_source_is_a_runtime_error(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "absent.k6.trc"), str(tmp_path / "c")]) == 1
        assert "repro convert: error:" in capsys.readouterr().err


class TestZooSubcommand:
    def test_text_listing_covers_the_catalog(self, capsys):
        from repro.traces.zoo import ZOO_NAMES

        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        for name in ZOO_NAMES:
            assert name in out

    def test_family_filter_and_json(self, capsys):
        import json

        assert main(["zoo", "--family", "stream", "-f", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in entries} == {
            "stream.add", "stream.copy", "stream.scale", "stream.triad"
        }
        assert all(entry["family"] == "stream" for entry in entries)
        assert all(entry["cores"] == 1 for entry in entries)


@pytest.fixture
def small_container(tmp_path, raw_trace_file):
    """A freshly encoded multi-chunk lossless container for damage tests."""
    container = tmp_path / "container"
    assert (
        bin2atc_main(
            [
                str(container),
                "--lossless",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
            ]
        )
        == 0
    )
    return container


class TestContainerOpenFailures:
    """Things that are not ATC containers: typed error naming the file, exit 2."""

    def test_empty_file_is_not_a_container(self, tmp_path, capsys):
        target = tmp_path / "empty.atc"
        target.write_bytes(b"")
        assert atc2bin_main([str(target)]) == 2
        err = capsys.readouterr().err
        assert "empty.atc" in err and "not an ATC container" in err

    def test_empty_info_stream_is_exit_2(self, tmp_path, capsys):
        container = tmp_path / "c"
        container.mkdir()
        (container / "INFO.bz2").write_bytes(b"")
        assert atc2bin_main([str(container)]) == 2
        err = capsys.readouterr().err
        assert "INFO.bz2" in err and "not an ATC container" in err

    def test_short_magic_is_exit_2(self, tmp_path, capsys):
        import bz2

        container = tmp_path / "c"
        container.mkdir()
        (container / "INFO.bz2").write_bytes(bz2.compress(b"ATC?"))
        assert atc2bin_main([str(container)]) == 2
        err = capsys.readouterr().err
        assert "not an ATC container" in err

    def test_mid_header_truncation_is_exit_2(self, tmp_path, capsys):
        import bz2
        import struct

        container = tmp_path / "c"
        container.mkdir()
        # Header claims 999 bytes of JSON; the body ends after one byte.
        body = b"ATCINFO1" + struct.pack("<I", 999) + b"{"
        (container / "INFO.bz2").write_bytes(bz2.compress(body))
        assert atc2bin_main([str(container)]) == 2
        err = capsys.readouterr().err
        assert "not an ATC container" in err

    def test_inspect_uses_the_same_exit_code(self, tmp_path, capsys):
        target = tmp_path / "empty.atc"
        target.write_bytes(b"")
        assert inspect_main([str(target)]) == 2
        assert "not an ATC container" in capsys.readouterr().err

    def test_integrity_damage_mid_decode_is_exit_1(self, small_container, capsys):
        from repro.testing.faults import flip_bit

        chunks = sorted(
            p for p in small_container.iterdir() if not p.name.startswith("INFO.")
        )
        flip_bit(chunks[0], 17)
        # The container *opens* fine (INFO intact) but decode hits damage:
        # a runtime failure (1), not a usage error (2).
        assert atc2bin_main([str(small_container), "--output", "/dev/null"]) == 1
        err = capsys.readouterr().err
        assert "digest mismatch" in err


class TestInspectVerify:
    def test_verify_passes_on_a_clean_container(self, small_container, capsys):
        assert inspect_main([str(small_container), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify" in out and "ok" in out

    def test_verify_reports_a_damage_table_and_exit_1(self, small_container, capsys):
        from repro.testing.faults import flip_bit

        chunks = sorted(
            p for p in small_container.iterdir() if not p.name.startswith("INFO.")
        )
        flip_bit(chunks[1], 3)
        assert inspect_main([str(small_container), "--verify"]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert chunks[1].name in captured.err
        assert "digest-mismatch" in captured.err


class TestFsckSubcommand:
    def test_clean_container_exits_0(self, small_container, capsys):
        assert main(["fsck", str(small_container)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_damage_exits_1_and_names_the_chunk(self, small_container, capsys):
        from repro.testing.faults import flip_bit

        chunks = sorted(
            p for p in small_container.iterdir() if not p.name.startswith("INFO.")
        )
        flip_bit(chunks[0], 12)
        assert main(["fsck", str(small_container)]) == 1
        captured = capsys.readouterr()
        assert "damage found" in captured.out
        assert chunks[0].name in captured.out + captured.err

    def test_not_a_container_exits_2(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nothing")]) == 2
        assert "not an ATC container" in capsys.readouterr().err

    def test_repair_writes_a_salvaged_container(self, small_container, capsys):
        import json as json_module

        from repro.core.atc import AtcDecoder
        from repro.testing.faults import flip_bit

        chunks = sorted(
            p for p in small_container.iterdir() if not p.name.startswith("INFO.")
        )
        flip_bit(chunks[-1], 9)
        salvaged = small_container.parent / "salvaged"
        assert main(["fsck", str(small_container), "--repair", "-o", str(salvaged)]) == 1
        out = capsys.readouterr().out
        assert "salvage" in out.lower()
        # The salvage decodes (damage was the last chunk, so a clean prefix).
        assert main(["fsck", str(salvaged)]) == 0
        AtcDecoder(salvaged).read_all()

    def test_json_format_reports_structured_verdicts(self, small_container, capsys):
        import json as json_module

        from repro.testing.faults import flip_bit

        chunks = sorted(
            p for p in small_container.iterdir() if not p.name.startswith("INFO.")
        )
        flip_bit(chunks[0], 12)
        assert main(["fsck", str(small_container), "-f", "json"]) == 1
        document = json_module.loads(capsys.readouterr().out)
        assert document["kind"] == "container"
        assert document["ok"] is False
        statuses = [c["status"] for c in document["containers"][0]["chunks"]]
        assert statuses.count("digest-mismatch") == 1

    def test_fsck_scrubs_a_sweep_store(self, tmp_path, capsys):
        from repro.experiments.store import ResultStore

        store_dir = tmp_path / "cache"
        ResultStore(store_dir).put("ab" * 32, {"metric": 1})
        assert main(["fsck", str(store_dir)]) == 0
        entry = store_dir / ("ab" * 32 + ".json")
        entry.write_text(entry.read_text().replace("1", "7"))
        assert main(["fsck", str(store_dir)]) == 1
        captured = capsys.readouterr()
        assert "digest-mismatch" in captured.out + captured.err
