"""Tests of the repro / bin2atc / atc2bin / atc-inspect command-line tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import atc2bin_main, bin2atc_main, inspect_main, main
from repro.traces.trace import read_raw_trace, write_raw_trace


@pytest.fixture
def raw_trace_file(tmp_path, working_set_addresses):
    path = tmp_path / "trace.bin"
    write_raw_trace(working_set_addresses, path)
    return path


class TestBin2Atc:
    def test_lossless_roundtrip_via_files(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output)]) == 0
        recovered = read_raw_trace(output)
        assert np.array_equal(recovered.addresses, working_set_addresses)

    def test_lossy_preserves_length(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output)]) == 0
        assert len(read_raw_trace(output)) == working_set_addresses.size

    def test_lossy_stationary_trace_creates_single_chunk(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        chunk_files = [p for p in container.iterdir() if p.name[0].isdigit()]
        assert len(chunk_files) == 1

    def test_alternate_backend(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--backend",
                "zlib",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
            ]
        )
        assert exit_code == 0
        assert (container / "INFO.zlib").exists()

    def test_existing_container_rejected(self, tmp_path, raw_trace_file):
        container = tmp_path / "container"
        assert bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)]) == 0
        assert bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)]) == 1


class TestAtc2Bin:
    def test_missing_container_fails_cleanly(self, tmp_path):
        assert atc2bin_main([str(tmp_path / "missing")]) == 1


class TestJobsFlag:
    def test_parallel_encode_decode_roundtrip(self, tmp_path, raw_trace_file, working_set_addresses):
        container = tmp_path / "container"
        exit_code = bin2atc_main(
            [
                str(container),
                "--lossless",
                "--input",
                str(raw_trace_file),
                "--buffer-addresses",
                "10000",
                "--jobs",
                "4",
            ]
        )
        assert exit_code == 0
        output = tmp_path / "out.bin"
        assert atc2bin_main([str(container), "--output", str(output), "--jobs", "4"]) == 0
        assert np.array_equal(read_raw_trace(output).addresses, working_set_addresses)

    def test_missing_input_file_fails_cleanly(self, tmp_path, capsys):
        container = tmp_path / "container"
        args = [str(container), "--lossless", "--input", str(tmp_path / "nope.bin")]
        assert bin2atc_main(args) == 1
        assert "cannot open input" in capsys.readouterr().err

    def test_unwritable_output_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        bin2atc_main([str(container), "--lossless", "--input", str(raw_trace_file)])
        capsys.readouterr()
        args = [str(container), "--output", str(tmp_path / "no-dir" / "out.bin")]
        assert atc2bin_main(args) == 1
        assert "cannot open output" in capsys.readouterr().err

    def test_invalid_jobs_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        args = [str(container), "--lossless", "--input", str(raw_trace_file), "--jobs", "-3"]
        assert bin2atc_main(args) == 1
        assert "workers" in capsys.readouterr().err

    def test_invalid_backend_fails_cleanly(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        args = [str(container), "--input", str(raw_trace_file), "--backend", "bzip99"]
        assert bin2atc_main(args) == 1
        assert "unknown compression backend" in capsys.readouterr().err

    def test_jobs_containers_are_byte_identical(self, tmp_path, raw_trace_file):
        containers = []
        for jobs in ("1", "4"):
            container = tmp_path / f"container-{jobs}"
            bin2atc_main(
                [
                    str(container),
                    "--lossless",
                    "--input",
                    str(raw_trace_file),
                    "--buffer-addresses",
                    "10000",
                    "--jobs",
                    jobs,
                ]
            )
            containers.append(
                {entry.name: entry.read_bytes() for entry in container.iterdir()}
            )
        assert containers[0] == containers[1]


class TestReproUmbrella:
    def test_compress_decompress_inspect(self, tmp_path, raw_trace_file, working_set_addresses, capsys):
        container = tmp_path / "container"
        assert (
            main(
                [
                    "compress",
                    str(container),
                    "--lossless",
                    "--input",
                    str(raw_trace_file),
                    "--buffer-addresses",
                    "10000",
                    "--jobs",
                    "2",
                ]
            )
            == 0
        )
        output = tmp_path / "out.bin"
        assert main(["decompress", str(container), "--output", str(output)]) == 0
        assert np.array_equal(read_raw_trace(output).addresses, working_set_addresses)
        assert main(["inspect", str(container)]) == 0
        assert "lossless" in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        assert main(["transmogrify"]) == 2
        captured = capsys.readouterr().err
        assert "unknown subcommand" in captured
        # The error path prints the full usage, which must list every
        # subcommand — including sweep.
        for subcommand in ("compress", "decompress", "inspect", "sweep"):
            assert subcommand in captured

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2
        captured = capsys.readouterr().err
        assert "usage: repro" in captured
        assert "sweep" in captured

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0
        captured = capsys.readouterr().out
        assert "subcommands" in captured
        assert "sweep       run declarative experiment sweeps" in captured


@pytest.fixture
def sweep_spec_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(
        """
        {
          "workloads": [{"name": "429.mcf", "references": 5000},
                        {"name": "433.milc", "references": 5000}],
          "filters": [{"label": "l1-paper"},
                      {"label": "l1-8KB", "capacity_bytes": 8192, "associativity": 2}],
          "codecs": [{"kind": "lossless"}, {"kind": "lossless", "backend": "zlib"}],
          "scale": {"small_buffer": 1000, "interval_length": 1000}
        }
        """
    )
    return path


class TestSweepSubcommand:
    def test_run_prints_report_and_populates_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        captured = capsys.readouterr()
        assert "bits per address" in captured.out
        assert "8 cells, 0 from cache" in captured.err
        cache_dir = sweep_spec_file.parent / "grid.sweep-cache"
        assert len(list(cache_dir.glob("*.json"))) == 8

    def test_second_run_serves_from_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        capsys.readouterr()
        assert main(["sweep", "run", str(sweep_spec_file)]) == 0
        assert "8 from cache" in capsys.readouterr().err

    def test_status_before_and_after(self, sweep_spec_file, capsys):
        assert main(["sweep", "status", str(sweep_spec_file)]) == 0
        before = capsys.readouterr().out
        assert "0/8 cached" in before
        assert "pending" in before
        main(["sweep", "run", str(sweep_spec_file)])
        capsys.readouterr()
        assert main(["sweep", "status", str(sweep_spec_file)]) == 0
        assert "8/8 cached" in capsys.readouterr().out

    def test_report_requires_a_complete_cache(self, sweep_spec_file, capsys):
        assert main(["sweep", "report", str(sweep_spec_file)]) == 1
        assert "no cached result" in capsys.readouterr().err
        main(["sweep", "run", str(sweep_spec_file)])
        capsys.readouterr()
        assert main(["sweep", "report", str(sweep_spec_file), "--format", "csv"]) == 0
        report = capsys.readouterr().out
        assert report.startswith("workload,filter,codec,")
        assert len(report.strip().splitlines()) == 9

    def test_run_writes_markdown_report_to_file(self, sweep_spec_file, tmp_path, capsys):
        output = tmp_path / "report.md"
        args = ["sweep", "run", str(sweep_spec_file), "-f", "markdown", "-o", str(output)]
        assert main(args) == 0
        assert "| workload |" in output.read_text()

    def test_missing_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["sweep", "run", str(tmp_path / "absent.json")]) == 1
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"workloads": [], "codecs": ["raw"]}')
        assert main(["sweep", "run", str(bad)]) == 1
        assert "at least one workload" in capsys.readouterr().err

    def test_missing_action_fails_cleanly(self, capsys):
        assert main(["sweep"]) == 2
        assert "an action is required" in capsys.readouterr().err

    def test_broken_pipe_exits_quietly(self, sweep_spec_file, monkeypatch):
        # `repro sweep status SPEC | head` closes stdout early; the umbrella
        # must exit with an error code, not a BrokenPipeError traceback.
        import sys as _sys

        class _ClosedPipe:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                pass

            def close(self):
                pass

        saved = _sys.stdout
        monkeypatch.setattr(_sys, "stdout", _ClosedPipe())
        try:
            assert main(["sweep", "status", str(sweep_spec_file)]) == 1
        finally:
            monkeypatch.setattr(_sys, "stdout", saved)


class TestInspect:
    def test_inspect_prints_metadata(self, tmp_path, raw_trace_file, capsys):
        container = tmp_path / "container"
        bin2atc_main(
            [
                str(container),
                "--input",
                str(raw_trace_file),
                "--interval-length",
                "10000",
                "--buffer-addresses",
                "10000",
            ]
        )
        assert inspect_main([str(container)]) == 0
        captured = capsys.readouterr().out
        assert "mode" in captured
        assert "lossy" in captured
        assert "bits per address" in captured

    def test_inspect_missing_container(self, tmp_path):
        assert inspect_main([str(tmp_path / "missing")]) == 1
