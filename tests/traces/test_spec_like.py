"""Tests of the 22-entry SPEC-like workload suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.spec_like import (
    SPEC_LIKE_NAMES,
    generate_reference_stream,
    get_workload,
    spec_like_suite,
)


class TestSuiteStructure:
    def test_suite_has_22_workloads_like_table1(self):
        assert len(SPEC_LIKE_NAMES) == 22
        assert len(spec_like_suite()) == 22

    def test_names_match_table1(self):
        expected = {
            "400.perlbench", "401.bzip2", "403.gcc", "410.bwaves", "429.mcf", "433.milc",
            "434.zeusmp", "435.gromacs", "444.namd", "445.gobmk", "447.dealII", "450.soplex",
            "453.povray", "456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref", "470.lbm",
            "471.omnetpp", "473.astar", "482.sphinx3", "483.xalancbmk",
        }
        assert set(SPEC_LIKE_NAMES) == expected

    def test_every_workload_has_description_and_stability(self):
        for workload in spec_like_suite():
            assert workload.description
            assert workload.stability in ("stable", "mixed", "unstable")

    def test_lookup_by_full_name_and_number(self):
        assert get_workload("429.mcf").name == "429.mcf"
        assert get_workload("429").name == "429.mcf"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("999.nothere")


class TestWorkloadGeneration:
    @pytest.mark.parametrize("name", ["410.bwaves", "429.mcf", "403.gcc", "453.povray"])
    def test_streams_have_requested_data_length(self, name):
        stream = generate_reference_stream(name, 5_000, seed=0)
        assert stream.data_addresses.size == 5_000
        assert stream.name == name

    def test_generation_is_deterministic(self):
        a = generate_reference_stream("471.omnetpp", 3_000, seed=42)
        b = generate_reference_stream("471.omnetpp", 3_000, seed=42)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_seeds_differ(self):
        a = generate_reference_stream("458.sjeng", 3_000, seed=1)
        b = generate_reference_stream("458.sjeng", 3_000, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_streaming_workload_is_regular(self):
        """410.bwaves-like must be (nearly) pure constant-stride streaming."""
        stream = generate_reference_stream("410.bwaves", 4_000, seed=0)
        data = stream.data_addresses.astype(np.int64)
        deltas = np.diff(data)
        # Four interleaved streams -> a small set of distinct deltas.
        assert np.unique(deltas).size <= 8

    def test_pointer_chasing_workload_is_irregular(self):
        stream = generate_reference_stream("429.mcf", 4_000, seed=0)
        data = stream.data_addresses.astype(np.int64)
        deltas = np.diff(data)
        assert np.unique(deltas).size > 1_000

    def test_povray_has_tiny_footprint(self):
        stream = generate_reference_stream("453.povray", 10_000, seed=0)
        blocks = stream.data_addresses >> np.uint64(6)
        assert np.unique(blocks).size <= 310

    def test_workloads_touch_mostly_distinct_regions(self):
        """Different workloads must not access the same footprint."""
        bwaves = set(generate_reference_stream("410.bwaves", 2_000, seed=0).data_addresses.tolist())
        mcf = set(generate_reference_stream("429.mcf", 2_000, seed=0).data_addresses.tolist())
        overlap = len(bwaves & mcf) / min(len(bwaves), len(mcf))
        assert overlap < 0.01

    @pytest.mark.parametrize("name", list(SPEC_LIKE_NAMES))
    def test_all_workloads_generate(self, name):
        stream = generate_reference_stream(name, 2_000, seed=3)
        assert len(stream) >= 2_000
        assert stream.addresses.dtype == np.dtype("<u8")
