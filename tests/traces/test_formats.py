"""Tests of the trace-format adapters, the sidecar and ``repro convert``.

Three layers:

* **Adapters** — the k6/mase/binary readers and writers round-trip, stream
  at bounded memory, survive arbitrary short reads (hypothesis), and fail
  loudly with line/record-numbered errors.
* **Conversion** — ``convert_to_atc`` / ``export_from_atc`` round-trip
  file-to-file through real ATC containers, commands and cycles preserved
  exactly via the ``SIDECAR.bz2`` stream, at flat peak memory.
* **Golden fixtures** — the committed container under
  ``tests/data/golden/lossless_k6`` (made from the committed
  ``tests/data/traces/k6_golden.trc.gz``) is pinned byte for byte, sidecar
  included, like the core golden containers.  To regenerate after an
  *intentional* format change::

      PYTHONPATH=src python tests/traces/test_formats.py --regen
"""

from __future__ import annotations

import gzip
import io
import shutil
import sys
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atc import MODE_LOSSY, AtcDecoder
from repro.core.lossy import LossyConfig
from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.formats import (
    BinaryLayout,
    SidecarReader,
    SidecarWriter,
    SyntheticSidecar,
    TraceRecords,
    concat_records,
    convert_to_atc,
    detect_format,
    export_from_atc,
    format_names,
    get_format,
    has_sidecar,
    iter_binary_records,
    iter_k6_records,
    iter_mase_records,
    records_equal,
    sidecar_path,
    write_binary_records,
    write_k6_records,
    write_mase_records,
)

_DATA = Path(__file__).resolve().parent.parent / "data"
TRACES = _DATA / "traces"
GOLDEN_K6 = _DATA / "golden" / "lossless_k6"


# ---------------------------------------------------------------------------
# deterministic golden input (pure integer arithmetic, no RNG)
# ---------------------------------------------------------------------------
def golden_records() -> TraceRecords:
    """1200 records: three phases, all three kinds, non-monotonic cycles."""
    k = np.arange(1200, dtype=np.uint64)
    phase = k // np.uint64(400)
    scrambled = ((k + np.uint64(1)) * np.uint64(2654435761)) % np.uint64(4096)
    addresses = np.uint64(0x40_0000) + phase * np.uint64(0x1_0000) + scrambled * np.uint64(64)
    kinds = (k % np.uint64(3)).astype(np.uint8)
    # Cycles jump backwards at k = 600, exercising the sidecar's modular
    # delta encoding on a committed fixture.
    cycles = np.where(k < 600, np.uint64(1000) + np.uint64(3) * k, np.uint64(2) * k).astype(np.uint64)
    return TraceRecords(addresses, kinds, cycles.astype(np.uint64))


def golden_config() -> LossyConfig:
    """The fixed configuration the golden k6 container was converted with."""
    return LossyConfig(interval_length=400, threshold=0.5, chunk_buffer_addresses=400, backend="bz2")


_WIDE_LAYOUT = BinaryLayout(record_bytes=16, address_offset=4, address_bytes=6, byteorder="big")


def _read_all(chunks) -> TraceRecords:
    return concat_records(list(chunks))


def _files_of(directory: Path) -> dict:
    return {entry.name: entry.read_bytes() for entry in sorted(directory.iterdir())}


# ---------------------------------------------------------------------------
# TraceRecords
# ---------------------------------------------------------------------------
class TestTraceRecords:
    def test_from_addresses_synthesizes_kinds_and_cycles(self):
        chunk = TraceRecords.from_addresses(np.array([64, 128], dtype=np.uint64), start_cycle=10)
        assert chunk.kinds.tolist() == [0, 0]
        assert chunk.cycles.tolist() == [10, 11]
        assert len(chunk) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecords(
                np.zeros(2, np.uint64), np.zeros(1, np.uint8), np.zeros(2, np.uint64)
            )

    def test_invalid_kind_codes_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecords(
                np.zeros(1, np.uint64), np.array([3], np.uint8), np.zeros(1, np.uint64)
            )

    def test_concat_and_equality(self):
        full = golden_records()
        parts = [
            TraceRecords(full.addresses[:500], full.kinds[:500], full.cycles[:500]),
            TraceRecords(full.addresses[500:], full.kinds[500:], full.cycles[500:]),
        ]
        assert records_equal(concat_records(parts), full)
        assert not records_equal(full, TraceRecords.from_addresses(full.addresses))


# ---------------------------------------------------------------------------
# registry and detection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_all_adapters_registered(self):
        assert {"k6", "mase", "bin", "raw"} <= set(format_names())

    def test_unknown_format_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="k6"):
            get_format("elf")

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("k6_mcf.trc", "k6"),
            ("trace.k6.gz", "k6"),
            ("mase_run.trc", "mase"),
            ("out.mase.trc.gz", "mase"),
            ("dump.bin", "bin"),
            ("trace.bin.gz", "bin"),
            ("packets.dump", "bin"),
            ("trace.raw", "raw"),
            ("trace.addr.gz", "raw"),
            ("mystery.txt", None),
        ],
    )
    def test_detection_rules(self, name, expected):
        assert detect_format(name) == expected


# ---------------------------------------------------------------------------
# text adapters
# ---------------------------------------------------------------------------
_K6_MIXED_EXPECTED = TraceRecords(
    np.array(
        [0x10000, 0x10040, 0x10080, 0xDEADBEEF, 0xDEADBF2F, 0x0,
         0xFFFFFFFFFFFFFFFF, 0x7F0000001230],
        dtype=np.uint64,
    ),
    np.array([0, 1, 2, 0, 1, 2, 0, 2], dtype=np.uint8),
    np.array([10, 11, 12, 20, 21, 0, 18446744073709551615, 99], dtype=np.uint64),
)


class TestTextAdapters:
    def test_k6_mixed_fixture_parses_to_the_expected_records(self):
        with open(TRACES / "k6_mixed.trc", "rb") as handle:
            assert records_equal(_read_all(iter_k6_records(handle)), _K6_MIXED_EXPECTED)

    def test_k6_fixture_ends_without_a_trailing_newline(self):
        # The fixture intentionally covers the unterminated-final-line path.
        assert not (TRACES / "k6_mixed.trc").read_bytes().endswith(b"\n")

    def test_mase_mixed_fixture_matches_the_k6_one(self):
        with open(TRACES / "mase_mixed.trc", "rb") as handle:
            assert records_equal(_read_all(iter_mase_records(handle)), _K6_MIXED_EXPECTED)

    @pytest.mark.parametrize("chunk_records", [1, 7, 4096])
    def test_chunk_size_never_changes_the_parse(self, chunk_records):
        payload = (TRACES / "k6_mixed.trc").read_bytes()
        chunks = list(iter_k6_records(io.BytesIO(payload), chunk_records=chunk_records))
        assert all(len(chunk) for chunk in chunks)
        assert records_equal(concat_records(chunks), _K6_MIXED_EXPECTED)

    def test_writer_output_is_canonical(self, tmp_path):
        path = tmp_path / "out.trc"
        assert write_k6_records(path, [_K6_MIXED_EXPECTED]) == len(_K6_MIXED_EXPECTED)
        text = path.read_text()
        assert text.splitlines()[0] == "0x10000 P_MEM_RD 10"
        assert text.endswith("\n")
        with open(path, "rb") as handle:
            assert records_equal(_read_all(iter_k6_records(handle)), _K6_MIXED_EXPECTED)

    def test_mase_round_trip_through_gz(self, tmp_path):
        path = tmp_path / "out.mase.trc.gz"
        write_mase_records(path, [golden_records()])
        assert records_equal(_read_all(iter_mase_records(path)), golden_records())

    def test_gz_writes_are_byte_deterministic(self, tmp_path):
        first, second = tmp_path / "a.trc.gz", tmp_path / "b.trc.gz"
        write_k6_records(first, [golden_records()])
        write_k6_records(second, [golden_records()])
        assert first.read_bytes() == second.read_bytes()

    @pytest.mark.parametrize(
        "line, message",
        [
            (b"0x40 P_MEM_RD\n", "expected '<address> <command> <cycle>'"),
            (b"zz P_MEM_RD 1\n", "bad hexadecimal address"),
            (b"0x40 SNOOP 1\n", "unknown command"),
            (b"0x40 P_MEM_RD x\n", "bad decimal cycle"),
            (b"10000000000000000 P_MEM_RD 1\n", "does not fit in 64 bits"),
            (b"0x40 P_MEM_RD 99999999999999999999\n", "does not fit in 64 bits"),
            ("0x4é P_MEM_RD 1\n".encode("utf-8"), "non-ASCII"),
        ],
    )
    def test_parse_errors_carry_the_line_number(self, line, message):
        payload = b"# header\n0x40 P_MEM_RD 1\n" + line
        with pytest.raises(TraceFormatError, match=message) as excinfo:
            _read_all(iter_k6_records(io.BytesIO(payload)))
        if "non-ASCII" not in message:
            assert "line 3" in str(excinfo.value)


# ---------------------------------------------------------------------------
# binary adapter
# ---------------------------------------------------------------------------
class TestBinaryAdapter:
    def test_default_layout_round_trip(self, tmp_path):
        path = tmp_path / "trace.bin"
        addresses = golden_records().addresses
        assert write_binary_records(path, [golden_records()]) == addresses.size
        with open(path, "rb") as handle:
            parsed = _read_all(iter_binary_records(handle))
        assert np.array_equal(parsed.addresses, addresses)
        # Kinds/cycles are synthesized: reads with ordinal cycles.
        assert parsed.kinds.max() == 0
        assert np.array_equal(parsed.cycles, np.arange(addresses.size, dtype=np.uint64))

    def test_committed_wide_dump_fixture(self):
        with open(TRACES / "wide.dump", "rb") as handle:
            parsed = _read_all(iter_binary_records(handle, layout=_WIDE_LAYOUT))
        assert np.array_equal(parsed.addresses, golden_records().addresses)

    def test_wide_layout_writer_reproduces_the_fixture(self, tmp_path):
        path = tmp_path / "wide.dump"
        write_binary_records(path, [golden_records()], layout=_WIDE_LAYOUT)
        assert path.read_bytes() == (TRACES / "wide.dump").read_bytes()

    def test_trailing_partial_record_raises_after_full_records(self):
        payload = (64).to_bytes(8, "little") + b"\x01\x02\x03"
        chunks = iter_binary_records(io.BytesIO(payload))
        first = next(chunks)
        assert first.addresses.tolist() == [64]
        with pytest.raises(TraceFormatError, match="partial 8-byte record"):
            next(chunks)

    def test_address_overflow_on_write(self, tmp_path):
        narrow = BinaryLayout(record_bytes=4, address_offset=0, address_bytes=2)
        with pytest.raises(TraceFormatError, match="does not fit in 2 byte"):
            write_binary_records(
                tmp_path / "n.bin",
                [TraceRecords.from_addresses(np.array([0x1_0000], dtype=np.uint64))],
                layout=narrow,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"record_bytes": 0},
            {"address_bytes": 0},
            {"address_bytes": 9},
            {"record_bytes": 8, "address_offset": 4, "address_bytes": 6},
            {"byteorder": "middle"},
        ],
    )
    def test_invalid_layouts_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BinaryLayout(**kwargs)


# ---------------------------------------------------------------------------
# short reads (pipes / gzip members may split anywhere)
# ---------------------------------------------------------------------------
class ShortReadFile:
    """A file object that never returns more than ``limit`` bytes per read."""

    def __init__(self, payload: bytes, limit: int) -> None:
        self._buffer = io.BytesIO(payload)
        self._limit = limit

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            size = self._limit
        return self._buffer.read(min(size, self._limit))

    def close(self) -> None:
        self._buffer.close()


_records_strategy = st.integers(min_value=0, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 2**64 - 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 2), min_size=n, max_size=n),
        st.lists(st.integers(0, 2**64 - 1), min_size=n, max_size=n),
    )
)


def _as_records(data) -> TraceRecords:
    addresses, kinds, cycles = data
    return TraceRecords(
        np.array(addresses, dtype=np.uint64),
        np.array(kinds, dtype=np.uint8),
        np.array(cycles, dtype=np.uint64),
    )


class TestShortReadReassembly:
    @settings(max_examples=25, deadline=None)
    @given(data=_records_strategy, chunk_records=st.sampled_from([1, 7, 4096]),
           limit=st.sampled_from([1, 13]))
    def test_k6_reader_survives_any_read_fragmentation(self, data, chunk_records, limit):
        records = _as_records(data)
        sink = io.BytesIO()
        write_k6_records(sink, [records])
        parsed = _read_all(
            iter_k6_records(ShortReadFile(sink.getvalue(), limit), chunk_records=chunk_records)
        )
        assert records_equal(parsed, records)

    @settings(max_examples=25, deadline=None)
    @given(data=_records_strategy, chunk_records=st.sampled_from([1, 7, 4096]),
           limit=st.sampled_from([1, 13]))
    def test_binary_reader_survives_any_read_fragmentation(self, data, chunk_records, limit):
        records = _as_records(data)
        sink = io.BytesIO()
        write_binary_records(sink, [records], layout=BinaryLayout())
        parsed = _read_all(
            iter_binary_records(ShortReadFile(sink.getvalue(), limit), chunk_records=chunk_records)
        )
        assert np.array_equal(parsed.addresses, records.addresses)


# ---------------------------------------------------------------------------
# the command/cycle sidecar
# ---------------------------------------------------------------------------
class TestSidecar:
    def _round_trip(self, tmp_path, kinds, cycles, frames=1):
        path = tmp_path / "SIDECAR.bz2"
        with SidecarWriter(path) as writer:
            for part in np.array_split(np.arange(len(kinds)), max(frames, 1)):
                if part.size:
                    writer.append(kinds[part], cycles[part])
        with SidecarReader(path) as reader:
            got_kinds, got_cycles = reader.take(len(kinds))
            reader.verify_exhausted()
        return got_kinds, got_cycles

    def test_exact_round_trip_across_frames(self, tmp_path):
        records = golden_records()
        kinds, cycles = self._round_trip(tmp_path, records.kinds, records.cycles, frames=7)
        assert np.array_equal(kinds, records.kinds)
        assert np.array_equal(cycles, records.cycles)

    def test_wrapping_and_non_monotonic_cycles_are_exact(self, tmp_path):
        cycles = np.array([2**64 - 1, 0, 5, 2, 2**63], dtype=np.uint64)
        kinds = np.array([0, 1, 2, 1, 0], dtype=np.uint8)
        got_kinds, got_cycles = self._round_trip(tmp_path, kinds, cycles, frames=2)
        assert np.array_equal(got_cycles, cycles)
        assert np.array_equal(got_kinds, kinds)

    def test_reader_rechunks_at_any_boundary(self, tmp_path):
        records = golden_records()
        path = tmp_path / "SIDECAR.bz2"
        with SidecarWriter(path) as writer:
            writer.append(records.kinds, records.cycles)
        with SidecarReader(path) as reader:
            pieces = [reader.take(7)[1] for _ in range(3)]
            rest = reader.take(len(records) - 21)[1]
            reader.verify_exhausted()
        assert np.array_equal(np.concatenate(pieces + [rest]), records.cycles)

    def test_underrun_and_overrun_are_detected(self, tmp_path):
        records = golden_records()
        path = tmp_path / "SIDECAR.bz2"
        with SidecarWriter(path) as writer:
            writer.append(records.kinds, records.cycles)
        with SidecarReader(path) as reader:
            with pytest.raises(TraceFormatError, match="ends before"):
                reader.take(len(records) + 1)
        with SidecarReader(path) as reader:
            reader.take(10)
            with pytest.raises(TraceFormatError, match="more records"):
                reader.verify_exhausted()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "SIDECAR.bz2"
        import bz2 as _bz2

        path.write_bytes(_bz2.compress(b"NOTASIDE" + b"\x00" * 16))
        with pytest.raises(TraceFormatError, match="magic"):
            SidecarReader(path)

    def test_truncated_stream_rejected(self, tmp_path):
        import bz2 as _bz2

        full = tmp_path / "SIDECAR.bz2"
        with SidecarWriter(full) as writer:
            writer.append(np.zeros(4, np.uint8), np.arange(4, dtype=np.uint64))
        payload = _bz2.decompress(full.read_bytes())
        cut = tmp_path / "CUT.bz2"
        cut.write_bytes(_bz2.compress(payload[:-3]))
        with SidecarReader(cut) as reader:
            with pytest.raises(TraceFormatError, match="truncated"):
                reader.take(4)

    def test_synthetic_sidecar_defaults(self):
        sidecar = SyntheticSidecar(cycle_gap=10)
        kinds, cycles = sidecar.take(3)
        assert kinds.tolist() == [0, 0, 0]
        assert cycles.tolist() == [0, 10, 20]
        kinds, cycles = sidecar.take(2)
        assert cycles.tolist() == [30, 40]
        sidecar.verify_exhausted()


# ---------------------------------------------------------------------------
# conversion round-trips
# ---------------------------------------------------------------------------
class TestConvertRoundTrips:
    def _k6_source(self, tmp_path, name="source.k6.trc.gz"):
        path = tmp_path / name
        write_k6_records(path, [golden_records()])
        return path

    def test_k6_gz_to_atc_and_back_is_semantically_identical(self, tmp_path):
        source = self._k6_source(tmp_path)
        container = tmp_path / "container"
        summary = convert_to_atc(source, container, config=golden_config())
        assert summary["addresses"] == len(golden_records())
        assert summary["format"] == "k6"
        assert has_sidecar(container)

        back = tmp_path / "back.k6.trc.gz"
        out = export_from_atc(container, back)
        assert out["records"] == len(golden_records())
        assert records_equal(_read_all(iter_k6_records(back)), golden_records())

    def test_export_twice_is_byte_identical(self, tmp_path):
        container = tmp_path / "container"
        convert_to_atc(self._k6_source(tmp_path), container, config=golden_config())
        first, second = tmp_path / "a.k6.trc.gz", tmp_path / "b.k6.trc.gz"
        export_from_atc(container, first)
        export_from_atc(container, second)
        assert first.read_bytes() == second.read_bytes()

    def test_cross_format_export_k6_to_mase(self, tmp_path):
        container = tmp_path / "container"
        convert_to_atc(self._k6_source(tmp_path), container, config=golden_config())
        out = tmp_path / "out.mase.trc"
        export_from_atc(container, out)
        with open(out, "rb") as handle:
            assert records_equal(_read_all(iter_mase_records(handle)), golden_records())

    def test_lossy_mode_keeps_kinds_and_cycles_exact(self, tmp_path):
        container = tmp_path / "container"
        convert_to_atc(
            self._k6_source(tmp_path), container, mode=MODE_LOSSY, config=golden_config()
        )
        assert AtcDecoder(container).is_lossy
        back = tmp_path / "back.k6.trc"
        export_from_atc(container, back)
        with open(back, "rb") as handle:
            parsed = _read_all(iter_k6_records(handle))
        expected = golden_records()
        assert len(parsed) == len(expected)  # lossy keeps the length...
        assert np.array_equal(parsed.kinds, expected.kinds)  # ...and the sidecar stays exact
        assert np.array_equal(parsed.cycles, expected.cycles)

    def test_no_sidecar_exports_synthesized_defaults(self, tmp_path):
        container = tmp_path / "container"
        convert_to_atc(
            self._k6_source(tmp_path), container, config=golden_config(), write_sidecar=False
        )
        assert not has_sidecar(container)
        back = tmp_path / "back.k6.trc"
        export_from_atc(container, back, cycle_gap=4)
        with open(back, "rb") as handle:
            parsed = _read_all(iter_k6_records(handle))
        assert np.array_equal(parsed.addresses, golden_records().addresses)
        assert parsed.kinds.max() == 0
        assert np.array_equal(
            parsed.cycles, np.arange(len(parsed), dtype=np.uint64) * np.uint64(4)
        )

    def test_binary_source_and_destination(self, tmp_path):
        source = tmp_path / "wide.dump"
        write_binary_records(source, [golden_records()], layout=_WIDE_LAYOUT)
        container = tmp_path / "container"
        convert_to_atc(source, container, config=golden_config(), layout=_WIDE_LAYOUT)
        out = tmp_path / "out.bin"
        export_from_atc(container, out)
        with open(out, "rb") as handle:
            parsed = _read_all(iter_binary_records(handle))
        assert np.array_equal(parsed.addresses, golden_records().addresses)

    def test_undetectable_format_points_at_the_flag(self, tmp_path):
        path = tmp_path / "mystery.txt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="pass the format explicitly"):
            convert_to_atc(path, tmp_path / "container", config=golden_config())

    @staticmethod
    def _convert_peaks(tmp_path, length):
        addresses = (np.arange(length, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(1 << 30)
        source = tmp_path / f"big_{length}.k6.trc"
        write_k6_records(source, [TraceRecords.from_addresses(addresses)])
        config = LossyConfig(
            interval_length=25_000, chunk_buffer_addresses=25_000, backend="zlib"
        )
        container = tmp_path / f"container_{length}"
        tracemalloc.start()
        try:
            convert_to_atc(source, container, config=config, chunk_records=4096)
            _, encode_peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            export_from_atc(container, tmp_path / f"back_{length}.k6.trc", chunk_addresses=4096)
            _, export_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return source.stat().st_size, encode_peak, export_peak

    def test_convert_is_flat_memory(self, tmp_path):
        # The real flat-memory property: tripling the trace must not grow
        # the peak (streaming chunks + fixed codec buffers), even though the
        # large file is several times bigger than the whole footprint.
        small_size, small_encode, small_export = self._convert_peaks(tmp_path, 100_000)
        large_size, large_encode, large_export = self._convert_peaks(tmp_path, 300_000)
        assert large_size > 3 * small_size - 1_000_000
        assert large_encode < 1.3 * small_encode, (small_encode, large_encode)
        assert large_export < 1.3 * small_export, (small_export, large_export)
        assert large_encode < large_size, "peak stays below the file size"
        assert large_encode < 8_000_000, f"convert peak {large_encode} bytes"
        assert large_export < 8_000_000, f"export peak {large_export} bytes"


# ---------------------------------------------------------------------------
# the committed golden container (byte-pinned, sidecar included)
# ---------------------------------------------------------------------------
class TestGoldenK6Container:
    def test_fixtures_are_committed(self):
        for path in (GOLDEN_K6, TRACES / "k6_golden.trc.gz", TRACES / "wide.dump"):
            assert path.exists(), (
                f"missing fixture {path}; regenerate with "
                "PYTHONPATH=src python tests/traces/test_formats.py --regen"
            )

    def test_committed_source_parses_to_the_golden_records(self):
        assert records_equal(
            _read_all(iter_k6_records(TRACES / "k6_golden.trc.gz")), golden_records()
        )

    def test_fresh_convert_reproduces_the_container_byte_for_byte(self, tmp_path):
        fresh = tmp_path / "lossless_k6"
        convert_to_atc(TRACES / "k6_golden.trc.gz", fresh, config=golden_config())
        expected = _files_of(GOLDEN_K6)
        actual = _files_of(fresh)
        assert actual.keys() == expected.keys()
        for name in expected:
            assert actual[name] == expected[name], (
                f"lossless_k6/{name} drifted from the committed golden bytes"
            )

    def test_sidecar_is_committed_and_counted(self):
        assert has_sidecar(GOLDEN_K6)
        decoder = AtcDecoder(GOLDEN_K6)
        sidecar_bytes = sidecar_path(GOLDEN_K6).stat().st_size
        assert decoder.compressed_bytes() >= sidecar_bytes, (
            "sidecar bytes must count toward the container's size"
        )

    def test_export_matches_the_committed_source_bytes(self, tmp_path):
        out = tmp_path / "k6_golden.trc.gz"
        export_from_atc(GOLDEN_K6, out)
        assert gzip.decompress(out.read_bytes()) == gzip.decompress(
            (TRACES / "k6_golden.trc.gz").read_bytes()
        )

    def test_library_decoder_reads_the_addresses(self):
        assert np.array_equal(AtcDecoder(GOLDEN_K6).read_all(), golden_records().addresses)


# ---------------------------------------------------------------------------
# --regen
# ---------------------------------------------------------------------------
def _regenerate() -> None:
    TRACES.mkdir(parents=True, exist_ok=True)
    write_k6_records(TRACES / "k6_golden.trc.gz", [golden_records()])
    print(f"wrote {TRACES / 'k6_golden.trc.gz'}")
    write_binary_records(TRACES / "wide.dump", [golden_records()], layout=_WIDE_LAYOUT)
    print(f"wrote {TRACES / 'wide.dump'}")
    if GOLDEN_K6.exists():
        shutil.rmtree(GOLDEN_K6)
    convert_to_atc(TRACES / "k6_golden.trc.gz", GOLDEN_K6, config=golden_config())
    print(f"wrote {GOLDEN_K6}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
