"""Tests of multi-core trace interleaving and splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.multicore import (
    MAX_CORES,
    interleave_round_robin,
    interleave_weighted,
    merge_traces,
    split_by_core,
)
from repro.traces.trace import AddressTrace


class TestRoundRobinInterleave:
    def test_two_equal_cores_alternate(self):
        core0 = np.array([1, 2, 3], dtype=np.uint64)
        core1 = np.array([10, 20, 30], dtype=np.uint64)
        merged = interleave_round_robin([core0, core1], tag_core_id=False)
        assert merged.tolist() == [1, 10, 2, 20, 3, 30]

    def test_uneven_lengths_drain_the_longer_core(self):
        core0 = np.array([1], dtype=np.uint64)
        core1 = np.array([10, 20, 30], dtype=np.uint64)
        merged = interleave_round_robin([core0, core1], tag_core_id=False)
        assert sorted(merged.tolist()) == [1, 10, 20, 30]
        assert merged.size == 4

    def test_single_core_passthrough(self):
        core0 = np.arange(10, dtype=np.uint64)
        merged = interleave_round_robin([core0], tag_core_id=False)
        assert np.array_equal(merged, core0)

    def test_tagging_and_split_roundtrip(self):
        core0 = np.arange(0, 50, dtype=np.uint64)
        core1 = np.arange(100, 180, dtype=np.uint64)
        core2 = np.arange(200, 230, dtype=np.uint64)
        merged = interleave_round_robin([core0, core1, core2])
        recovered = split_by_core(merged, num_cores=3)
        assert np.array_equal(recovered[0], core0)
        assert np.array_equal(recovered[1], core1)
        assert np.array_equal(recovered[2], core2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interleave_round_robin([])
        with pytest.raises(ConfigurationError):
            interleave_round_robin([np.arange(2, dtype=np.uint64)] * (MAX_CORES + 1))


class TestWeightedInterleave:
    def test_weights_control_injection_rate(self):
        core0 = np.zeros(300, dtype=np.uint64)
        core1 = np.ones(300, dtype=np.uint64)
        merged = interleave_weighted([core0, core1], weights=[2.0, 1.0], tag_core_id=False)
        # In the first 150 slots core 0 (weight 2) should appear about twice
        # as often as core 1.
        head = merged[:150]
        core0_share = float((head == 0).mean())
        assert 0.55 < core0_share < 0.8

    def test_equal_weights_match_round_robin(self):
        core0 = np.arange(0, 20, dtype=np.uint64)
        core1 = np.arange(100, 120, dtype=np.uint64)
        weighted = interleave_weighted([core0, core1], weights=[1.0, 1.0], tag_core_id=False)
        round_robin = interleave_round_robin([core0, core1], tag_core_id=False)
        assert np.array_equal(weighted, round_robin)

    def test_weight_validation(self):
        core = np.arange(5, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            interleave_weighted([core], weights=[])
        with pytest.raises(ConfigurationError):
            interleave_weighted([core], weights=[0.0])


class TestSplitByCore:
    def test_invalid_core_count(self):
        with pytest.raises(ConfigurationError):
            split_by_core(np.arange(4, dtype=np.uint64), num_cores=0)

    def test_core_id_out_of_range_detected(self):
        core0 = np.arange(4, dtype=np.uint64)
        core1 = np.arange(10, 14, dtype=np.uint64)
        merged = interleave_round_robin([core0, core1])
        from repro.errors import TraceFormatError

        with pytest.raises(TraceFormatError):
            split_by_core(merged, num_cores=1)


class TestMergeTraces:
    def test_merge_returns_named_trace(self):
        traces = [
            AddressTrace.from_iterable(range(10), name="core0"),
            AddressTrace.from_iterable(range(100, 110), name="core1"),
        ]
        merged = merge_traces(traces, name="duo")
        assert merged.name == "duo"
        assert len(merged) == 20

    def test_merged_trace_compresses_with_atc(self, tmp_path):
        """A merged multi-core trace is still a plain 64-bit trace for ATC."""
        from repro.core.lossless import LosslessCodec

        rng = np.random.default_rng(1)
        cores = [
            rng.integers(0, 4_096, size=5_000, dtype=np.uint64) + np.uint64((core + 1) << 20)
            for core in range(4)
        ]
        merged = interleave_round_robin(cores)
        codec = LosslessCodec(buffer_addresses=5_000)
        assert np.array_equal(codec.decompress(codec.compress(merged)), merged)
