"""Tests of the L1I/L1D cache filter front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig
from repro.errors import ConfigurationError
from repro.traces import synthetic
from repro.traces.filter import (
    PAPER_L1_CONFIG,
    CacheFilter,
    filter_reference_stream,
    filtered_spec_like_trace,
)
from repro.traces.synthetic import make_reference_stream


class TestPaperL1Config:
    def test_geometry_matches_section_4_2(self):
        assert PAPER_L1_CONFIG.capacity_bytes == 32 * 1024
        assert PAPER_L1_CONFIG.associativity == 4
        assert PAPER_L1_CONFIG.block_bytes == 64
        assert PAPER_L1_CONFIG.policy == "lru"
        assert PAPER_L1_CONFIG.num_sets == 128


class TestCacheFilter:
    def test_cache_resident_working_set_produces_few_misses(self):
        """A working set smaller than 32 KB should be filtered away."""
        data = synthetic.random_working_set(20_000, working_set_blocks=128, seed=0)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        result = filter_reference_stream(stream)
        assert result.filter_ratio < 0.05

    def test_streaming_data_misses_once_per_block(self):
        data = synthetic.sequential_stream(16_384, base=0x4000_0000, stride=8)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        result = filter_reference_stream(stream)
        # 16384 * 8 bytes = 128 KB touched = 2048 blocks, each missing once.
        assert len(result.trace) == 2_048

    def test_output_is_block_addresses(self):
        data = synthetic.sequential_stream(4_096, base=0x4000_0000, stride=64)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        result = filter_reference_stream(stream)
        assert result.trace.addresses.max() < (1 << 58)
        assert np.array_equal(
            result.trace.addresses,
            np.arange(0x4000_0000 // 64, 0x4000_0000 // 64 + 4_096, dtype=np.uint64),
        )

    def test_instruction_and_data_use_separate_caches(self):
        data = synthetic.sequential_stream(2_000, base=0x4000_0000, stride=64)
        stream = make_reference_stream(data, instruction_ratio=1.0, seed=0)
        cache_filter = CacheFilter()
        result = cache_filter.filter(stream)
        assert result.instruction_stats.accesses == 2_000
        assert result.data_stats.accesses == 2_000
        assert result.total_references == 4_000

    def test_misses_preserve_program_order(self):
        data = synthetic.strided_stream(1_000, base=0, stride=4096)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        result = filter_reference_stream(stream)
        assert np.array_equal(result.trace.addresses, data >> np.uint64(6))

    def test_mismatched_block_sizes_rejected(self):
        other = CacheConfig(num_sets=64, associativity=4, block_bytes=32)
        with pytest.raises(ConfigurationError):
            CacheFilter(instruction_config=PAPER_L1_CONFIG, data_config=other)

    def test_reset_clears_state(self):
        data = synthetic.sequential_stream(4_096, base=0, stride=64)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        cache_filter = CacheFilter()
        first = cache_filter.filter(stream)
        cache_filter.reset()
        second = cache_filter.filter(stream)
        assert len(first.trace) == len(second.trace)


class TestFilteredSpecLikeTrace:
    def test_end_to_end_trace_generation(self):
        trace = filtered_spec_like_trace("433.milc", 10_000, seed=0)
        assert trace.name == "433.milc"
        assert len(trace) > 0

    def test_deterministic(self):
        a = filtered_spec_like_trace("445.gobmk", 5_000, seed=3)
        b = filtered_spec_like_trace("445.gobmk", 5_000, seed=3)
        assert a == b

    def test_regular_workloads_filter_down_more_than_random(self):
        streaming = filtered_spec_like_trace("453.povray", 10_000, seed=0)
        pointer = filtered_spec_like_trace("429.mcf", 10_000, seed=0)
        assert len(streaming) < len(pointer)


class TestFilterBatchEquivalence:
    """The vectorised split-by-cache filter must match the interleaved loop."""

    def test_matches_serial_interleaved_reference(self):
        from repro.cache.cache import SetAssociativeCache

        stream = synthetic.make_reference_stream(
            synthetic.random_working_set(8_000, working_set_blocks=3_000, seed=3), seed=4
        )
        result = CacheFilter().filter(stream)

        icache = SetAssociativeCache(PAPER_L1_CONFIG)
        dcache = SetAssociativeCache(PAPER_L1_CONFIG)
        shift = np.uint64(6)
        blocks = (stream.addresses >> shift).astype(np.uint64)
        expected = []
        for block, instruction in zip(blocks.tolist(), stream.is_instruction.tolist()):
            cache = icache if instruction else dcache
            if not cache.access_block(block):
                expected.append(block)
        assert result.trace.addresses.tolist() == expected
        assert result.instruction_stats == icache.stats
        assert result.data_stats == dcache.stats
