"""Hypothesis property tests for multi-core trace interleaving.

The invariants the multicore substrate must hold for *arbitrary* inputs:

* ``split_by_core(interleave_*(traces))`` recovers every per-core trace
  exactly — for any number of cores (including one), any weights, any
  lengths (including empty cores and all-empty inputs);
* the merged trace is a permutation-by-interleaving: it contains every
  input address exactly once and preserves each core's internal order;
* the streaming chunk mergers are byte-identical to the in-memory
  functions for every chunking of the inputs and of the output.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stream import chunk_array, concat_chunks
from repro.traces.multicore import (
    interleave_round_robin,
    interleave_weighted,
    iter_interleave_round_robin,
    iter_interleave_weighted,
    split_by_core,
)

# Addresses must leave the spare tag bits free (58-bit block addresses).
_address = st.integers(min_value=0, max_value=(1 << 58) - 1)

_core_trace = st.lists(_address, min_size=0, max_size=60)

_cores = st.lists(_core_trace, min_size=1, max_size=5)

_weight = st.floats(min_value=0.125, max_value=16.0, allow_nan=False, allow_infinity=False)


def _as_arrays(cores):
    return [np.array(core, dtype=np.uint64) for core in cores]


def _with_weights(draw):
    cores = draw(_cores)
    weights = draw(
        st.lists(_weight, min_size=len(cores), max_size=len(cores))
    )
    return _as_arrays(cores), weights


_cores_and_weights = st.composite(_with_weights)()


class TestSplitRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_cores)
    def test_round_robin_roundtrips_per_core_traces(self, cores):
        arrays = _as_arrays(cores)
        merged = interleave_round_robin(arrays)
        recovered = split_by_core(merged, num_cores=len(arrays))
        assert len(recovered) == len(arrays)
        for original, back in zip(arrays, recovered):
            assert np.array_equal(back, original)

    @settings(max_examples=60, deadline=None)
    @given(_cores_and_weights)
    def test_weighted_roundtrips_per_core_traces(self, cores_and_weights):
        arrays, weights = cores_and_weights
        merged = interleave_weighted(arrays, weights=weights)
        recovered = split_by_core(merged, num_cores=len(arrays))
        for original, back in zip(arrays, recovered):
            assert np.array_equal(back, original)

    @settings(max_examples=30, deadline=None)
    @given(_core_trace)
    def test_single_core_is_identity(self, core):
        array = np.array(core, dtype=np.uint64)
        merged = interleave_round_robin([array], tag_core_id=False)
        assert np.array_equal(merged, array)
        (recovered,) = split_by_core(interleave_round_robin([array]), num_cores=1)
        assert np.array_equal(recovered, array)

    def test_all_cores_empty(self):
        arrays = [np.empty(0, dtype=np.uint64)] * 3
        merged = interleave_weighted(arrays, weights=[1.0, 2.0, 3.0])
        assert merged.size == 0
        assert all(part.size == 0 for part in split_by_core(merged, num_cores=3))


class TestMergeIsAnInterleaving:
    @settings(max_examples=60, deadline=None)
    @given(_cores_and_weights)
    def test_merged_is_multiset_union(self, cores_and_weights):
        arrays, weights = cores_and_weights
        merged = interleave_weighted(arrays, weights=weights, tag_core_id=False)
        expected = np.sort(np.concatenate(arrays)) if arrays else merged
        assert np.array_equal(np.sort(merged), expected)

    @settings(max_examples=60, deadline=None)
    @given(_cores_and_weights)
    def test_per_core_order_preserved(self, cores_and_weights):
        arrays, weights = cores_and_weights
        merged = interleave_weighted(arrays, weights=weights)
        recovered = split_by_core(merged, num_cores=len(arrays))
        # split_by_core preserves merged order, so equality with the input
        # (checked elsewhere) plus this length check implies order survival;
        # assert it directly for clarity.
        for original, back in zip(arrays, recovered):
            assert back.tolist() == original.tolist()


class TestStreamingMergerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(_cores_and_weights, st.integers(min_value=1, max_value=64))
    def test_chunked_inputs_and_outputs_match_in_memory(self, cores_and_weights, chunk):
        arrays, weights = cores_and_weights
        expected = interleave_weighted(arrays, weights=weights)
        streamed = concat_chunks(
            iter_interleave_weighted(
                [chunk_array(array, chunk) for array in arrays],
                weights,
                chunk_addresses=chunk,
            )
        )
        assert np.array_equal(streamed, expected)

    @settings(max_examples=40, deadline=None)
    @given(_cores, st.integers(min_value=1, max_value=64))
    def test_round_robin_chunk_merger_matches_in_memory(self, cores, chunk):
        arrays = _as_arrays(cores)
        expected = interleave_round_robin(arrays, tag_core_id=False)
        streamed = concat_chunks(
            iter_interleave_round_robin(
                [chunk_array(array, chunk) for array in arrays],
                tag_core_id=False,
                chunk_addresses=chunk,
            )
        )
        assert np.array_equal(streamed, expected)

    @settings(max_examples=20, deadline=None)
    @given(_cores_and_weights)
    def test_empty_input_chunks_are_absorbed(self, cores_and_weights):
        arrays, weights = cores_and_weights
        expected = interleave_weighted(arrays, weights=weights)
        empty = np.empty(0, dtype=np.uint64)

        def with_empties(array):
            yield empty
            for piece in chunk_array(array, 3):
                yield piece
                yield empty

        streamed = concat_chunks(
            iter_interleave_weighted([with_empties(a) for a in arrays], weights)
        )
        assert np.array_equal(streamed, expected)
