"""Tests of the workload zoo: registry, mixes, sweep integration, MPKI bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import SweepRunner
from repro.traces.spec_like import SPEC_LIKE_NAMES, generate_reference_stream, get_workload
from repro.traces.zoo import (
    ZOO_NAMES,
    get_zoo_workload,
    measure_mpki,
    zoo_suite,
    zoo_sweep_spec,
)

_CORE_STRIDE = 1 << 40


class TestRegistry:
    def test_catalog_has_all_three_families(self):
        assert len(ZOO_NAMES) >= 10
        families = {entry.family for entry in zoo_suite()}
        assert families == {"mix", "gap", "stream"}
        assert sum(1 for e in zoo_suite() if e.family == "mix") == 7

    def test_names_do_not_shadow_spec_like_workloads(self):
        assert not set(ZOO_NAMES) & set(SPEC_LIKE_NAMES)

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ConfigurationError, match="mix1"):
            get_zoo_workload("mix99")

    def test_get_workload_falls_back_to_the_zoo(self):
        for name in ZOO_NAMES:
            workload = get_workload(name)
            assert workload.name == name

    def test_get_workload_error_mentions_zoo_names(self):
        with pytest.raises(ConfigurationError, match="mix1"):
            get_workload("not-a-workload")

    def test_mix_entries_expose_their_composition(self):
        entry = get_zoo_workload("mix1")
        assert entry.cores == 4
        assert entry.components == ("imagick", "sssp", "stream_add", "mcf")
        assert "imagick" in entry.description


class TestStreams:
    @pytest.mark.parametrize("name", ["mix2", "gap.cc", "stream.triad"])
    def test_streams_are_deterministic_per_seed(self, name):
        first = generate_reference_stream(name, 4000, seed=3)
        second = generate_reference_stream(name, 4000, seed=3)
        assert np.array_equal(first.addresses, second.addresses)
        other = generate_reference_stream(name, 4000, seed=4)
        assert not np.array_equal(first.addresses, other.addresses)

    def test_mix_cores_live_in_disjoint_address_slices(self):
        workload = get_zoo_workload("mix4").workload
        data = workload.build_data(8000, 0)
        for core in range(4):
            slice_ids = data[core::4] // np.uint64(_CORE_STRIDE)
            assert np.all(slice_ids == core), f"core {core} escaped its address slice"

    def test_every_entry_builds_the_requested_length(self):
        for name in ZOO_NAMES:
            data = get_zoo_workload(name).workload.build_data(1003, 0)
            assert data.size == 1003
            assert data.dtype == np.uint64


class TestSweepIntegration:
    def test_zoo_grid_runs_and_caches_through_the_sweep_runner(self, tmp_path):
        spec = zoo_sweep_spec(references=1200)
        assert spec.num_units >= 10
        runner = SweepRunner(spec, cache_dir=tmp_path / "cache")
        result = runner.run()
        assert len(result.rows) == spec.num_units
        assert {row.workload for row in result.rows} == set(ZOO_NAMES)
        assert all(row.bits_per_address > 0 for row in result.rows)
        status = SweepRunner(spec, cache_dir=tmp_path / "cache").status()
        assert status.is_complete, "a second run must be served entirely from cache"

    def test_subset_and_validation(self):
        spec = zoo_sweep_spec(references=500, names=("mix1", "gap.bfs"))
        assert spec.num_units == 2
        with pytest.raises(ConfigurationError):
            zoo_sweep_spec(names=("mixX",))


class TestIntensityBands:
    """The qualitative MPKI ordering documented in docs/workloads.md."""

    def test_stream_is_lighter_than_mixes_is_lighter_than_gap(self):
        stream = measure_mpki("stream.copy", references=4000)
        mix = measure_mpki("mix5", references=4000)
        gap = measure_mpki("gap.bfs", references=4000)
        assert stream < mix < gap

    def test_gap_exceeds_stream_triad(self):
        assert measure_mpki("gap.bfs", references=4000) > measure_mpki(
            "stream.triad", references=4000
        )
