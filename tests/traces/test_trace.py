"""Tests of the AddressTrace type and raw trace I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.traces.trace import (
    ADDRESS_BYTES,
    AddressTrace,
    as_address_array,
    block_address,
    byte_address,
    iter_raw_addresses,
    read_raw_trace,
    write_raw_trace,
)


class TestAsAddressArray:
    def test_from_list(self):
        array = as_address_array([1, 2, 3])
        assert array.dtype == np.dtype("<u8")
        assert array.tolist() == [1, 2, 3]

    def test_from_numpy_uint64_is_passthrough(self):
        values = np.arange(10, dtype=np.uint64)
        assert as_address_array(values) is values

    def test_from_signed_numpy(self):
        values = np.arange(10, dtype=np.int64)
        assert as_address_array(values).dtype == np.dtype("<u8")

    def test_rejects_negative(self):
        with pytest.raises(TraceFormatError):
            as_address_array([-1])
        with pytest.raises(TraceFormatError):
            as_address_array(np.array([-1, 2], dtype=np.int64))

    def test_rejects_too_large(self):
        with pytest.raises(TraceFormatError):
            as_address_array([1 << 64])

    def test_from_generator(self):
        assert as_address_array(x * 2 for x in range(5)).tolist() == [0, 2, 4, 6, 8]


class TestBlockAddressConversion:
    def test_block_address_default_64_bytes(self):
        assert block_address([0, 63, 64, 130]).tolist() == [0, 0, 1, 2]

    def test_byte_address_roundtrip(self):
        blocks = np.array([0, 1, 5, 1000], dtype=np.uint64)
        assert np.array_equal(block_address(byte_address(blocks)), blocks)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(TraceFormatError):
            block_address([0], block_bytes=48)
        with pytest.raises(TraceFormatError):
            byte_address([0], block_bytes=100)


class TestAddressTrace:
    def test_basic_container_protocol(self):
        trace = AddressTrace.from_iterable([10, 20, 30], name="t")
        assert len(trace) == 3
        assert trace[1] == 20
        assert list(trace) == [10, 20, 30]
        assert trace.name == "t"

    def test_slicing_returns_trace(self):
        trace = AddressTrace.from_iterable(range(10), name="t")
        sliced = trace[2:5]
        assert isinstance(sliced, AddressTrace)
        assert len(sliced) == 3
        assert sliced.name == "t"

    def test_equality(self):
        assert AddressTrace.from_iterable([1, 2]) == AddressTrace.from_iterable([1, 2])
        assert AddressTrace.from_iterable([1, 2]) != AddressTrace.from_iterable([1, 3])

    def test_empty_trace(self):
        trace = AddressTrace.empty("nothing")
        assert len(trace) == 0
        assert trace.distinct_addresses() == 0

    def test_byte_columns_shape_and_values(self):
        trace = AddressTrace.from_iterable([0x0102030405060708])
        columns = trace.byte_columns()
        assert columns.shape == (1, ADDRESS_BYTES)
        assert columns[0].tolist() == [8, 7, 6, 5, 4, 3, 2, 1]

    def test_intervals_partition_the_trace(self):
        trace = AddressTrace.from_iterable(range(25))
        intervals = list(trace.intervals(10))
        assert [len(i) for i in intervals] == [10, 10, 5]
        assert np.array_equal(
            np.concatenate([i.addresses for i in intervals]), trace.addresses
        )

    def test_intervals_invalid_length(self):
        with pytest.raises(TraceFormatError):
            list(AddressTrace.from_iterable([1]).intervals(0))

    def test_distinct_and_footprint(self):
        trace = AddressTrace.from_iterable([1, 1, 2, 3, 3, 3])
        assert trace.distinct_addresses() == 3
        assert trace.footprint_bytes() == 3 * 64

    def test_concat(self):
        combined = AddressTrace.from_iterable([1, 2]).concat(AddressTrace.from_iterable([3]))
        assert list(combined) == [1, 2, 3]


class TestRawTraceIO:
    def test_roundtrip_via_path(self, tmp_path, random_addresses):
        path = tmp_path / "trace.bin"
        written = write_raw_trace(random_addresses, path)
        assert written == random_addresses.size * ADDRESS_BYTES
        recovered = read_raw_trace(path, name="raw")
        assert np.array_equal(recovered.addresses, random_addresses)
        assert recovered.name == "raw"

    def test_roundtrip_via_file_object(self, sequential_addresses):
        buffer = io.BytesIO()
        write_raw_trace(AddressTrace(sequential_addresses), buffer)
        buffer.seek(0)
        assert np.array_equal(read_raw_trace(buffer).addresses, sequential_addresses)

    def test_read_rejects_partial_record(self, tmp_path):
        path = tmp_path / "broken.bin"
        path.write_bytes(b"\x00" * 12)
        with pytest.raises(TraceFormatError):
            read_raw_trace(path)

    def test_iter_raw_addresses_streams_values(self, tmp_path):
        path = tmp_path / "trace.bin"
        values = np.arange(1000, dtype=np.uint64)
        write_raw_trace(values, path)
        assert list(iter_raw_addresses(path, chunk_addresses=64)) == values.tolist()

    def test_iter_raw_addresses_rejects_partial_tail(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b"\x01" * 20)
        with pytest.raises(TraceFormatError):
            list(iter_raw_addresses(path))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=200))
    def test_roundtrip_property(self, values):
        buffer = io.BytesIO()
        write_raw_trace(values, buffer)
        buffer.seek(0)
        assert read_raw_trace(buffer).addresses.tolist() == values
