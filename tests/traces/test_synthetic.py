"""Tests of the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces import synthetic
from repro.traces.synthetic import ReferenceStream, make_reference_stream


class TestPrimitiveGenerators:
    def test_sequential_stream_is_arithmetic(self):
        stream = synthetic.sequential_stream(100, base=1000, stride=8)
        assert stream[0] == 1000
        assert np.all(np.diff(stream.astype(np.int64)) == 8)

    def test_strided_stream_wraps(self):
        stream = synthetic.strided_stream(100, base=0, stride=64, wrap_bytes=640)
        assert stream.max() < 640
        assert stream[10] == stream[0]

    def test_multi_stream_interleaves_bases(self):
        stream = synthetic.multi_stream(6, bases=[0, 1000], stride=8)
        assert stream.tolist() == [0, 1000, 8, 1008, 16, 1016]

    def test_loop_nest_row_major_is_sequential(self):
        stream = synthetic.loop_nest(16, base=0, rows=4, cols=4, element_bytes=8)
        assert stream.tolist() == [i * 8 for i in range(16)]

    def test_loop_nest_column_major_strides_by_row_length(self):
        stream = synthetic.loop_nest(4, base=0, rows=4, cols=4, element_bytes=8, column_major=True)
        assert stream.tolist() == [0, 32, 64, 96]

    def test_loop_nest_repeats_to_requested_length(self):
        stream = synthetic.loop_nest(40, base=0, rows=4, cols=4)
        assert stream.size == 40
        assert np.array_equal(stream[:16], stream[16:32])

    def test_random_working_set_bounded(self):
        stream = synthetic.random_working_set(10_000, working_set_blocks=64, base=0, seed=3)
        assert np.unique(stream).size <= 64
        assert stream.max() < 64 * 64

    def test_random_working_set_deterministic(self):
        a = synthetic.random_working_set(1_000, working_set_blocks=128, seed=5)
        b = synthetic.random_working_set(1_000, working_set_blocks=128, seed=5)
        assert np.array_equal(a, b)

    def test_pointer_chase_visits_nodes_cyclically(self):
        stream = synthetic.pointer_chase(50, num_nodes=10, base=0, node_bytes=64, seed=1)
        # A permutation cycle over <=10 nodes repeats with period <= 10.
        assert np.unique(stream).size <= 10

    def test_pointer_chase_deterministic(self):
        a = synthetic.pointer_chase(200, num_nodes=50, seed=9)
        b = synthetic.pointer_chase(200, num_nodes=50, seed=9)
        assert np.array_equal(a, b)

    def test_gups_updates_aligned(self):
        stream = synthetic.gups_updates(1_000, table_bytes=1 << 20, base=0, seed=2)
        assert np.all(stream % 8 == 0)
        assert stream.max() < 1 << 20

    def test_stack_accesses_stay_below_base(self):
        stream = synthetic.stack_accesses(1_000, base=0x1_0000, max_depth_bytes=4096, seed=4)
        assert np.all(stream <= 0x1_0000)
        assert np.all(stream >= 0x1_0000 - 4096)

    def test_phased_stream_concatenates(self):
        a = synthetic.sequential_stream(10, base=0)
        b = synthetic.sequential_stream(5, base=10_000)
        combined = synthetic.phased_stream([a, b])
        assert combined.size == 15
        assert np.array_equal(combined[:10], a)

    def test_region_mixture_respects_regions(self):
        stream = synthetic.region_mixture(
            5_000, regions=[(0, 1 << 16), (1 << 30, 1 << 16)], weights=[0.5, 0.5], seed=6
        )
        in_first = stream < (1 << 16)
        in_second = (stream >= (1 << 30)) & (stream < (1 << 30) + (1 << 16))
        assert np.all(in_first | in_second)
        assert 0.3 < in_first.mean() < 0.7

    def test_code_stream_mostly_hot(self):
        stream = synthetic.code_stream(10_000, code_base=0, hot_code_bytes=4096, seed=7)
        hot_fraction = (stream < 4096).mean()
        assert hot_fraction > 0.9


class TestGeneratorValidation:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: synthetic.sequential_stream(0),
            lambda: synthetic.sequential_stream(10, stride=0),
            lambda: synthetic.multi_stream(10, bases=[]),
            lambda: synthetic.random_working_set(10, working_set_blocks=0),
            lambda: synthetic.pointer_chase(10, num_nodes=0),
            lambda: synthetic.phased_stream([]),
            lambda: synthetic.region_mixture(10, regions=[]),
            lambda: synthetic.region_mixture(10, regions=[(0, 64)], weights=[0.0]),
            lambda: synthetic.loop_nest(0),
        ],
    )
    def test_invalid_parameters_raise(self, call):
        with pytest.raises(ConfigurationError):
            call()


class TestReferenceStream:
    def test_make_reference_stream_mixes_instruction_and_data(self):
        data = synthetic.sequential_stream(1_000, base=0x1000_0000)
        stream = make_reference_stream(data, name="mix", instruction_ratio=1.0, seed=11)
        assert len(stream) == 2_000
        assert stream.is_instruction.sum() == 1_000
        assert np.array_equal(stream.data_addresses, data)

    def test_zero_instruction_ratio(self):
        data = synthetic.sequential_stream(100, base=0)
        stream = make_reference_stream(data, instruction_ratio=0.0)
        assert len(stream) == 100
        assert stream.is_instruction.sum() == 0

    def test_mismatched_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferenceStream(np.arange(5, dtype=np.uint64), np.zeros(4, dtype=bool))

    def test_instruction_addresses_view(self):
        data = synthetic.sequential_stream(100, base=0x5000_0000)
        stream = make_reference_stream(data, instruction_ratio=0.5, seed=1)
        assert stream.instruction_addresses.size + stream.data_addresses.size == len(stream)
