"""Tests of record tagging in the spare high bits of block addresses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.records import RecordKind, TAG_SHIFT, tag_addresses, untag_addresses


class TestTagging:
    def test_roundtrip_scalar_kind(self):
        blocks = np.arange(100, dtype=np.uint64)
        tagged = tag_addresses(blocks, RecordKind.WRITE_BACK)
        untagged, kinds = untag_addresses(tagged)
        assert np.array_equal(untagged, blocks)
        assert np.all(kinds == int(RecordKind.WRITE_BACK))

    def test_roundtrip_per_record_kinds(self):
        blocks = np.array([1, 2, 3], dtype=np.uint64)
        kinds = [RecordKind.DEMAND_MISS, RecordKind.WRITE_BACK, RecordKind.PREFETCH]
        untagged, recovered = untag_addresses(tag_addresses(blocks, kinds))
        assert np.array_equal(untagged, blocks)
        assert recovered.tolist() == [0, 1, 2]

    def test_tagged_addresses_differ_from_raw(self):
        blocks = np.array([42], dtype=np.uint64)
        tagged = tag_addresses(blocks, RecordKind.WRITE_BACK)
        assert tagged[0] == (42 | (1 << TAG_SHIFT))

    def test_demand_miss_tag_is_zero(self):
        blocks = np.array([7], dtype=np.uint64)
        assert tag_addresses(blocks, RecordKind.DEMAND_MISS)[0] == 7

    def test_rejects_addresses_already_using_tag_bits(self):
        with pytest.raises(TraceFormatError):
            tag_addresses(np.array([1 << 60], dtype=np.uint64), RecordKind.DEMAND_MISS)

    def test_rejects_mismatched_kind_count(self):
        with pytest.raises(TraceFormatError):
            tag_addresses(np.array([1, 2], dtype=np.uint64), [RecordKind.DEMAND_MISS])

    def test_rejects_oversized_kind(self):
        with pytest.raises(TraceFormatError):
            tag_addresses(np.array([1], dtype=np.uint64), [64])

    def test_tags_survive_lossless_compression(self):
        """The paper's point: spare bits can carry info through compression."""
        from repro.core.lossless import LosslessCodec

        blocks = np.arange(5_000, dtype=np.uint64)
        kinds = np.where(blocks % 3 == 0, int(RecordKind.WRITE_BACK), int(RecordKind.DEMAND_MISS))
        tagged = tag_addresses(blocks, kinds.tolist())
        codec = LosslessCodec(buffer_addresses=1_000)
        recovered = codec.decompress(codec.compress(tagged))
        untagged, recovered_kinds = untag_addresses(recovered)
        assert np.array_equal(untagged, blocks)
        assert np.array_equal(recovered_kinds.astype(np.int64), kinds)
