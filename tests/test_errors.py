"""Tests of the shared exception hierarchy and of error reporting paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CodecError,
    ConfigurationError,
    ContainerError,
    ReproError,
    TraceFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [TraceFormatError, ContainerError, CodecError, ConfigurationError],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        assert issubclass(exception_type, Exception)

    def test_catching_base_class_catches_all(self):
        from repro.core.backend import get_backend

        with pytest.raises(ReproError):
            get_backend("nope")

    def test_errors_carry_messages(self):
        try:
            raise CodecError("something broke")
        except ReproError as error:
            assert "something broke" in str(error)


class TestErrorPathsAcrossModules:
    def test_trace_errors_are_trace_format_errors(self):
        from repro.traces.trace import as_address_array

        with pytest.raises(TraceFormatError):
            as_address_array([-5])

    def test_cache_errors_are_configuration_errors(self):
        from repro.cache.cache import CacheConfig

        with pytest.raises(ConfigurationError):
            CacheConfig(num_sets=7, associativity=1)

    def test_codec_errors_from_corrupt_streams(self):
        from repro.core.lossless import lossless_decompress

        with pytest.raises(CodecError):
            lossless_decompress(b"not a stream")

    def test_container_errors_from_missing_directories(self, tmp_path):
        from repro.core.container import AtcContainer

        with pytest.raises(ContainerError):
            AtcContainer(tmp_path / "does-not-exist")

    def test_library_never_raises_bare_exception_for_bad_config(self):
        """Spot check: invalid user input maps to ReproError subclasses."""
        from repro.core.lossy import LossyConfig
        from repro.predictors.cdc import CdcConfig
        from repro.traces.synthetic import sequential_stream

        for call in (
            lambda: LossyConfig(interval_length=-1),
            lambda: CdcConfig(czone_bytes=5),
            lambda: sequential_stream(0),
        ):
            with pytest.raises(ReproError):
                call()
