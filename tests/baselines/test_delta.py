"""Tests of the Mache/PDATS-like delta-coding baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.delta import (
    compress_delta,
    decompress_delta,
    delta_bits_per_address,
    delta_decode,
    delta_encode,
)
from repro.errors import CodecError


class TestDeltaEncoding:
    def test_roundtrip_sequential(self, sequential_addresses):
        assert np.array_equal(delta_decode(delta_encode(sequential_addresses)), sequential_addresses)

    def test_roundtrip_random(self, random_addresses):
        assert np.array_equal(delta_decode(delta_encode(random_addresses)), random_addresses)

    def test_roundtrip_decreasing_values(self):
        values = np.array([1000, 500, 400, 1 << 63, 3], dtype=np.uint64)
        assert np.array_equal(delta_decode(delta_encode(values)), values)

    def test_roundtrip_extremes(self):
        values = np.array([0, (1 << 64) - 1, 0, 1 << 63], dtype=np.uint64)
        assert np.array_equal(delta_decode(delta_encode(values)), values)

    def test_small_deltas_use_one_byte(self):
        values = np.arange(1_000, dtype=np.uint64)  # deltas of +1
        encoded = delta_encode(values)
        assert len(encoded) == 1_000

    def test_empty_trace(self):
        assert delta_decode(delta_encode([])).size == 0

    def test_invalid_escape_byte_rejected(self):
        with pytest.raises(CodecError):
            delta_decode(bytes([255]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=300))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.uint64)
        assert np.array_equal(delta_decode(delta_encode(array)), array)


class TestDeltaCompression:
    def test_compressed_roundtrip(self, working_set_addresses):
        payload = compress_delta(working_set_addresses)
        assert np.array_equal(decompress_delta(payload), working_set_addresses)

    def test_strided_trace_compresses_extremely_well(self, sequential_addresses):
        assert delta_bits_per_address(sequential_addresses) < 1.0

    def test_empty_trace(self):
        assert delta_bits_per_address(np.empty(0, dtype=np.uint64)) == 0.0
