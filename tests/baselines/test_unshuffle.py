"""Tests of the byte-unshuffling baseline (Table 1 column "us")."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import (
    compress_unshuffled,
    decompress_unshuffled,
    reshuffle_window,
    unshuffle_inverse,
    unshuffle_transform,
    unshuffle_window,
    unshuffled_bits_per_address,
)
from repro.errors import CodecError


class TestUnshuffleWindow:
    def test_roundtrip(self, random_addresses):
        window = random_addresses[:1_000]
        assert np.array_equal(reshuffle_window(unshuffle_window(window)), window)

    def test_msb_column_first(self):
        values = np.array([0x1122334455667788, 0xAABBCCDDEEFF0011], dtype=np.uint64)
        payload = unshuffle_window(values)
        assert payload[:2] == bytes([0x11, 0xAA])
        assert payload[-2:] == bytes([0x88, 0x11])

    def test_paper_example_f2_column(self):
        """Section 4.1: F200..F2FF unshuffles into an F2 block + 00..FF block."""
        values = np.arange(0xF200, 0xF300, dtype=np.uint64)
        payload = unshuffle_window(values)
        count = values.size
        assert payload[-2 * count : -count] == bytes([0xF2] * count)
        assert payload[-count:] == bytes(range(256))

    def test_rejects_partial_window(self):
        with pytest.raises(CodecError):
            reshuffle_window(b"\x00" * 9)


class TestUnshuffleStreaming:
    def test_roundtrip_with_windows(self, random_addresses):
        payload = unshuffle_transform(random_addresses, buffer_addresses=777)
        assert np.array_equal(unshuffle_inverse(payload, buffer_addresses=777), random_addresses)

    def test_empty_trace(self):
        assert unshuffle_inverse(unshuffle_transform(np.empty(0, dtype=np.uint64))).size == 0

    def test_compressed_roundtrip(self, working_set_addresses):
        payload = compress_unshuffled(working_set_addresses, buffer_addresses=10_000)
        assert np.array_equal(
            decompress_unshuffled(payload, buffer_addresses=10_000), working_set_addresses
        )

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=64),
    )
    def test_roundtrip_property(self, values, buffer_addresses):
        array = np.array(values, dtype=np.uint64)
        payload = unshuffle_transform(array, buffer_addresses)
        assert np.array_equal(unshuffle_inverse(payload, buffer_addresses), array)


class TestUnshuffleCompressionQuality:
    def test_beats_plain_bzip2_on_filtered_trace(self, filtered_trace):
        """Table 1's claim: unshuffling improves on bzip2 alone."""
        addresses = filtered_trace.addresses
        assert unshuffled_bits_per_address(addresses) < raw_bits_per_address(addresses)

    def test_empty_trace(self):
        assert unshuffled_bits_per_address(np.empty(0, dtype=np.uint64)) == 0.0
