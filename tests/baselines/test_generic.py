"""Tests of the bzip2/gzip-alone baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.generic import compress_raw, decompress_raw, raw_bits_per_address


class TestGenericBaseline:
    def test_roundtrip(self, random_addresses):
        payload = compress_raw(random_addresses)
        assert np.array_equal(decompress_raw(payload), random_addresses)

    @pytest.mark.parametrize("backend", ["bz2", "zlib", "lzma"])
    def test_roundtrip_other_backends(self, sequential_addresses, backend):
        payload = compress_raw(sequential_addresses, backend=backend)
        assert np.array_equal(decompress_raw(payload, backend=backend), sequential_addresses)

    def test_bits_per_address_regular_trace(self, sequential_addresses):
        assert raw_bits_per_address(sequential_addresses) < 16.0

    def test_bits_per_address_random_trace_is_high(self, random_addresses):
        # 58 random bits per address cannot be compressed much below 58 bits.
        assert raw_bits_per_address(random_addresses) > 40.0

    def test_empty_trace(self):
        assert raw_bits_per_address(np.empty(0, dtype=np.uint64)) == 0.0
