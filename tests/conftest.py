"""Shared fixtures for the test suite.

Fixtures provide small, deterministic traces covering the behaviours the
library cares about: regular streams (highly compressible), random working
sets (the lossy codec's motivating case), phased streams (chunk reuse) and
cache-filtered spec-like traces (end-to-end material).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import synthetic
from repro.traces.filter import filtered_spec_like_trace
from repro.traces.trace import AddressTrace


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def sequential_addresses() -> np.ndarray:
    """A perfectly regular block-address stream (highly compressible)."""
    return np.arange(0x100000, 0x100000 + 20_000, dtype=np.uint64)


@pytest.fixture(scope="session")
def random_addresses(rng) -> np.ndarray:
    """Uniform random 64-bit values (essentially incompressible losslessly)."""
    return rng.integers(0, 1 << 58, size=20_000, dtype=np.uint64)


@pytest.fixture(scope="session")
def working_set_addresses(rng) -> np.ndarray:
    """Random accesses inside a fixed working set of 4096 blocks."""
    return rng.integers(0, 4096, size=60_000, dtype=np.uint64) + np.uint64(1 << 30)


@pytest.fixture(scope="session")
def phased_addresses() -> np.ndarray:
    """A stream that alternates between two behaviours (phase reuse)."""
    pieces = []
    for phase in range(6):
        if phase % 2 == 0:
            pieces.append(synthetic.sequential_stream(10_000, base=0x4000_0000, stride=64))
        else:
            pieces.append(
                synthetic.random_working_set(10_000, working_set_blocks=2048, seed=phase)
            )
    return synthetic.phased_stream(pieces) >> np.uint64(6)


@pytest.fixture(scope="session")
def filtered_trace() -> AddressTrace:
    """A small cache-filtered spec-like trace (end-to-end fixture)."""
    return filtered_spec_like_trace("429.mcf", 15_000, seed=7)
