"""Tests of the reuse-distance and footprint analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reuse import (
    footprint_curve,
    reuse_distance_histogram,
    working_set_sizes,
)
from repro.cache.stackdist import simulate_miss_curve
from repro.errors import ConfigurationError


class TestReuseDistanceHistogram:
    def test_cold_references_counted(self):
        histogram = reuse_distance_histogram([1, 2, 3, 4])
        assert histogram.cold_references == 4
        assert histogram.total_references == 4
        assert histogram.bucket_counts == {}

    def test_immediate_reuse_has_distance_zero(self):
        histogram = reuse_distance_histogram([5, 5, 5])
        assert histogram.bucket_counts.get(0) == 2

    def test_known_distances(self):
        # Trace A B C A: the second A has reuse distance 2 (B and C).
        histogram = reuse_distance_histogram([1, 2, 3, 1])
        # Distance 2 falls in bucket 2 ([2, 3]).
        assert histogram.bucket_counts.get(2) == 1
        assert histogram.cold_references == 3

    def test_distance_counts_distinct_blocks_not_references(self):
        # A B B B A: distance of the second A is 1 (only B in between).
        histogram = reuse_distance_histogram([1, 2, 2, 2, 1])
        assert histogram.bucket_counts.get(1) == 1

    def test_fully_associative_miss_ratio_matches_stack_simulation(self, working_set_addresses):
        """Reuse-distance CDF == fully associative (1-set) LRU miss ratio."""
        blocks = working_set_addresses[:6_000]
        histogram = reuse_distance_histogram(blocks)
        curve = simulate_miss_curve(blocks, num_sets=1, max_associativity=32)
        for cache_blocks in (1, 2, 4, 8, 16, 32):
            assert histogram.miss_ratio(cache_blocks) == pytest.approx(
                curve.miss_ratio(cache_blocks), abs=0.02
            )

    def test_distribution_sums_to_one(self, working_set_addresses):
        histogram = reuse_distance_histogram(working_set_addresses[:4_000])
        assert sum(histogram.distribution().values()) == pytest.approx(1.0)

    def test_l1_distance_identical_is_zero(self, working_set_addresses):
        histogram = reuse_distance_histogram(working_set_addresses[:3_000])
        assert histogram.l1_distance(histogram) == 0.0

    def test_l1_distance_between_different_traces(self, working_set_addresses, sequential_addresses):
        a = reuse_distance_histogram(working_set_addresses[:3_000])
        b = reuse_distance_histogram(sequential_addresses[:3_000])
        assert a.l1_distance(b) > 0.5

    def test_max_tracked_limits_work(self, working_set_addresses):
        histogram = reuse_distance_histogram(working_set_addresses, max_tracked=1_000)
        assert histogram.total_references == 1_000
        with pytest.raises(ConfigurationError):
            reuse_distance_histogram(working_set_addresses, max_tracked=-1)

    def test_lossy_compression_preserves_reuse_distribution(self, working_set_addresses):
        """Extended fidelity check: the lossy trace keeps the reuse shape."""
        from repro.core.lossy import LossyCodec, LossyConfig

        codec = LossyCodec(LossyConfig(interval_length=10_000))
        approx = codec.decompress(codec.compress(working_set_addresses))
        exact_hist = reuse_distance_histogram(working_set_addresses)
        lossy_hist = reuse_distance_histogram(approx)
        assert exact_hist.l1_distance(lossy_hist) < 0.2


class TestFootprintCurve:
    def test_monotone_and_ends_at_distinct_count(self, working_set_addresses):
        blocks = working_set_addresses[:5_000]
        curve = footprint_curve(blocks, points=16)
        footprints = [footprint for _, footprint in curve]
        assert all(a <= b for a, b in zip(footprints, footprints[1:]))
        assert footprints[-1] == int(np.unique(blocks).size)

    def test_empty_trace(self):
        assert footprint_curve([]) == [(0, 0)]

    def test_invalid_points(self):
        with pytest.raises(ConfigurationError):
            footprint_curve([1, 2, 3], points=0)

    def test_sequential_trace_footprint_equals_prefix_length(self):
        curve = footprint_curve(list(range(1_000)), points=8)
        for prefix_length, footprint in curve:
            assert footprint == prefix_length


class TestWorkingSetSizes:
    def test_window_partition(self):
        sizes = working_set_sizes([1, 1, 2, 2, 3, 3], window=2)
        assert sizes == [1, 1, 1]

    def test_phase_change_visible(self):
        trace = [1, 2, 3, 4] * 25 + list(range(100, 200))
        sizes = working_set_sizes(trace, window=50)
        assert sizes[0] == 4
        assert sizes[-1] == 50

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            working_set_sizes([1], window=0)
