"""Tests of the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    BpaTableRow,
    arithmetic_mean,
    bits_per_address,
    compression_ratio,
    distinct_address_ratio,
    sequence_length_preserved,
)


class TestBitsPerAddress:
    def test_basic_computation(self):
        # 100 addresses compressed to 100 bytes -> 8 bits per address.
        assert bits_per_address(100, 100) == pytest.approx(8.0)

    def test_zero_addresses(self):
        assert bits_per_address(100, 0) == 0.0

    def test_uncompressed_trace_is_64_bits(self):
        assert bits_per_address(8 * 1_000, 1_000) == pytest.approx(64.0)


class TestCompressionRatio:
    def test_basic_computation(self):
        # 1000 addresses = 8000 bytes; compressed to 800 bytes -> ratio 10.
        assert compression_ratio(800, 1_000) == pytest.approx(10.0)

    def test_zero_compressed_size(self):
        assert compression_ratio(0, 10) == float("inf")

    def test_consistency_with_bpa(self):
        compressed, count = 1234, 10_000
        assert compression_ratio(compressed, count) == pytest.approx(
            64.0 / bits_per_address(compressed, count)
        )


class TestArithmeticMean:
    def test_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert arithmetic_mean([]) == 0.0


class TestDistinctAddressRatio:
    def test_identical_traces(self, random_addresses):
        assert distinct_address_ratio(random_addresses, random_addresses) == pytest.approx(1.0)

    def test_collapsed_footprint(self):
        exact = np.arange(1_000, dtype=np.uint64)
        approx = np.zeros(1_000, dtype=np.uint64)
        assert distinct_address_ratio(approx, exact) == pytest.approx(0.001)

    def test_empty_exact_trace(self):
        assert distinct_address_ratio(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint64)) == 1.0


class TestSequenceLengthPreserved:
    def test_preserved(self):
        assert sequence_length_preserved([1, 2, 3], [4, 5, 6])

    def test_not_preserved(self):
        assert not sequence_length_preserved([1, 2], [1, 2, 3])


class TestBpaTableRow:
    def test_formatting(self):
        row = BpaTableRow("429.mcf", {"bz2": 15.56, "bs1": 7.81})
        text = row.formatted(["bz2", "bs1"])
        assert "429.mcf" in text
        assert "15.56" in text
        assert "7.81" in text

    def test_missing_column_renders_nan(self):
        row = BpaTableRow("x", {"bz2": 1.0})
        assert "nan" in row.formatted(["tcg"])
