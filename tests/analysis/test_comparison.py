"""Tests of the exact-vs-lossy comparison pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import (
    compare_cdc_breakdowns,
    compare_miss_ratio_surfaces,
    regenerate_lossy_trace,
)
from repro.core.lossy import LossyConfig


@pytest.fixture(scope="module")
def stationary_trace():
    rng = np.random.default_rng(77)
    return rng.integers(0, 2_048, size=40_000, dtype=np.uint64) + np.uint64(1 << 22)


class TestRegenerateLossyTrace:
    def test_length_and_metadata(self, stationary_trace):
        config = LossyConfig(interval_length=10_000)
        approx, bpa, chunks, intervals = regenerate_lossy_trace(stationary_trace, config)
        assert approx.size == stationary_trace.size
        assert chunks == 1
        assert intervals == 4
        assert 0.0 < bpa < 64.0


class TestMissRatioComparison:
    def test_stationary_trace_has_small_error(self, stationary_trace):
        config = LossyConfig(interval_length=10_000)
        result = compare_miss_ratio_surfaces(
            stationary_trace, set_counts=[64, 256], config=config, trace_name="stationary"
        )
        assert result.trace_name == "stationary"
        assert result.num_chunks == 1
        assert result.max_miss_ratio_error < 0.08
        assert result.mean_miss_ratio_error <= result.max_miss_ratio_error
        assert 0.8 <= result.distinct_ratio <= 1.3

    def test_translation_off_increases_error_on_drifting_regions(self):
        """The Figure 4 effect measured through the comparison pipeline."""
        rng = np.random.default_rng(5)
        phases = [
            rng.integers(0, 2_048, size=15_000, dtype=np.uint64) + np.uint64((1 + index) << 22)
            for index in range(4)
        ]
        trace = np.concatenate(phases)
        with_translation = compare_miss_ratio_surfaces(
            trace, set_counts=[64], config=LossyConfig(interval_length=15_000, enable_translation=True)
        )
        without_translation = compare_miss_ratio_surfaces(
            trace, set_counts=[64], config=LossyConfig(interval_length=15_000, enable_translation=False)
        )
        assert without_translation.distinct_ratio < with_translation.distinct_ratio


@pytest.mark.slow
class TestCdcComparison:
    def test_breakdowns_cover_all_addresses(self, stationary_trace):
        config = LossyConfig(interval_length=10_000)
        exact, lossy, distance = compare_cdc_breakdowns(stationary_trace, config=config)
        assert exact.total == stationary_trace.size
        assert lossy.total == stationary_trace.size
        assert 0.0 <= distance <= 2.0

    def test_lossy_breakdown_close_to_exact_for_stationary_trace(self, stationary_trace):
        config = LossyConfig(interval_length=10_000)
        _, _, distance = compare_cdc_breakdowns(stationary_trace, config=config)
        assert distance < 0.3
