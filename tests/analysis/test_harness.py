"""Tests of the programmatic evaluation harness."""

from __future__ import annotations

import pytest

from repro.analysis.harness import EvaluationHarness, EvaluationScale


@pytest.fixture(scope="module")
def small_harness():
    """A harness over three workloads at a very small scale (fast tests)."""
    scale = EvaluationScale(
        references_per_workload=8_000,
        small_buffer=2_000,
        big_buffer=8_000,
        interval_length=2_000,
        set_counts=(64, 256),
    )
    return EvaluationHarness(scale, workloads=("429.mcf", "433.milc", "458.sjeng"))


class TestEvaluationHarness:
    def test_trace_cache_reuses_objects(self, small_harness):
        first = small_harness.trace("429.mcf")
        second = small_harness.trace("429.mcf")
        assert first is second

    def test_lossless_comparison_structure(self, small_harness):
        comparison = small_harness.lossless_comparison(include_vpc=False)
        assert set(comparison.means) == {"bz2", "us", "bs-small", "bs-big"}
        assert "Table 1" in comparison.text
        for row in comparison.rows.values():
            assert row["bs-big"] <= row["bz2"] * 1.05

    def test_lossy_comparison_structure(self, small_harness):
        comparison = small_harness.lossy_comparison()
        assert set(comparison.means) == {"lossless", "lossy"}
        assert comparison.rows

    def test_miss_ratio_fidelity(self, small_harness):
        results = small_harness.miss_ratio_fidelity(workloads=("429.mcf",))
        assert "429.mcf" in results
        assert results["429.mcf"].max_miss_ratio_error < 0.3

    def test_predictor_fidelity(self, small_harness):
        distances = small_harness.predictor_fidelity(workloads=("433.milc",))
        if distances:  # the milc trace may filter down below two intervals
            assert 0.0 <= distances["433.milc"] <= 2.0

    def test_full_report_contains_all_sections(self, small_harness):
        report = small_harness.full_report(figure_workloads=("429.mcf",))
        assert "Table 1" in report
        assert "Table 3" in report
        assert "Figure 3 [429.mcf]" in report

    def test_scale_lossy_config(self):
        scale = EvaluationScale(interval_length=123, threshold=0.2)
        config = scale.lossy_config(enable_translation=False)
        assert config.interval_length == 123
        assert config.threshold == pytest.approx(0.2)
        assert config.enable_translation is False
