"""Tests of the text-table reporting helpers."""

from __future__ import annotations


from repro.analysis.reporting import render_breakdown_table, render_series, render_table


class TestRenderTable:
    def test_contains_rows_columns_and_mean(self):
        rows = {
            "429.mcf": {"bz2": 15.56, "bs1": 7.81},
            "462.libquantum": {"bz2": 4.72, "bs1": 0.06},
        }
        text = render_table("Table 1", rows, columns=["bz2", "bs1"])
        assert "Table 1" in text
        assert "429.mcf" in text
        assert "15.56" in text
        assert "arith. mean" in text
        # mean of bz2 column = (15.56 + 4.72) / 2 = 10.14
        assert "10.14" in text

    def test_missing_cell_renders_na(self):
        text = render_table("t", {"x": {"a": 1.0}}, columns=["a", "b"], mean_row=False)
        assert "n/a" in text

    def test_no_mean_row_when_disabled(self):
        text = render_table("t", {"x": {"a": 1.0}}, columns=["a"], mean_row=False)
        assert "arith. mean" not in text


class TestRenderSeries:
    def test_contains_series_and_x_values(self):
        text = render_series(
            "Figure 3 (trace 429)",
            x_label="associativity",
            x_values=[1, 2, 4],
            series={"exact 2k": [0.5, 0.4, 0.3], "approx 2k": [0.51, 0.41, 0.29]},
        )
        assert "Figure 3" in text
        assert "exact 2k" in text
        assert "0.5100" in text


class TestRenderBreakdownTable:
    def test_contains_percentages(self):
        text = render_breakdown_table(
            "Figure 5",
            {
                "429 exact": {"non_predicted": 0.2, "correct": 0.7, "incorrect": 0.1},
                "429 lossy": {"non_predicted": 0.22, "correct": 0.68, "incorrect": 0.1},
            },
        )
        assert "Figure 5" in text
        assert "70.0%" in text
        assert "429 lossy" in text
