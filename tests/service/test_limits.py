"""Unit and behavioural tests for the service's robustness layer.

The unit half exercises :mod:`repro.service.limits` and the queue-depth
accounting of :mod:`repro.service.metrics` without any sockets.  The
behavioural half boots dedicated servers (each test owns its own
:class:`~repro.service.BackgroundServer`, because each needs different
knobs) and drives the gate, timeout and drain paths over real connections.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service import (
    BackgroundServer,
    CancelToken,
    ConnectionGate,
    DrainController,
    JobCancelled,
    ServiceConfig,
    ServiceMetrics,
)


def request(port, method, path, body=None, timeout=30):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def metrics(port):
    return json.loads(request(port, "GET", "/v1/metrics")[2])


class TestConnectionGate:
    def test_slots_are_finite_and_released(self):
        gate = ConnectionGate(max_connections=2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.active == 1
        assert gate.try_acquire()

    def test_release_without_acquire_is_a_service_error(self):
        gate = ConnectionGate(max_connections=1)
        with pytest.raises(ServiceError, match="without a matching acquire"):
            gate.release()

    def test_wait_idle_blocks_until_the_last_release(self):
        gate = ConnectionGate(max_connections=4)
        gate.try_acquire()
        assert not gate.wait_idle(timeout=0.05)
        releaser = threading.Timer(0.05, gate.release)
        releaser.start()
        try:
            assert gate.wait_idle(timeout=5.0)
        finally:
            releaser.cancel()

    def test_invalid_limits_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ConnectionGate(max_connections=0)
        with pytest.raises(ConfigurationError):
            ConnectionGate(max_connections=2, retry_after=-1)


class TestCancelToken:
    def test_guard_stops_iteration_at_the_next_boundary(self):
        token = CancelToken()
        seen = []

        def feed():
            for value in range(10):
                if value == 3:
                    token.cancel()
                yield value

        with pytest.raises(JobCancelled):
            for value in token.guard(feed()):
                seen.append(value)
        # the guard checks between pulling and yielding, so the value pulled
        # while cancelling is dropped at the boundary
        assert seen == [0, 1, 2]

    def test_tokens_are_idempotent_and_one_way(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while live
        token.cancel()
        token.cancel()
        assert token.cancelled
        with pytest.raises(JobCancelled):
            token.raise_if_cancelled()


class TestQueueDepthTickets:
    def test_start_then_abandon_decrements_exactly_once(self):
        counters = ServiceMetrics()
        ticket = counters.job_ticket()
        assert counters.snapshot()["queue_depth"] == 1
        assert ticket.start()
        ticket.abandon()  # late abandon after a worker won the race: no-op
        assert counters.snapshot()["queue_depth"] == 0

    def test_abandon_then_start_refuses_the_worker(self):
        counters = ServiceMetrics()
        ticket = counters.job_ticket()
        ticket.abandon()
        assert counters.snapshot()["queue_depth"] == 0
        assert not ticket.start()
        assert counters.snapshot()["queue_depth"] == 0


class TestDrainController:
    def test_begin_is_one_way_and_reports_first_caller(self):
        drain = DrainController()
        assert not drain.draining
        assert drain.begin()
        assert not drain.begin()
        assert drain.draining


def hold_connection(port, content_length=1_048_576):
    """Open a connection that occupies a gate slot mid-request."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.sendall(
        f"POST /v1/compress HTTP/1.1\r\nHost: x\r\nContent-Length: {content_length}\r\n\r\n".encode()
    )
    return sock


class TestSaturationBehaviour:
    def test_saturated_gate_answers_429_with_retry_after(self):
        config = ServiceConfig(port=0, max_connections=2, request_timeout=30.0, retry_after=7)
        with BackgroundServer(config) as server:
            holders = [hold_connection(server.port) for _ in range(2)]
            try:
                time.sleep(0.2)  # let the server park both holders
                status, headers, _ = request(server.port, "GET", "/v1/healthz")
                assert status == 429
                assert headers["Retry-After"] == "7"
            finally:
                for sock in holders:
                    sock.close()
        assert server.exit_code == 0

    def test_rejections_are_counted_but_not_served(self):
        config = ServiceConfig(port=0, max_connections=1, request_timeout=30.0)
        with BackgroundServer(config) as server:
            holder = hold_connection(server.port)
            try:
                time.sleep(0.2)
                assert request(server.port, "GET", "/v1/healthz")[0] == 429
            finally:
                holder.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    if request(server.port, "GET", "/v1/healthz")[0] == 200:
                        break
                except OSError:
                    pass
                time.sleep(0.05)
            snapshot = metrics(server.port)
            assert snapshot["requests"]["rejected"] >= 1
            assert snapshot["requests"]["by_status"]["429"] >= 1

    def test_client_disconnect_mid_stream_releases_the_slot(self):
        config = ServiceConfig(port=0, max_connections=1, request_timeout=30.0)
        with BackgroundServer(config) as server:
            holder = hold_connection(server.port)
            time.sleep(0.2)
            assert server.service.gate.active == 1
            holder.close()  # vanish mid-request-body
            deadline = time.monotonic() + 10
            while server.service.gate.active and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.service.gate.active == 0
            # The slot is usable again and the aborted request was counted.
            assert request(server.port, "GET", "/v1/healthz")[0] == 200
            assert metrics(server.port)["requests"]["aborted"] >= 1
        assert server.exit_code == 0


class TestRequestTimeout:
    def test_stalled_request_gets_504_and_leaks_nothing(self):
        config = ServiceConfig(port=0, max_connections=4, request_timeout=0.5)
        with BackgroundServer(config) as server:
            sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            try:
                sock.sendall(
                    b"POST /v1/compress HTTP/1.1\r\nHost: x\r\nContent-Length: 16\r\n\r\n"
                )
                sock.sendall(b"\x00" * 8)  # half the promised body, then stall
                sock.settimeout(10)
                answer = sock.recv(4096)
                assert b"504" in answer.split(b"\r\n", 1)[0]
            finally:
                sock.close()
            # The 504 is written before the request is finalised; wait for
            # the server to finish its accounting.
            deadline = time.monotonic() + 10
            snapshot = metrics(server.port)
            while snapshot["requests"]["in_flight"] > 1 and time.monotonic() < deadline:
                time.sleep(0.02)
                snapshot = metrics(server.port)
            assert snapshot["requests"]["timeouts"] == 1
            assert snapshot["requests"]["by_status"]["504"] == 1
            # Nothing orphaned: no queued job, and the only in-flight request
            # is the /v1/metrics call taking this very snapshot.
            assert snapshot["queue_depth"] == 0
            assert snapshot["requests"]["in_flight"] == 1
            while server.service.gate.active and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.service.gate.active == 0
        assert server.exit_code == 0

    def test_cancelled_executor_job_stops_at_a_chunk_boundary(self):
        # Drive the job layer directly: a cancelled token must abort the
        # encoder's chunk stream instead of letting the job run on.
        token = CancelToken()
        consumed = []

        def chunks():
            for index in range(100):
                yield np.full(10, index, dtype=np.uint64)

        with pytest.raises(JobCancelled):
            for chunk in token.guard(chunks()):
                consumed.append(chunk)
                if len(consumed) == 3:
                    token.cancel()
        assert len(consumed) == 3  # nothing after the cancelling boundary


class TestGracefulDrain:
    def test_inflight_request_finishes_while_new_ones_are_refused(self):
        config = ServiceConfig(port=0, max_connections=4, request_timeout=30.0)
        raw = (np.arange(20_000, dtype=np.uint64) % np.uint64(257)).tobytes()
        with BackgroundServer(config) as server:
            port = server.port
            # Start a request, pause mid-body, then ask for shutdown.
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            try:
                head = (
                    f"POST /v1/compress?mode=c HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(raw)}\r\n\r\n"
                ).encode()
                sock.sendall(head + raw[:8_000])
                time.sleep(0.1)
                server.service.shutdown()
                time.sleep(0.1)
                # New connections are refused now: the listener is closed
                # (connection refused) or a racing accept answers 503.
                try:
                    status, _, _ = request(port, "GET", "/v1/healthz", timeout=5)
                    assert status == 503
                except OSError:
                    pass
                # The in-flight upload still completes and gets its 200.
                sock.sendall(raw[8_000:])
                sock.settimeout(30)
                response = bytearray()
                while b"\r\n\r\n" not in response:
                    piece = sock.recv(4096)
                    if not piece:
                        break
                    response.extend(piece)
                assert b"200" in bytes(response).split(b"\r\n", 1)[0]
            finally:
                sock.close()
        assert server.exit_code == 0

    def test_double_shutdown_is_idempotent(self):
        with BackgroundServer(ServiceConfig(port=0)) as server:
            server.service.shutdown()
            server.service.shutdown()
        assert server.exit_code == 0
