"""End-to-end tests of the ATC HTTP service against a live in-process server.

One module-scoped :class:`~repro.service.BackgroundServer` hosts every test
here (startup costs a thread and a socket, not worth paying per test);
behavioural knobs that need their own server (timeouts, saturation, drain)
live in ``tests/service/test_limits.py`` instead.
"""

from __future__ import annotations

import http.client
import json
import shutil
import tarfile
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.atc import compress_stream
from repro.core.lossy import LossyConfig
from repro.service import BackgroundServer, ServiceConfig, pack_container, unpack_container
from repro.service.metrics import METRICS_SCHEMA

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden"


def make_trace(addresses: int = 20_000, modulus: int = 700) -> np.ndarray:
    return (np.arange(addresses, dtype=np.uint64) * np.uint64(31)) % np.uint64(modulus)


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(port=0, max_connections=8, workers=1, request_timeout=60.0)
    with BackgroundServer(config) as running:
        assert running.wait_ready(10.0)
        yield running
    assert running.exit_code == 0


@pytest.fixture(scope="module")
def call(server):
    def request(method, path, body=None, headers=None):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    return request


class TestCompressDecompressRoundTrip:
    def test_round_trip_is_byte_identical(self, call):
        trace = make_trace()
        raw = trace.tobytes()
        status, headers, container = call("POST", "/v1/compress?mode=c", raw)
        assert status == 200
        assert headers["Content-Type"] == "application/x-tar"
        assert headers["X-Atc-Addresses"] == str(trace.size)
        status, _, decoded = call("POST", "/v1/decompress", container)
        assert status == 200
        assert decoded == raw

    def test_served_container_matches_the_library_encoder(self, call, tmp_path):
        trace = make_trace(12_000, 450)
        status, _, served = call(
            "POST",
            "/v1/compress?mode=c&backend=bz2&interval_length=20000"
            "&chunk_buffer_addresses=1000000",
            trace.tobytes(),
        )
        assert status == 200
        config = LossyConfig(
            interval_length=20_000, chunk_buffer_addresses=1_000_000, backend="bz2"
        )
        compress_stream([trace], tmp_path / "local", mode="c", config=config)
        assert served == pack_container(tmp_path / "local")

    def test_lossy_mode_round_trips_through_the_service(self, call):
        trace = make_trace(30_000, 300)
        status, _, container = call(
            "POST", "/v1/compress?mode=k&interval_length=5000&threshold=0.2", trace.tobytes()
        )
        assert status == 200
        status, headers, decoded = call("POST", "/v1/decompress", container)
        assert status == 200
        # Lossy decode approximates: same length, same dtype framing.
        assert len(decoded) == trace.size * 8
        assert headers["X-Atc-Addresses"] == str(trace.size)

    def test_identical_request_hits_the_dedup_cache(self, call):
        raw = make_trace(9_000, 123).tobytes()
        path = "/v1/compress?mode=c&backend=zlib"
        status, first_headers, first = call("POST", path, raw)
        assert status == 200
        status, second_headers, second = call("POST", path, raw)
        assert status == 200
        assert first_headers["X-Atc-Cache"] == "miss"
        assert second_headers["X-Atc-Cache"] == "hit"
        assert second_headers["X-Atc-Key"] == first_headers["X-Atc-Key"]
        assert second == first

    def test_different_parameters_do_not_share_cache_entries(self, call):
        raw = make_trace(9_000, 123).tobytes()
        status, headers, _ = call("POST", "/v1/compress?mode=c&backend=bz2", raw)
        assert status == 200
        status, other, _ = call("POST", "/v1/compress?mode=c&backend=lzma", raw)
        assert status == 200
        assert other["X-Atc-Key"] != headers["X-Atc-Key"]

    def test_chunked_transfer_encoding_uploads_work(self, call, server):
        raw = make_trace(4_000, 77).tobytes()
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/compress?mode=c")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            for start in range(0, len(raw), 5_000):
                piece = raw[start:start + 5_000]
                connection.send(b"%x\r\n" % len(piece) + piece + b"\r\n")
            connection.send(b"0\r\n\r\n")
            response = connection.getresponse()
            container = response.read()
            assert response.status == 200
        finally:
            connection.close()
        status, _, decoded = call("POST", "/v1/decompress", container)
        assert status == 200 and decoded == raw


class TestInspectAndSweep:
    def test_inspect_reports_container_summary(self, call):
        trace = make_trace(15_000, 250)
        status, _, container = call("POST", "/v1/compress?mode=c", trace.tobytes())
        assert status == 200
        status, headers, body = call("POST", "/v1/inspect", container)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        summary = json.loads(body)
        assert summary["intervals"] >= 1
        assert summary["imitated_intervals"] == 0  # lossless never imitates
        assert summary["compressed_bytes"] > 0
        assert summary["bits_per_address"] > 0
        assert summary["metadata"]["mode"] == "lossless"

    def test_sweep_runs_a_small_grid(self, call):
        spec = {
            "name": "service-sweep",
            "workloads": [{"name": "429.mcf", "references": 2_000, "seed": 0}],
            "codecs": [{"kind": "raw"}, {"kind": "delta"}],
            "scale": {"small_buffer": 4_096, "interval_length": 1_000},
        }
        status, _, body = call("POST", "/v1/sweep", json.dumps(spec).encode())
        assert status == 200
        result = json.loads(body)
        assert result["name"] == "service-sweep"
        assert len(result["rows"]) == 2

    def test_sweep_rejects_invalid_json_and_invalid_specs(self, call):
        status, _, body = call("POST", "/v1/sweep", b"{not json")
        assert status == 400 and b"not valid JSON" in body
        status, _, body = call("POST", "/v1/sweep", json.dumps({"name": "x"}).encode())
        assert status == 400  # a sweep needs workloads and codecs


class TestClientErrors:
    def test_misaligned_trace_body_is_a_400(self, call):
        status, _, body = call("POST", "/v1/compress", b"\x01\x02\x03")
        assert status == 400
        assert b"not a multiple of 8" in body

    def test_empty_bodies_are_400s(self, call):
        for path in ("/v1/compress", "/v1/decompress", "/v1/inspect"):
            status, _, _ = call("POST", path)
            assert status == 400, path

    def test_non_tar_decompress_body_is_a_400_with_a_parse_error(self, call):
        status, _, body = call("POST", "/v1/decompress", b"certainly not a tar archive" * 40)
        assert status == 400
        assert b"container archive" in body

    @pytest.mark.parametrize("fixture", ["lossless_bz2", "lossy_bz2"])
    def test_truncated_golden_container_is_a_400(self, call, fixture):
        # Cut inside the first member's data (tar archives are padded to
        # 10 KiB records, so a half cut could remove only padding).
        packed = pack_container(GOLDEN / fixture)
        status, _, body = call("POST", "/v1/decompress", packed[:1000])
        assert status == 400, body

    @pytest.mark.parametrize("fixture", ["lossless_bz2", "lossy_gz"])
    def test_bit_flipped_golden_container_is_a_400(self, call, tmp_path, fixture):
        # Flip one bit inside a chunk payload: the archive still parses, but
        # the chunk fails its recorded digest — a 400 naming the damage, not
        # a 500 (and never a silently wrong decode).
        corrupt = tmp_path / fixture
        shutil.copytree(GOLDEN / fixture, corrupt)
        chunk = sorted(path for path in corrupt.iterdir() if not path.name.startswith("INFO"))[0]
        data = bytearray(chunk.read_bytes())
        data[len(data) // 2] ^= 0x40
        chunk.write_bytes(bytes(data))
        status, _, body = call("POST", "/v1/decompress", pack_container(corrupt))
        assert status == 400, body
        assert b"digest mismatch" in body

    def test_unknown_codec_parameters_are_400s(self, call):
        raw = b"\x00" * 16
        status, _, _ = call("POST", "/v1/compress?mode=z", raw)
        assert status == 400
        status, _, _ = call("POST", "/v1/compress?backend=nope", raw)
        assert status == 400
        status, _, _ = call("POST", "/v1/compress?interval_length=abc", raw)
        assert status == 400
        status, _, _ = call("POST", "/v1/compress?interval_length=-5", raw)
        assert status == 400

    def test_unknown_path_is_404_wrong_method_is_405(self, call):
        status, _, _ = call("POST", "/v1/nope", b"")
        assert status == 404
        status, headers, _ = call("GET", "/v1/compress")
        assert status == 405
        assert headers["Allow"] == "POST"
        status, headers, _ = call("POST", "/v1/metrics", b"")
        assert status == 405
        assert headers["Allow"] == "GET"


class TestHealthAndMetrics:
    def test_healthz_reports_liveness(self, call):
        status, _, body = call("GET", "/v1/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["draining"] is False

    def test_metrics_counters_move_with_traffic(self, call):
        _, _, before = call("GET", "/v1/metrics")
        before = json.loads(before)
        raw = make_trace(6_000, 55).tobytes()
        assert call("POST", "/v1/compress?mode=c", raw)[0] == 200
        assert call("POST", "/v1/compress?mode=c", raw)[0] == 200  # guaranteed hit
        _, _, after = call("GET", "/v1/metrics")
        after = json.loads(after)
        assert after["schema"] == METRICS_SCHEMA
        assert after["requests"]["total"] >= before["requests"]["total"] + 3
        assert after["cache"]["hits"] >= before["cache"]["hits"] + 1
        assert after["cache"]["hit_rate"] > 0
        assert after["bytes"]["in"] >= before["bytes"]["in"] + 2 * len(raw)
        assert after["bytes"]["out"] > before["bytes"]["out"]
        assert after["latency_seconds"]["count"] >= before["latency_seconds"]["count"] + 3
        assert after["latency_seconds"]["p95"] >= after["latency_seconds"]["p50"] >= 0
        assert after["requests"]["by_endpoint"]["compress"] >= 2
        assert after["requests"]["by_status"]["200"] >= 3


class TestWireFormat:
    def test_pack_is_deterministic_and_tar_readable(self, tmp_path):
        compress_stream([make_trace(5_000, 99)], tmp_path / "c", mode="c", config=LossyConfig())
        first = pack_container(tmp_path / "c")
        second = pack_container(tmp_path / "c")
        assert first == second
        with tarfile.open(fileobj=__import__("io").BytesIO(first)) as archive:
            names = archive.getnames()
        assert names == sorted(names)

    def test_unpack_round_trips_the_directory(self, tmp_path):
        compress_stream([make_trace(5_000, 99)], tmp_path / "c", mode="c", config=LossyConfig())
        packed = pack_container(tmp_path / "c")
        count = unpack_container(packed, tmp_path / "out")
        originals = sorted(path.name for path in (tmp_path / "c").iterdir())
        assert count == len(originals)
        assert sorted(path.name for path in (tmp_path / "out").iterdir()) == originals
        for name in originals:
            assert (tmp_path / "out" / name).read_bytes() == (tmp_path / "c" / name).read_bytes()

    def test_unpack_rejects_path_traversal_members(self, tmp_path):
        import io

        from repro.errors import ContainerError

        for evil in ("../escape", "/absolute", "nested/inner", ".hidden"):
            sink = io.BytesIO()
            with tarfile.open(fileobj=sink, mode="w") as archive:
                info = tarfile.TarInfo(name=evil)
                info.size = 4
                archive.addfile(info, io.BytesIO(b"data"))
            with pytest.raises(ContainerError, match="unsafe"):
                unpack_container(sink.getvalue(), tmp_path / f"out-{evil.replace('/', '_')}")

    def test_unpack_rejects_empty_archives_and_leaves_no_debris(self, tmp_path):
        import io

        from repro.errors import ContainerError

        sink = io.BytesIO()
        with tarfile.open(fileobj=sink, mode="w"):
            pass
        destination = tmp_path / "empty"
        with pytest.raises(ContainerError, match="no files"):
            unpack_container(sink.getvalue(), destination)
        assert not destination.exists()


class TestServerHygiene:
    def test_requests_leave_no_spool_debris(self, call):
        tmp = Path(tempfile.gettempdir())

        def spools():
            # Per-request spool directories only; cache roots live for the
            # whole server and stale debris from unrelated runs is not ours.
            return {
                path
                for path in tmp.glob("repro-serve-*")
                if not path.name.startswith("repro-serve-cache-")
            }

        before = spools()
        raw = make_trace(4_000, 31).tobytes()
        assert call("POST", "/v1/compress?mode=c&backend=store", raw)[0] == 200
        assert call("POST", "/v1/compress", b"bad")[0] == 400  # error paths clean up too
        # The response is written before the spool is removed, so allow the
        # server a moment to finish its per-request cleanup.
        deadline = time.monotonic() + 5.0
        while spools() != before and time.monotonic() < deadline:
            time.sleep(0.02)
        assert spools() == before


class TestIntegrityEvictions:
    """Corrupt cached containers are evicted and re-encoded, never re-served."""

    def test_corrupt_cached_container_is_evicted_and_reencoded(self, tmp_path):
        from repro.testing.faults import flip_bit

        config = ServiceConfig(
            port=0,
            max_connections=8,
            workers=1,
            request_timeout=60.0,
            cache_dir=str(tmp_path / "cache"),
        )
        with BackgroundServer(config) as running:
            assert running.wait_ready(10.0)

            def call(method, path, body=None):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", running.port, timeout=30
                )
                try:
                    connection.request(method, path, body=body)
                    response = connection.getresponse()
                    return response.status, dict(response.getheaders()), response.read()
                finally:
                    connection.close()

            raw = make_trace(9_000, 321).tobytes()
            path = "/v1/compress?mode=c&backend=bz2"
            status, first_headers, first = call("POST", path, raw)
            assert status == 200 and first_headers["X-Atc-Cache"] == "miss"
            key = first_headers["X-Atc-Key"]

            # Bit-rot one chunk of the cached container behind the server's back.
            container_dir = tmp_path / "cache" / "containers" / key
            chunk = sorted(
                p for p in container_dir.iterdir() if not p.name.startswith("INFO.")
            )[0]
            flip_bit(chunk, 21)

            # The poisoned entry is a *miss* (evicted + re-encoded), and the
            # served bytes are identical to the pre-corruption response —
            # the corrupt copy was never re-served.
            status, second_headers, second = call("POST", path, raw)
            assert status == 200
            assert second_headers["X-Atc-Cache"] == "miss"
            assert second == first

            # The healed entry serves as a normal hit again.
            status, third_headers, third = call("POST", path, raw)
            assert status == 200
            assert third_headers["X-Atc-Cache"] == "hit"
            assert third == first

            _, _, metrics = call("GET", "/v1/metrics")
            metrics = json.loads(metrics)
            assert metrics["cache"]["integrity_evictions"] == 1
        assert running.exit_code == 0
