"""Streaming-vs-in-memory equivalence tests.

The streaming pipeline's hard invariant is byte-identity: for every stage
(chunk plumbing, cache filter, ATC encoder, decoder, hierarchy replay,
multicore merger) and for every chunk size and worker count, the
concatenated streaming output must equal the in-memory output exactly.
These tests pin that invariant for chunk sizes 1 (every boundary between
consecutive addresses), 7 (never aligned with any internal buffer) and
4096 (larger than most test traces' natural pieces).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.atc import (
    MODE_LOSSLESS,
    MODE_LOSSY,
    AtcDecoder,
    compress_stream,
    compress_trace,
    decompress_stream,
)
from repro.core.lossy import LossyConfig
from repro.core.stream import chunk_array, concat_chunks, count_addresses, rechunk
from repro.errors import ConfigurationError
from repro.traces.filter import CacheFilter, StreamingCacheFilter, iter_filtered_spec_like_chunks
from repro.traces.spec_like import get_workload
from repro.traces.trace import iter_raw_chunks, read_raw_trace, write_raw_trace

CHUNK_SIZES = (1, 7, 4096)

WORKER_COUNTS = (1, 2, 4)


def _container_files(directory) -> dict:
    return {entry.name: entry.read_bytes() for entry in sorted(directory.iterdir())}


@pytest.fixture(scope="module")
def reference_stream():
    """A small mcf-like reference stream shared by the filter tests."""
    return get_workload("429.mcf").reference_stream(6_000, seed=3)


@pytest.fixture(scope="module")
def filtered_addresses(reference_stream):
    """The one-shot filtered trace of the shared reference stream."""
    return CacheFilter().filter(reference_stream).trace.addresses


class TestChunkPlumbing:
    def test_chunk_array_concat_roundtrip(self):
        array = np.arange(1000, dtype=np.uint64)
        for size in CHUNK_SIZES:
            assert np.array_equal(concat_chunks(chunk_array(array, size)), array)

    def test_rechunk_produces_fixed_sizes(self):
        pieces = [np.arange(n, dtype=np.uint64) for n in (0, 3, 500, 1, 0, 97)]
        flat = concat_chunks(pieces)
        for size in CHUNK_SIZES:
            out = list(rechunk(iter(pieces), size))
            assert np.array_equal(concat_chunks(out), flat)
            assert all(int(chunk.size) == size for chunk in out[:-1])
            assert 0 < int(out[-1].size) <= size

    def test_rechunk_chunks_own_their_memory(self):
        """Re-chunked output must survive the producer reusing its buffer."""
        buffer = np.zeros(10, dtype=np.uint64)

        def producer():
            for value in range(5):
                buffer[:] = value
                yield buffer

        out = list(rechunk(producer(), 7))
        expected = np.repeat(np.arange(5, dtype=np.uint64), 10)
        assert np.array_equal(concat_chunks(out), expected)

    def test_count_addresses_drains_into_sink(self):
        seen = []
        total = count_addresses(chunk_array(np.arange(100, dtype=np.uint64), 7), seen.append)
        assert total == 100
        assert np.array_equal(concat_chunks(seen), np.arange(100, dtype=np.uint64))

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            list(chunk_array(np.arange(4, dtype=np.uint64), 0))
        with pytest.raises(ConfigurationError):
            list(rechunk([np.arange(4, dtype=np.uint64)], -1))


class TestStreamingFilterEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_filter_chunks_match_one_shot(self, reference_stream, filtered_addresses, chunk_size):
        streaming = StreamingCacheFilter()
        chunks = streaming.filter_chunks(reference_stream.iter_chunks(chunk_size))
        assert np.array_equal(concat_chunks(chunks), filtered_addresses)

    def test_streaming_stats_match_one_shot(self, reference_stream):
        one_shot = CacheFilter().filter(reference_stream)
        streaming = StreamingCacheFilter()
        for _ in streaming.filter_chunks(reference_stream.iter_chunks(97)):
            pass
        assert streaming.instruction_stats == one_shot.instruction_stats
        assert streaming.data_stats == one_shot.data_stats

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_spec_like_chunk_stream_matches_filtered_trace(self, chunk_size):
        from repro.traces.filter import filtered_spec_like_trace

        expected = filtered_spec_like_trace("462.libquantum", 5_000, seed=1).addresses
        chunks = iter_filtered_spec_like_chunks("462.libquantum", 5_000, chunk_size, seed=1)
        assert np.array_equal(concat_chunks(chunks), expected)


class TestStreamingEncoderEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_lossless_container_byte_identical(
        self, tmp_path, filtered_addresses, chunk_size, workers
    ):
        config = LossyConfig(chunk_buffer_addresses=500, backend="zlib", workers=workers)
        reference = tmp_path / "in-memory"
        compress_trace(filtered_addresses, reference, mode=MODE_LOSSLESS, config=config)
        streamed = tmp_path / f"stream-{chunk_size}-{workers}"
        compress_stream(
            chunk_array(filtered_addresses, chunk_size), streamed, mode=MODE_LOSSLESS, config=config
        )
        assert _container_files(streamed) == _container_files(reference)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_lossy_container_byte_identical(self, tmp_path, filtered_addresses, chunk_size):
        config = LossyConfig(
            interval_length=700, chunk_buffer_addresses=700, backend="zlib", threshold=0.4
        )
        reference = tmp_path / "in-memory"
        compress_trace(filtered_addresses, reference, mode=MODE_LOSSY, config=config)
        streamed = tmp_path / f"stream-{chunk_size}"
        compress_stream(
            chunk_array(filtered_addresses, chunk_size), streamed, mode=MODE_LOSSY, config=config
        )
        assert _container_files(streamed) == _container_files(reference)


class TestStreamingDecoderEquivalence:
    @pytest.fixture(scope="class")
    def lossy_container(self, tmp_path_factory, filtered_addresses):
        directory = tmp_path_factory.mktemp("stream-decode") / "container"
        config = LossyConfig(
            interval_length=700, chunk_buffer_addresses=700, backend="zlib", threshold=0.4
        )
        compress_trace(filtered_addresses, directory, mode=MODE_LOSSY, config=config)
        return directory

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_iter_chunks_matches_read_all(self, lossy_container, chunk_size, workers):
        expected = AtcDecoder(lossy_container).read_all()
        decoder = AtcDecoder(lossy_container, workers=workers)
        chunks = list(decoder.iter_chunks(chunk_size))
        assert np.array_equal(concat_chunks(chunks), expected)
        assert all(int(chunk.size) == chunk_size for chunk in chunks[:-1])

    def test_decompress_stream_helper(self, lossy_container):
        expected = AtcDecoder(lossy_container).read_all()
        assert np.array_equal(concat_chunks(decompress_stream(lossy_container, 97)), expected)

    def test_iter_chunks_detects_truncated_container(self, tmp_path, filtered_addresses):
        """Like read_all, the chunk stream must not end short silently."""
        from repro.errors import CodecError

        directory = tmp_path / "container"
        config = LossyConfig(chunk_buffer_addresses=500, backend="zlib")
        compress_trace(filtered_addresses, directory, mode=MODE_LOSSLESS, config=config)
        decoder = AtcDecoder(directory)
        # Corrupt the metadata so the records decode to fewer addresses
        # than INFO claims (a truncated-container stand-in).
        decoder.metadata = dict(decoder.metadata, original_length=len(filtered_addresses) + 1)
        with pytest.raises(CodecError):
            for _ in decoder.iter_chunks(97):
                pass


class TestStreamingHierarchyEquivalence:
    CONFIGS = [
        CacheConfig(num_sets=16, associativity=2, name="L1"),
        CacheConfig(num_sets=64, associativity=4, name="L2"),
    ]

    @pytest.fixture(scope="class")
    def blocks(self):
        rng = np.random.default_rng(42)
        return rng.integers(0, 2_000, size=5_000, dtype=np.uint64)

    @pytest.fixture(scope="class")
    def serial_misses(self, blocks):
        """Reference behaviour: the per-access serial loop."""
        hierarchy = CacheHierarchy(self.CONFIGS)
        misses = [int(b) for b in blocks.tolist() if not hierarchy.access_block(int(b))]
        return np.array(misses, dtype=np.uint64), hierarchy.stats()

    def test_batch_miss_stream_matches_serial(self, blocks, serial_misses):
        expected, expected_stats = serial_misses
        hierarchy = CacheHierarchy(self.CONFIGS)
        assert np.array_equal(hierarchy.miss_stream(blocks), expected)
        assert hierarchy.stats() == expected_stats

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_miss_stream_chunks_match_serial(self, blocks, serial_misses, chunk_size):
        expected, expected_stats = serial_misses
        hierarchy = CacheHierarchy(self.CONFIGS)
        chunks = hierarchy.miss_stream_chunks(chunk_array(blocks, chunk_size))
        assert np.array_equal(concat_chunks(chunks), expected)
        assert hierarchy.stats() == expected_stats


class TestRawFileChunkStreaming:
    def test_iter_raw_chunks_matches_read_raw_trace(self, tmp_path):
        values = np.arange(10_000, dtype=np.uint64) * np.uint64(3)
        path = tmp_path / "trace.bin"
        write_raw_trace(values, path)
        for chunk_size in CHUNK_SIZES:
            chunks = list(iter_raw_chunks(path, chunk_size))
            assert np.array_equal(concat_chunks(chunks), read_raw_trace(path).addresses)
            assert all(int(chunk.size) == chunk_size for chunk in chunks[:-1])

    def test_partial_tail_raises_after_full_records(self, tmp_path):
        from repro.errors import TraceFormatError

        path = tmp_path / "trace.bin"
        path.write_bytes(np.arange(5, dtype=np.uint64).tobytes() + b"\x01\x02\x03")
        produced = []
        with pytest.raises(TraceFormatError):
            for chunk in iter_raw_chunks(path, 2):
                produced.append(chunk)
        assert np.array_equal(concat_chunks(produced), np.arange(5, dtype=np.uint64))

    def test_mid_stream_short_reads_are_reassembled(self):
        """A pipe-like source may split records across read() calls."""

        class DribbleReader:
            def __init__(self, payload):
                self.payload = payload
                self.offset = 0

            def read(self, size):
                # Return 3 bytes at a time, never a whole record.
                piece = self.payload[self.offset : self.offset + 3]
                self.offset += len(piece)
                return piece

        values = np.arange(100, dtype=np.uint64)
        chunks = list(iter_raw_chunks(DribbleReader(values.tobytes()), 8))
        assert np.array_equal(concat_chunks(chunks), values)


class TestHarnessStreamingEntryPoints:
    def test_stream_trace_matches_cached_trace(self):
        from repro.analysis.harness import EvaluationHarness, EvaluationScale

        harness = EvaluationHarness(EvaluationScale(references_per_workload=5_000))
        expected = harness.trace("429.mcf").addresses
        assert np.array_equal(concat_chunks(harness.stream_trace("429.mcf", 97)), expected)

    def test_compress_workload_matches_in_memory_pipeline(self, tmp_path):
        from repro.analysis.harness import EvaluationHarness, EvaluationScale

        harness = EvaluationHarness(EvaluationScale(references_per_workload=5_000))
        config = LossyConfig(chunk_buffer_addresses=500, backend="zlib")
        streamed = tmp_path / "streamed"
        decoder = harness.compress_workload("429.mcf", streamed, mode="c", config=config)
        assert np.array_equal(decoder.read_all(), harness.trace("429.mcf").addresses)
        reference = tmp_path / "reference"
        compress_trace(harness.trace("429.mcf").addresses, reference, mode="c", config=config)
        assert _container_files(streamed) == _container_files(reference)
