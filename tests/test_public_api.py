"""Tests that the documented public API surface is importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.core.atc",
            "repro.core.backend",
            "repro.core.bytesort",
            "repro.core.container",
            "repro.core.histograms",
            "repro.core.intervals",
            "repro.core.inspect",
            "repro.core.lossless",
            "repro.core.lossy",
            "repro.traces",
            "repro.traces.trace",
            "repro.traces.synthetic",
            "repro.traces.spec_like",
            "repro.traces.filter",
            "repro.traces.records",
            "repro.traces.multicore",
            "repro.cache",
            "repro.cache.cache",
            "repro.cache.stackdist",
            "repro.cache.sweep",
            "repro.cache.hierarchy",
            "repro.cache.optimal",
            "repro.predictors",
            "repro.predictors.value",
            "repro.predictors.vpc",
            "repro.predictors.cdc",
            "repro.baselines",
            "repro.baselines.generic",
            "repro.baselines.unshuffle",
            "repro.baselines.delta",
            "repro.analysis",
            "repro.analysis.metrics",
            "repro.analysis.comparison",
            "repro.analysis.reporting",
            "repro.analysis.reuse",
            "repro.analysis.harness",
            "repro.cli",
            "repro.errors",
        ],
    )
    def test_every_module_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core.bytesort",
            "repro.core.lossy",
            "repro.core.lossless",
            "repro.cache.stackdist",
            "repro.predictors.vpc",
            "repro.predictors.cdc",
            "repro.baselines.unshuffle",
            "repro.analysis.metrics",
        ],
    )
    def test_modules_define_all(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_error_hierarchy(self):
        assert issubclass(repro.TraceFormatError, repro.ReproError)
        assert issubclass(repro.ContainerError, repro.ReproError)
        assert issubclass(repro.CodecError, repro.ReproError)
        assert issubclass(repro.ConfigurationError, repro.ReproError)
