"""Tests of the continuous-benchmarking subsystem (repro.bench + CLI gate)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    REPORT_SCHEMA,
    BenchScale,
    build_report,
    compare_reports,
    load_report,
    render_report_text,
    resolved_executor_name,
    run_suite,
    save_report,
    SUITE_BENCHES_NAMES,
)
from repro.cli import bench_main
from repro.errors import BenchmarkError

SCALE = BenchScale(references=2_000)


@pytest.fixture(scope="module")
def suite_report() -> dict:
    """One real (tiny-scale) suite run shared by the run/report/CLI tests."""
    results = run_suite(SCALE, executor="serial", workers=1)
    return build_report(results, SCALE, "serial", 1)


def _synthetic_report(**overrides) -> dict:
    """A hand-built, schema-valid report for fast comparator tests."""
    benches = overrides.pop("benchmarks", None) or [
        {
            "name": "filter",
            "seconds": 1.0,
            "addresses": 1000,
            "payload_bytes": None,
            "bits_per_address": None,
            "peak_memory_bytes": 1_000_000,
            "addresses_per_second": 1000.0,
        },
        {
            "name": "encode_lossless",
            "seconds": 0.5,
            "addresses": 1000,
            "payload_bytes": 2500,
            "bits_per_address": 20.0,
            "peak_memory_bytes": 2_000_000,
            "addresses_per_second": 2000.0,
        },
    ]
    report = {
        "schema": REPORT_SCHEMA,
        "package_version": "0.0.0-test",
        "scale": BenchScale(references=1000).to_dict(),
        "executor": "serial",
        "workers": 1,
        "machine": {"python": "3.x", "platform": "test", "cpus": 1},
        "benchmarks": benches,
    }
    report.update(overrides)
    return report


class TestRunSuite:
    def test_runs_every_case_in_order(self, suite_report):
        assert [entry["name"] for entry in suite_report["benchmarks"]] == list(SUITE_BENCHES_NAMES)

    def test_metrics_are_populated(self, suite_report):
        for entry in suite_report["benchmarks"]:
            assert entry["seconds"] > 0
            assert entry["addresses"] > 0
            assert entry["peak_memory_bytes"] > 0
            assert entry["addresses_per_second"] > 0
        codec_entries = [e for e in suite_report["benchmarks"] if e["name"].startswith(("enc", "dec"))]
        assert all(e["bits_per_address"] > 0 and e["payload_bytes"] > 0 for e in codec_entries)

    def test_metrics_deterministic_across_runs_and_executors(self, suite_report):
        rerun = run_suite(SCALE, executor="thread", workers=2)
        by_name = {entry["name"]: entry for entry in suite_report["benchmarks"]}
        for result in rerun:
            assert result.bits_per_address == by_name[result.name]["bits_per_address"]
            assert result.payload_bytes == by_name[result.name]["payload_bytes"]
            assert result.addresses == by_name[result.name]["addresses"]

    def test_unknown_case_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_suite(SCALE, names=["warp_drive"])

    def test_new_cases_require_the_filter_stage(self):
        with pytest.raises(BenchmarkError, match="'filter' case must run first"):
            run_suite(SCALE, names=["filter_assoc"])
        with pytest.raises(BenchmarkError, match="'filter' case must run first"):
            run_suite(SCALE, names=["stackdist_curve"])

    def test_simulation_cases_are_present(self, suite_report):
        names = [entry["name"] for entry in suite_report["benchmarks"]]
        assert "filter_assoc" in names
        assert "stackdist_curve" in names

    def test_resolved_executor_name(self):
        assert resolved_executor_name(None, workers=1) == "serial"
        assert resolved_executor_name(None, workers=4) == "thread"
        assert resolved_executor_name("process", workers=1) == "process"


class TestReportSchema:
    def test_real_report_validates(self, suite_report):
        from repro.bench import validate_report

        assert validate_report(suite_report) is suite_report

    @pytest.mark.parametrize(
        "mutate, path_hint",
        [
            (lambda r: r.pop("schema"), "schema"),
            (lambda r: r.update(schema="bogus/9"), "schema"),
            (lambda r: r.pop("benchmarks"), "benchmarks"),
            (lambda r: r.update(benchmarks=[]), "benchmarks"),
            (lambda r: r["benchmarks"][0].pop("seconds"), "seconds"),
            (lambda r: r["benchmarks"][0].update(seconds="fast"), "seconds"),
            (lambda r: r["benchmarks"][0].update(seconds=-1.0), "non-negative"),
            (lambda r: r["benchmarks"][1].update(bits_per_address="tiny"), "bits_per_address"),
            (lambda r: r["scale"].pop("references"), "references"),
            (lambda r: r["benchmarks"].append(dict(r["benchmarks"][0])), "duplicate"),
        ],
    )
    def test_schema_violations_are_rejected_with_a_path(self, mutate, path_hint):
        from repro.bench import validate_report

        report = _synthetic_report()
        mutate(report)
        with pytest.raises(BenchmarkError, match=path_hint):
            validate_report(report)

    def test_save_and_load_round_trip(self, tmp_path, suite_report):
        path = tmp_path / "report.json"
        save_report(suite_report, str(path))
        assert load_report(str(path)) == suite_report

    def test_load_rejects_bad_files(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_report(str(missing))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(str(garbled))

    def test_render_text_mentions_every_case(self, suite_report):
        text = render_report_text(suite_report)
        for name in SUITE_BENCHES_NAMES:
            assert name in text


class TestComparator:
    def test_identical_reports_pass(self):
        report = _synthetic_report()
        comparison = compare_reports(report, copy.deepcopy(report))
        assert comparison.ok
        assert "PASS" in comparison.render()

    def test_synthetically_slowed_run_fails(self):
        baseline = _synthetic_report()
        slowed = copy.deepcopy(baseline)
        slowed["benchmarks"][0]["seconds"] = baseline["benchmarks"][0]["seconds"] * 2.0
        comparison = compare_reports(slowed, baseline, max_slowdown=1.25)
        assert not comparison.ok
        failed = {(check.bench, check.metric) for check in comparison.failures}
        assert ("filter", "seconds") in failed
        # The aggregate guard trips too (total 1.5s -> 2.5s), nothing else.
        assert failed == {("filter", "seconds"), ("suite-total", "seconds")}
        assert "FAIL" in comparison.render()

    def test_slowdown_inside_the_band_passes(self):
        baseline = _synthetic_report()
        slower = copy.deepcopy(baseline)
        slower["benchmarks"][0]["seconds"] = baseline["benchmarks"][0]["seconds"] * 1.2
        assert compare_reports(slower, baseline, max_slowdown=1.25).ok

    def test_noise_floor_tolerates_jitter_but_not_gross_regressions(self):
        # Big suite: total 0.01 + 0.5 = 0.51 s, so the scale-aware floor is
        # max(5 ms, 4% * 0.51 s) = 20.4 ms — the 10 ms case sits below it.
        baseline = _synthetic_report()
        baseline["benchmarks"][0]["seconds"] = 0.01
        jittery = copy.deepcopy(baseline)
        jittery["benchmarks"][0]["seconds"] = 0.02  # 2x, but still sub-floor noise
        assert compare_reports(jittery, baseline).ok
        # A sub-floor case that regresses past the floored band must fail:
        # the floor tolerates noise, it is not a blanket exemption.
        gross = copy.deepcopy(baseline)
        gross["benchmarks"][0]["seconds"] = 0.14  # 14x, well past 0.0204 * 1.25
        comparison = compare_reports(gross, baseline)
        assert not comparison.ok
        assert any(c.bench == "filter" and c.metric == "seconds" for c in comparison.failures)

    def test_noise_floor_scales_down_with_the_suite(self):
        # In a fast suite (total 0.02 s) the floor shrinks to the absolute
        # minimum (5 ms), so a 10 ms -> 40 ms regression is caught — under
        # the old flat 50 ms floor it would have been invisibly "noise".
        baseline = _synthetic_report()
        baseline["benchmarks"][0]["seconds"] = 0.01
        baseline["benchmarks"][1]["seconds"] = 0.01
        regressed = copy.deepcopy(baseline)
        regressed["benchmarks"][0]["seconds"] = 0.04  # 4x past the 0.0125 band
        comparison = compare_reports(regressed, baseline)
        assert not comparison.ok
        assert any(c.bench == "filter" and c.metric == "seconds" for c in comparison.failures)

    def test_bad_noise_fraction_rejected(self):
        report = _synthetic_report()
        with pytest.raises(BenchmarkError, match="noise_fraction"):
            compare_reports(report, copy.deepcopy(report), noise_fraction=1.0)

    def test_bits_per_address_drift_fails(self):
        baseline = _synthetic_report()
        drifted = copy.deepcopy(baseline)
        drifted["benchmarks"][1]["bits_per_address"] = 20.001
        comparison = compare_reports(drifted, baseline)
        assert not comparison.ok
        (failure,) = comparison.failures
        assert failure.metric == "bits_per_address"
        assert "drift" in failure.message

    def test_missing_benchmark_fails_and_new_one_passes(self):
        baseline = _synthetic_report()
        current = copy.deepcopy(baseline)
        removed = current["benchmarks"].pop(0)
        current["benchmarks"].append({**removed, "name": "brand_new"})
        comparison = compare_reports(current, baseline)
        assert not comparison.ok
        assert {(c.bench, c.metric, c.ok) for c in comparison.checks if c.metric == "coverage"} == {
            ("filter", "coverage", False),
            ("brand_new", "coverage", True),
        }

    def test_scale_mismatch_is_an_error_not_a_verdict(self):
        baseline = _synthetic_report()
        other = _synthetic_report(scale=BenchScale(references=9999).to_dict())
        with pytest.raises(BenchmarkError, match="different scales"):
            compare_reports(other, baseline)

    def test_bad_tolerance_rejected(self):
        report = _synthetic_report()
        with pytest.raises(BenchmarkError, match="max_slowdown"):
            compare_reports(report, copy.deepcopy(report), max_slowdown=0.5)


class TestRunProfile:
    def test_profiles_selected_cases(self):
        from repro.bench import run_profile

        tables = run_profile(SCALE, names=["filter", "filter_assoc"], top=5)
        assert set(tables) == {"filter", "filter_assoc"}
        assert all("cumulative" in table for table in tables.values())
        # the hot path of the associative case is the cache simulation
        assert "access_batches" in tables["filter_assoc"]

    def test_rejects_unknown_case_and_bad_top(self):
        from repro.bench import run_profile

        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_profile(SCALE, names=["warp_drive"])
        with pytest.raises(BenchmarkError, match="table length"):
            run_profile(SCALE, names=["filter"], top=0)


class TestBenchCli:
    def test_profile_flag_prints_tables_on_stderr(self, capsys):
        code = bench_main(["--refs", "2000", "--json", "--profile", "5"])
        assert code == 0
        captured = capsys.readouterr()
        # stdout stays a clean JSON report; the profile tables ride stderr
        assert json.loads(captured.out)["schema"] == REPORT_SCHEMA
        assert "profile: filter (top 5" in captured.err
        assert "cumulative" in captured.err

    def test_emits_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_TEST.json"
        code = bench_main(["--refs", "2000", "--json", "--output", str(out)])
        assert code == 0
        from repro.bench import validate_report

        emitted = json.loads(capsys.readouterr().out)
        assert validate_report(emitted)["scale"]["references"] == 2000
        assert load_report(str(out)) == emitted

    def test_gate_passes_on_own_baseline_and_fails_on_slowed_one(self, tmp_path, suite_report):
        baseline = tmp_path / "baseline.json"
        save_report(suite_report, str(baseline))
        # A very generous band vs a report from the same machine: pass.
        code = bench_main(
            ["--refs", "2000", "--json", "--baseline", str(baseline), "--max-slowdown", "50"]
        )
        assert code == 0
        # Corrupt the baseline's fidelity metric: the gate must go red even
        # with an infinite time band (drift is never tolerated).
        doctored = copy.deepcopy(suite_report)
        for entry in doctored["benchmarks"]:
            if entry["bits_per_address"] is not None:
                entry["bits_per_address"] += 1.0
        save_report(doctored, str(baseline))
        code = bench_main(
            ["--refs", "2000", "--json", "--baseline", str(baseline), "--max-slowdown", "1e9"]
        )
        assert code == 1

    def test_invalid_baseline_is_a_clean_cli_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = bench_main(["--refs", "2000", "--json", "--baseline", str(bad)])
        assert code == 1
        assert "error" in capsys.readouterr().err
