"""Cross-module property-based tests (hypothesis).

These properties tie several subsystems together and encode the invariants
the paper's design relies on:

* every lossless path in the library is an exact roundtrip, whatever the
  input values;
* the lossy codec always preserves the sequence length and never references
  a chunk it did not store;
* byte translations are permutations, so imitation can never merge two
  distinct addresses of a chunk;
* the on-disk container decodes to exactly what the in-memory codec
  produces.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.delta import delta_decode, delta_encode
from repro.baselines.unshuffle import unshuffle_inverse, unshuffle_transform
from repro.core.bytesort import bytesort_inverse, bytesort_transform
from repro.core.container import deserialize_interval_trace, serialize_interval_trace
from repro.core.histograms import IntervalSummary, apply_translation, byte_translation
from repro.core.lossless import LosslessCodec
from repro.core.lossy import LossyCodec, LossyConfig

_addresses = st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=0, max_size=400)
_small_addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=400
)


class TestLosslessPathsAreExact:
    @settings(max_examples=40, deadline=None)
    @given(_addresses, st.integers(min_value=1, max_value=100))
    def test_bytesort_then_unshuffle_compose(self, values, buffer_addresses):
        """Applying both reversible transforms in sequence still roundtrips."""
        array = np.array(values, dtype=np.uint64)
        transformed = bytesort_transform(array, buffer_addresses)
        recovered = bytesort_inverse(transformed, buffer_addresses)
        assert np.array_equal(recovered, array)
        unshuffled = unshuffle_transform(array, buffer_addresses)
        assert np.array_equal(unshuffle_inverse(unshuffled, buffer_addresses), array)

    @settings(max_examples=25, deadline=None)
    @given(_addresses)
    def test_full_lossless_codec(self, values):
        array = np.array(values, dtype=np.uint64)
        codec = LosslessCodec(buffer_addresses=64, backend="zlib")
        assert np.array_equal(codec.decompress(codec.compress(array)), array)

    @settings(max_examples=25, deadline=None)
    @given(_addresses)
    def test_delta_baseline(self, values):
        array = np.array(values, dtype=np.uint64)
        assert np.array_equal(delta_decode(delta_encode(array)), array)


class TestLossyInvariants:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_small_addresses, st.integers(min_value=10, max_value=200))
    def test_length_preserved_and_chunks_consistent(self, values, interval_length):
        array = np.array(values, dtype=np.uint64)
        config = LossyConfig(interval_length=interval_length, chunk_buffer_addresses=256, backend="zlib")
        codec = LossyCodec(config)
        compressed = codec.compress(array)
        approx = codec.decompress(compressed)
        assert approx.size == array.size
        assert compressed.num_chunks <= max(compressed.num_intervals, 1)
        referenced = {record.chunk_id for record in compressed.records}
        if referenced:
            assert max(referenced) < compressed.num_chunks
        assert sum(record.length for record in compressed.records) == array.size

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_small_addresses, st.integers(min_value=10, max_value=200))
    def test_first_interval_always_exact(self, values, interval_length):
        array = np.array(values, dtype=np.uint64)
        config = LossyConfig(interval_length=interval_length, chunk_buffer_addresses=256, backend="zlib")
        codec = LossyCodec(config)
        approx = codec.decompress(codec.compress(array))
        first = min(interval_length, array.size)
        assert np.array_equal(approx[:first], array[:first])

    @settings(max_examples=25, deadline=None)
    @given(_small_addresses, _small_addresses)
    def test_translation_never_merges_distinct_addresses(self, values_a, values_b):
        interval_a = np.array(values_a, dtype=np.uint64)
        interval_b = np.array(values_b, dtype=np.uint64)
        translations = byte_translation(
            IntervalSummary.from_addresses(interval_a), IntervalSummary.from_addresses(interval_b)
        )
        translated = apply_translation(interval_a, translations)
        assert np.unique(translated).size == np.unique(interval_a).size

    @settings(max_examples=20, deadline=None)
    @given(_small_addresses)
    def test_disabling_translation_still_preserves_length(self, values):
        array = np.array(values, dtype=np.uint64)
        config = LossyConfig(
            interval_length=64, chunk_buffer_addresses=64, backend="zlib", enable_translation=False
        )
        codec = LossyCodec(config)
        assert codec.decompress(codec.compress(array)).size == array.size


class TestContainerSerialisation:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_small_addresses, st.integers(min_value=16, max_value=128))
    def test_interval_trace_serialisation_roundtrip(self, values, interval_length):
        array = np.array(values, dtype=np.uint64)
        config = LossyConfig(interval_length=interval_length, chunk_buffer_addresses=128, backend="zlib")
        compressed = LossyCodec(config).compress(array)
        recovered = deserialize_interval_trace(serialize_interval_trace(compressed.records))
        assert len(recovered) == len(compressed.records)
        for original, roundtripped in zip(compressed.records, recovered):
            assert original.kind == roundtripped.kind
            assert original.chunk_id == roundtripped.chunk_id
            assert original.length == roundtripped.length
            if original.kind == "imitate":
                assert np.array_equal(original.translations, roundtripped.translations)
                assert np.array_equal(original.active_bytes, roundtripped.active_bytes)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_small_addresses)
    def test_container_matches_in_memory_codec(self, tmp_path_factory, values):
        array = np.array(values, dtype=np.uint64)
        config = LossyConfig(interval_length=97, chunk_buffer_addresses=128, backend="zlib")
        from repro.core.atc import MODE_LOSSY, compress_trace

        directory = tmp_path_factory.mktemp("prop") / "container"
        decoder = compress_trace(array, directory, mode=MODE_LOSSY, config=config)
        in_memory = LossyCodec(config).decompress(LossyCodec(config).compress(array))
        assert np.array_equal(decoder.read_all(), in_memory)
