"""End-to-end integration tests crossing subsystem boundaries.

These tests exercise the full paper pipeline: synthetic workload ->
cache filter -> ATC compression (lossless and lossy) -> consumers
(cache simulation, address prediction) and check the headline claims of
the paper on a small scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import compare_miss_ratio_surfaces
from repro.analysis.metrics import bits_per_address
from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import unshuffled_bits_per_address
from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, compress_trace, decompress_trace
from repro.core.lossless import lossless_bits_per_address, lossless_compress, lossless_decompress
from repro.core.lossy import LossyCodec, LossyConfig
from repro.predictors.vpc import VpcCodec
from repro.traces.filter import filtered_spec_like_trace

# End-to-end pipeline runs are the slowest cases in the suite; the CI fast
# lane deselects them with -m "not slow" while tier-1 runs everything.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def small_filtered_traces():
    """Three spec-like filtered traces spanning regular to irregular."""
    names = ["462.libquantum", "429.mcf", "401.bzip2"]
    return {name: filtered_spec_like_trace(name, 12_000, seed=11) for name in names}


class TestEndToEndLossless:
    def test_pipeline_roundtrips_for_every_trace(self, small_filtered_traces):
        for name, trace in small_filtered_traces.items():
            payload = lossless_compress(trace.addresses, buffer_addresses=4_000)
            recovered = lossless_decompress(payload)
            assert np.array_equal(recovered, trace.addresses), name

    def test_table1_ordering_bzip2_vs_unshuffle_vs_bytesort(self, small_filtered_traces):
        """On average over the mini-suite: bz2 >= unshuffle >= bytesort."""
        bz2_mean, unshuffle_mean, bytesort_mean = 0.0, 0.0, 0.0
        for trace in small_filtered_traces.values():
            addresses = trace.addresses
            bz2_mean += raw_bits_per_address(addresses)
            unshuffle_mean += unshuffled_bits_per_address(addresses, buffer_addresses=len(addresses))
            bytesort_mean += lossless_bits_per_address(addresses, buffer_addresses=len(addresses))
        assert bytesort_mean <= unshuffle_mean <= bz2_mean

    def test_bytesort_vs_vpc_on_regular_filtered_trace(self, small_filtered_traces):
        """The libquantum-like trace is the paper's best case for bytesort."""
        addresses = small_filtered_traces["462.libquantum"].addresses
        bytesort_bpa = lossless_bits_per_address(addresses, buffer_addresses=len(addresses))
        vpc_payload = VpcCodec().compress(addresses)
        vpc_bpa = bits_per_address(len(vpc_payload), len(addresses))
        assert bytesort_bpa < vpc_bpa


class TestEndToEndLossy:
    def test_lossy_smaller_than_lossless_on_stationary_trace(self, small_filtered_traces):
        addresses = small_filtered_traces["429.mcf"].addresses
        config = LossyConfig(interval_length=max(len(addresses) // 8, 1_000))
        compressed = LossyCodec(config).compress(addresses)
        lossless_bpa = lossless_bits_per_address(addresses, buffer_addresses=len(addresses))
        assert compressed.bits_per_address() <= lossless_bpa

    def test_lossy_miss_ratio_fidelity_end_to_end(self, small_filtered_traces):
        addresses = small_filtered_traces["429.mcf"].addresses
        config = LossyConfig(interval_length=max(len(addresses) // 6, 1_000))
        result = compare_miss_ratio_surfaces(addresses, set_counts=[64, 256], config=config)
        assert result.max_miss_ratio_error < 0.15

    def test_container_and_in_memory_codecs_agree(self, tmp_path, small_filtered_traces):
        addresses = small_filtered_traces["401.bzip2"].addresses
        config = LossyConfig(interval_length=4_000, chunk_buffer_addresses=4_000)
        decoder = compress_trace(addresses, tmp_path / "c", mode=MODE_LOSSY, config=config)
        in_memory = LossyCodec(config).decompress(LossyCodec(config).compress(addresses))
        assert np.array_equal(decoder.read_all(), in_memory)

    def test_lossless_container_roundtrip_full_pipeline(self, tmp_path, small_filtered_traces):
        addresses = small_filtered_traces["462.libquantum"].addresses
        config = LossyConfig(chunk_buffer_addresses=2_000)
        compress_trace(addresses, tmp_path / "c", mode=MODE_LOSSLESS, config=config)
        assert np.array_equal(decompress_trace(tmp_path / "c"), addresses)
