"""Distributed-sweep correctness: sharding, leases, crash/resume, merge.

The headline suite here is the **crash/resume fault-injection harness**
(:class:`FaultingRunner` + ``TestFaultInjection``): real worker processes
are killed mid-sweep via the library's env-triggered fault hook
(``REPRO_SWEEP_FAULT_EXIT_AFTER`` -> ``os._exit(42)`` after the K-th stored
unit, *before* the lease release), then the sweep is resumed and the tests
assert the protocol's whole contract at once:

* the resumed sweep completes, whatever the worker count or steal setting;
* every unit was evaluated **exactly once** across all processes (counted
  through the ``REPRO_SWEEP_EVAL_LOG`` append-only spy);
* the merged result is **byte-identical** to an uninterrupted serial run
  (via :meth:`SweepResult.normalized`);
* no ``.lease`` or ``.tmp`` debris survives.

The hypothesis properties then generalise the scheduling half: *any* sweep
spec, *any* ``i/N`` partition (empty shards included), run in *any* order,
merges to exactly the unsharded result.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments import (
    DistributedSweepRunner,
    LeaseManager,
    ResultStore,
    SweepRunner,
    default_code_version,
    expand_sweep,
    lease_census,
    merge_sweep,
    parse_shard,
    shard_progress,
    sweep_spec_from_dict,
)
from repro.experiments.distributed import EVAL_LOG_ENV, FAULT_EXIT_CODE, FAULT_EXIT_ENV

_SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])

_SPEC_DICT = {
    "name": "dist",
    "workloads": [
        {"name": "429.mcf", "references": 3000},
        {"name": "433.milc", "references": 3000},
    ],
    "codecs": ["raw", "delta", "lossless"],
    "scale": {"small_buffer": 1000, "interval_length": 1000},
}
_SPEC = sweep_spec_from_dict(_SPEC_DICT)


def _write_spec(tmp_path) -> Path:
    path = tmp_path / "dist.json"
    path.write_text(json.dumps(_SPEC_DICT), encoding="utf-8")
    return path


def _leftovers(cache_dir) -> list:
    cache_dir = Path(cache_dir)
    return list(cache_dir.glob("*.lease")) + list(cache_dir.glob("*.tmp"))


# ---------------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------------
class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard(" 3/8 ") == (3, 8)

    @pytest.mark.parametrize("text", ["", "0/2", "3/2", "1/0", "a/b", "1-2", "1/2/3", "-1/2"])
    def test_parse_shard_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_shard(text)

    @pytest.mark.parametrize("shard_count", [1, 2, 3, 5, 8, 13])
    def test_partition_is_disjoint_and_exhaustive(self, shard_count):
        plan = expand_sweep(_SPEC)
        version = default_code_version()
        seen = []
        for index in range(1, shard_count + 1):
            seen.extend(u.label for u in plan.shard_units(index, shard_count, version))
        assert sorted(seen) == sorted(u.label for u in plan.units)
        assert len(seen) == len(set(seen))

    def test_large_shard_counts_leave_some_shards_empty(self):
        plan = expand_sweep(_SPEC)
        version = default_code_version()
        sizes = [len(plan.shard_units(i, 13, version)) for i in range(1, 14)]
        assert sum(sizes) == len(plan.units)
        assert 0 in sizes  # 6 units over 13 shards: pigeonhole

    def test_shard_validation(self):
        plan = expand_sweep(_SPEC)
        with pytest.raises(ConfigurationError):
            plan.shard_units(0, 2, "v")
        with pytest.raises(ConfigurationError):
            plan.shard_units(3, 2, "v")
        with pytest.raises(ConfigurationError):
            plan.shard_units(1, 0, "v")


# ---------------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------------
class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


_HASH = "ab" * 32


class TestLeaseManager:
    def test_acquire_is_exclusive_while_fresh(self, tmp_path):
        first = LeaseManager(tmp_path, owner="first")
        second = LeaseManager(tmp_path, owner="second")
        assert first.acquire(_HASH) == "fresh"
        assert second.acquire(_HASH) is None
        assert first.read(_HASH).owner == "first"

    def test_release_only_by_owner(self, tmp_path):
        first = LeaseManager(tmp_path, owner="first")
        second = LeaseManager(tmp_path, owner="second")
        first.acquire(_HASH)
        assert second.release(_HASH) is False
        assert first.read(_HASH) is not None
        assert first.release(_HASH) is True
        assert first.read(_HASH) is None

    def test_expired_lease_is_reclaimed_via_fake_clock(self, tmp_path):
        clock = _FakeClock(0.0)
        holder = LeaseManager(tmp_path, owner="holder", ttl=100.0, clock=clock)
        stealer = LeaseManager(tmp_path, owner="stealer", ttl=100.0, clock=clock)
        holder.acquire(_HASH)
        clock.now = 99.0
        assert stealer.acquire(_HASH) is None
        clock.now = 100.0  # expiry is inclusive: expires <= now
        assert stealer.acquire(_HASH) == "reclaimed"
        assert stealer.read(_HASH).owner == "stealer"

    def test_dead_same_host_pid_is_reclaimed_immediately(self, tmp_path):
        # A subprocess we already reaped is a guaranteed-dead same-host pid.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        manager = LeaseManager(tmp_path, owner="live", ttl=10_000.0)
        (tmp_path / f"{_HASH}.lease").write_text(
            json.dumps(
                {"owner": "crashed", "host": manager.host, "pid": child.pid,
                 "expires": manager.clock() + 10_000.0}
            ),
            encoding="utf-8",
        )
        assert manager.acquire(_HASH) == "reclaimed"

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        (tmp_path / f"{_HASH}.lease").write_text("not json", encoding="utf-8")
        manager = LeaseManager(tmp_path, owner="m")
        assert manager.acquire(_HASH) == "reclaimed"

    def test_census_counts_active_and_stale(self, tmp_path):
        clock = _FakeClock(0.0)
        manager = LeaseManager(tmp_path, owner="m", ttl=50.0, clock=clock)
        manager.acquire("11" * 32)
        manager.acquire("22" * 32)
        clock.now = 60.0
        manager.acquire("33" * 32)  # reclaims nothing; new hash, fresh at t=60
        census = lease_census(tmp_path, clock=clock)
        assert (census.active, census.stale, census.total) == (1, 2, 3)

    def test_prune_completed_only_removes_moot_leases(self, tmp_path):
        store = ResultStore(tmp_path)
        manager = LeaseManager(tmp_path, owner="m")
        done, pending = "44" * 32, "55" * 32
        manager.acquire(done)
        manager.acquire(pending)
        store.put(done, {"bits_per_address": 1.0})
        assert manager.prune_completed(store) == 1
        assert manager.read(done) is None
        assert manager.read(pending) is not None

    @settings(max_examples=30, deadline=None)
    @given(
        ttl=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        advance=st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
    )
    def test_property_reclaim_iff_expired(self, tmp_path_factory, ttl, advance):
        """A foreign-host lease is re-claimable exactly when its TTL elapsed."""
        directory = tmp_path_factory.mktemp("leases")
        clock = _FakeClock(0.0)
        stealer = LeaseManager(directory, owner="stealer", ttl=ttl, clock=clock)
        (directory / f"{_HASH}.lease").write_text(
            json.dumps({"owner": "remote", "host": "elsewhere", "pid": 1, "expires": ttl}),
            encoding="utf-8",
        )
        clock.now = advance
        status = stealer.acquire(_HASH)
        assert status == ("reclaimed" if advance >= ttl else None)


# ---------------------------------------------------------------------------------
# Satellite 3 regression: concurrent writers of the same hash
# ---------------------------------------------------------------------------------
class TestConcurrentStoreWriters:
    def test_same_hash_concurrent_puts_never_collide(self, tmp_path):
        """Two workers finishing the same stolen unit race `put` safely.

        With the old shared ``<hash>.json.tmp`` temp name, one writer's
        rename yanked the file out from under the other's
        (``FileNotFoundError``); unique temp names make every rename a
        complete, valid entry — last one wins.
        """
        store = ResultStore(tmp_path / "cache")
        writers = 8
        rounds = 25
        barrier = threading.Barrier(writers)
        errors = []

        def write(worker: int) -> None:
            try:
                for round_no in range(rounds):
                    barrier.wait()
                    store.put(_HASH, {"worker": worker, "round": round_no})
            except Exception as error:  # noqa: BLE001 - the regression IS the exception
                errors.append(error)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        winner = store.get(_HASH)
        assert winner is not None and winner["round"] == rounds - 1
        assert 0 <= winner["worker"] < writers
        assert store.tmp_files() == []

    def test_prune_tmp_is_age_guarded(self, tmp_path):
        store = ResultStore(tmp_path)
        store.directory.mkdir(parents=True, exist_ok=True)
        debris = store.directory / f"{_HASH}.999.1.0.tmp"
        debris.write_text("{}", encoding="utf-8")
        assert store.prune_tmp() == 0  # fresh file: under the default age
        assert store.prune_tmp(max_age_seconds=0.0) == 1
        assert store.tmp_files() == []


# ---------------------------------------------------------------------------------
# In-process distributed runner (stubbed evaluation: scheduling only)
# ---------------------------------------------------------------------------------
class _StubDistributedRunner(DistributedSweepRunner):
    """Deterministic, trace-free evaluation: isolates the scheduling logic."""

    def _filtered_trace(self, workload, filter_spec):
        return np.arange(8, dtype=np.uint64)

    def _evaluate_unit(self, unit, addresses):
        return _stub_entry(unit, addresses)


class _StubSerialRunner(SweepRunner):
    def _filtered_trace(self, workload, filter_spec):
        return np.arange(8, dtype=np.uint64)

    def _evaluate_unit(self, unit, addresses):
        return _stub_entry(unit, addresses)


def _stub_entry(unit, addresses):
    return {
        "addresses": int(addresses.size),
        "payload_bytes": len(unit.label),
        "bits_per_address": float(len(unit.label)),
        "seconds": 0.25,
        "extra": {},
        "unit": unit.to_dict(),
    }


class TestDistributedRunner:
    def test_sharded_workers_complete_and_merge_byte_identically(self, tmp_path):
        serial = _StubSerialRunner(_SPEC, cache_dir=tmp_path / "serial").run()
        cache = tmp_path / "dist"
        evaluated = []
        for index in (2, 1, 3):  # any order
            report = _StubDistributedRunner(
                _SPEC, cache, shard=(index, 3), on_unit=lambda u, e: evaluated.append(u.label)
            ).run_worker()
            assert report.stolen == 0
        merged = merge_sweep(_SPEC, ResultStore(cache))
        assert merged.is_complete
        assert merged.result.normalized().to_json() == serial.normalized().to_json()
        assert sorted(evaluated) == sorted(u.label for u in expand_sweep(_SPEC).units)
        assert _leftovers(cache) == []

    def test_corrupt_store_entry_is_quarantined_and_rerun(self, tmp_path):
        """The exactly-once contract survives on-disk corruption.

        A completed sweep whose store loses one entry to bit rot must heal
        itself on the next worker pass: the damaged entry is quarantined
        (counted in the report), exactly that one unit is re-evaluated, and
        the merged result is byte-identical to the uncorrupted run.
        """
        cache = tmp_path / "cache"
        first = _StubDistributedRunner(_SPEC, cache).run_worker()
        assert first.remaining == 0 and first.integrity_evictions == 0
        baseline = merge_sweep(_SPEC, ResultStore(cache)).result.normalized().to_json()

        victim = sorted(Path(cache).glob("*.json"))[0]
        victim.write_text(victim.read_text().replace(":", ";", 1))

        second = _StubDistributedRunner(_SPEC, cache).run_worker()
        assert second.integrity_evictions == 1
        assert second.evaluated == 1  # only the damaged unit re-ran
        assert second.remaining == 0
        assert list(Path(cache).glob("*.quarantine"))  # bad bytes kept aside
        merged = merge_sweep(_SPEC, ResultStore(cache))
        assert merged.is_complete
        assert merged.result.normalized().to_json() == baseline

    def test_stealer_finishes_an_abandoned_shard(self, tmp_path):
        cache = tmp_path / "cache"
        first = _StubDistributedRunner(_SPEC, cache, shard="1/2").run_worker()
        assert first.remaining > 0  # shard 2 never ran
        stealer = _StubDistributedRunner(_SPEC, cache, steal=True).run_worker()
        assert stealer.shard_units == 0  # a pure stealer owns nothing
        assert stealer.evaluated == stealer.stolen == first.remaining
        assert stealer.remaining == 0
        assert merge_sweep(_SPEC, ResultStore(cache)).is_complete

    def test_active_foreign_lease_is_skipped_not_duplicated(self, tmp_path):
        cache = tmp_path / "cache"
        plan = expand_sweep(_SPEC)
        held = plan.units[0].unit_hash(default_code_version())
        LeaseManager(cache, owner="other-live-worker").acquire(held)
        report = _StubDistributedRunner(_SPEC, cache).run_worker()
        assert report.skipped_leased == 1
        assert report.evaluated == len(plan.units) - 1
        assert report.remaining == 1
        # The foreign lease survives the prune: its unit has no result yet.
        assert (cache / f"{held}.lease").exists()

    def test_stale_lease_is_reclaimed_with_fake_clock(self, tmp_path):
        cache = tmp_path / "cache"
        plan = expand_sweep(_SPEC)
        held = plan.units[0].unit_hash(default_code_version())
        dead = _FakeClock(0.0)
        LeaseManager(cache, owner="crashed", ttl=100.0, clock=dead).acquire(held)
        # Make the crashed holder's lease look foreign so only the clock,
        # not the dead-pid fast path, can decide staleness.
        lease_path = cache / f"{held}.lease"
        body = json.loads(lease_path.read_text(encoding="utf-8"))
        body["host"] = "elsewhere"
        lease_path.write_text(json.dumps(body), encoding="utf-8")
        late = _FakeClock(1000.0)
        report = _StubDistributedRunner(_SPEC, cache, clock=late).run_worker()
        assert report.reclaimed == 1
        assert report.remaining == 0
        assert _leftovers(cache) == []

    def test_completed_units_are_never_reevaluated(self, tmp_path):
        cache = tmp_path / "cache"
        counts = []
        _StubDistributedRunner(_SPEC, cache, on_unit=lambda u, e: counts.append(u.label)).run_worker()
        again = _StubDistributedRunner(
            _SPEC, cache, on_unit=lambda u, e: counts.append(u.label)
        ).run_worker()
        assert again.evaluated == 0
        assert again.already_complete == len(counts) == len(expand_sweep(_SPEC).units)

    def test_run_is_a_worker_alias_and_cache_is_required(self, tmp_path):
        report = _StubDistributedRunner(_SPEC, tmp_path / "c").run()
        assert report.is_sweep_complete
        assert report.to_dict()["evaluated"] == report.evaluated
        with pytest.raises(ConfigurationError):
            DistributedSweepRunner(_SPEC, None)

    def test_process_executor_downgrades_to_threads(self, tmp_path):
        runner = _StubDistributedRunner(_SPEC, tmp_path / "c", executor="process", workers=2)
        assert runner._effective_executor() == "thread"
        assert runner.run_worker().remaining == 0

    def test_merge_reports_missing_units_in_grid_order(self, tmp_path):
        cache = tmp_path / "cache"
        _StubDistributedRunner(_SPEC, cache, shard="1/2").run_worker()
        merged = merge_sweep(_SPEC, ResultStore(cache))
        plan = expand_sweep(_SPEC)
        version = default_code_version()
        expected = tuple(
            u.label for u in plan.units if u.unit_hash(version) not in ResultStore(cache)
        )
        assert merged.missing == expected
        assert not merged.is_complete
        assert merged.completed_units + len(merged.missing) == merged.total_units

    def test_shard_progress_accounts_every_unit(self, tmp_path):
        cache = tmp_path / "cache"
        _StubDistributedRunner(_SPEC, cache, shard="2/3").run_worker()
        progress = shard_progress(_SPEC, ResultStore(cache), 3)
        assert sum(p.total_units for p in progress) == len(expand_sweep(_SPEC).units)
        by_index = {p.index: p for p in progress}
        assert by_index[2].is_complete
        assert all(p.completed_units == 0 for p in progress if p.index != 2)


# ---------------------------------------------------------------------------------
# Satellite 2: hypothesis — any spec, any partition, any order == serial
# ---------------------------------------------------------------------------------
_WORKLOAD_NAMES = ("429.mcf", "433.milc", "462.libquantum")
_CODEC_KINDS = ("raw", "delta", "unshuffle", "lossless")


@st.composite
def _sweep_schedules(draw):
    workloads = draw(
        st.lists(st.sampled_from(_WORKLOAD_NAMES), min_size=1, max_size=3, unique=True)
    )
    codecs = draw(st.lists(st.sampled_from(_CODEC_KINDS), min_size=1, max_size=4, unique=True))
    shard_count = draw(st.integers(min_value=1, max_value=8))
    order = draw(st.permutations(list(range(1, shard_count + 1))))
    stealer_at = draw(st.integers(min_value=0, max_value=len(order)))
    spec = sweep_spec_from_dict(
        {
            "name": "prop",
            "workloads": [{"name": name, "references": 2000} for name in workloads],
            "codecs": list(codecs),
            "scale": {"small_buffer": 500, "interval_length": 500},
        }
    )
    return spec, shard_count, order, stealer_at


class TestShardingProperties:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(schedule=_sweep_schedules())
    def test_any_partition_any_order_merges_to_the_serial_result(self, tmp_path, schedule):
        """Shards in any interleaving (+ a stealer anywhere) == unsharded run.

        Also asserts exactly-once evaluation across the whole schedule: the
        shards partition the grid and the store marks completion, so no two
        workers may ever evaluate the same unit.
        """
        spec, shard_count, order, stealer_at = schedule
        # tmp_path is per-test, not per-example: give every drawn schedule a
        # fresh cache so a re-drawn example never starts fully cached.
        cache = Path(tempfile.mkdtemp(dir=tmp_path))
        serial = _StubSerialRunner(spec, cache_dir=cache / "serial").run()
        evaluated = []
        workers = [(index, False) for index in order]
        workers.insert(stealer_at, (None, True))
        for shard_index, steal in workers:
            shard = (shard_index, shard_count) if shard_index is not None else None
            _StubDistributedRunner(
                spec, cache / "dist", shard=shard, steal=steal,
                on_unit=lambda u, e: evaluated.append(u.label),
            ).run_worker()
        merged = merge_sweep(spec, ResultStore(cache / "dist"))
        assert merged.is_complete
        assert merged.result.normalized().to_json() == serial.normalized().to_json()
        labels = [u.label for u in expand_sweep(spec).units]
        assert sorted(evaluated) == sorted(labels)  # exactly once, no duplicates
        assert _leftovers(cache / "dist") == []


# ---------------------------------------------------------------------------------
# Satellite 1: crash/resume fault injection over real worker processes
# ---------------------------------------------------------------------------------
class FaultingRunner:
    """Launches real ``repro sweep run`` workers with the fault hooks armed.

    ``exit_after=K`` arms :data:`FAULT_EXIT_ENV`, so the worker process
    dies with ``os._exit(FAULT_EXIT_CODE)`` right after storing its K-th
    unit — with that unit's lease still on disk, which is the crash the
    protocol must absorb.  Every worker appends to the same
    :data:`EVAL_LOG_ENV` spy file, giving the tests a cross-process,
    exactly-once evaluation count.
    """

    def __init__(self, spec_path: Path, cache_dir: Path, eval_log: Path) -> None:
        self.spec_path = Path(spec_path)
        self.cache_dir = Path(cache_dir)
        self.eval_log = Path(eval_log)

    def run(self, shard=None, steal=False, exit_after=None, jobs=1):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_ROOT + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env[EVAL_LOG_ENV] = str(self.eval_log)
        env.pop(FAULT_EXIT_ENV, None)
        if exit_after is not None:
            env[FAULT_EXIT_ENV] = str(exit_after)
        command = [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "sweep", "run", str(self.spec_path),
            "--cache-dir", str(self.cache_dir),
            "--jobs", str(jobs),
        ]
        if shard is not None:
            command += ["--shard", shard]
        if steal:
            command += ["--steal"]
        return subprocess.run(command, env=env, capture_output=True, text=True, timeout=300)

    def evaluations(self):
        """(owner, unit_hash) pairs the spy recorded, across all workers."""
        if not self.eval_log.exists():
            return []
        pairs = []
        for line in self.eval_log.read_text(encoding="utf-8").splitlines():
            owner, unit_hash, _label = line.split(" ", 2)
            pairs.append((owner, unit_hash))
        return pairs


@pytest.mark.slow
class TestFaultInjection:
    """The acceptance suite: kill workers mid-sweep, resume, demand identity."""

    def _serial_oracle_json(self, tmp_path) -> str:
        oracle = SweepRunner(_SPEC, cache_dir=tmp_path / "serial-oracle").run()
        return oracle.normalized().to_json()

    def _assert_completed_exactly_once(self, harness, cache_dir, tmp_path):
        merged = merge_sweep(_SPEC, ResultStore(cache_dir))
        assert merged.is_complete, f"missing after resume: {merged.missing}"
        assert merged.result.normalized().to_json() == self._serial_oracle_json(tmp_path)
        hashes = [unit_hash for _owner, unit_hash in harness.evaluations()]
        assert len(hashes) == len(expand_sweep(_SPEC).units)
        assert len(hashes) == len(set(hashes)), "a unit was evaluated twice"
        assert _leftovers(cache_dir) == []

    def test_kill_single_worker_then_resume_same_worker_count(self, tmp_path):
        cache = tmp_path / "cache"
        harness = FaultingRunner(_write_spec(tmp_path), cache, tmp_path / "evals.log")
        # --shard 1/1 is "one distributed worker owning the whole grid" —
        # the plain (non-distributed) run path has no fault hooks.
        crashed = harness.run(shard="1/1", exit_after=2)
        assert crashed.returncode == FAULT_EXIT_CODE, crashed.stderr
        assert ResultStore(cache).size() == 2
        # The crash window left leases behind: the just-stored unit's (the
        # exit fires before its release) plus any units the worker had
        # claimed ahead within the group...
        assert len(list(cache.glob("*.lease"))) >= 1
        resumed = harness.run(shard="1/1")
        assert resumed.returncode == 0, resumed.stderr
        # ...and the resumed worker (new pid, same host) reclaimed it
        # immediately via the dead-pid fast path — no TTL wait.
        self._assert_completed_exactly_once(harness, cache, tmp_path)

    def test_kill_one_shard_then_resume_with_different_workers_stealing(self, tmp_path):
        cache = tmp_path / "cache"
        harness = FaultingRunner(_write_spec(tmp_path), cache, tmp_path / "evals.log")
        crashed = harness.run(shard="1/2", exit_after=1)
        assert crashed.returncode == FAULT_EXIT_CODE, crashed.stderr
        healthy = harness.run(shard="2/2")
        assert healthy.returncode == 0, healthy.stderr
        # Resume with a *different* worker layout: three shards, stealing on,
        # so whoever owns the crashed unit now — or any stealer — finishes it.
        for index in (1, 2, 3):
            resumed = harness.run(shard=f"{index}/3", steal=True)
            assert resumed.returncode == 0, resumed.stderr
        self._assert_completed_exactly_once(harness, cache, tmp_path)

    def test_kill_at_every_position_of_a_serial_worker(self, tmp_path):
        """The crash point must not matter: kill after unit K for every K."""
        cache = tmp_path / "cache"
        harness = FaultingRunner(_write_spec(tmp_path), cache, tmp_path / "evals.log")
        total = len(expand_sweep(_SPEC).units)
        for position in range(1, total):
            outcome = harness.run(shard="1/1", exit_after=position)
            if outcome.returncode == 0:
                break  # sweep finished before the hook could fire
            assert outcome.returncode == FAULT_EXIT_CODE, outcome.stderr
        final = harness.run(shard="1/1")
        assert final.returncode == 0, final.stderr
        self._assert_completed_exactly_once(harness, cache, tmp_path)


# ---------------------------------------------------------------------------------
# CLI surface (in-process; the subprocess paths are covered above)
# ---------------------------------------------------------------------------------
class TestDistributedCli:
    def test_merge_reports_missing_and_respects_allow_partial(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        cache = tmp_path / "cache"
        assert cli_main(["sweep", "merge", str(spec), "--cache-dir", str(cache)]) == 1
        captured = capsys.readouterr()
        assert "missing" in captured.err and "--allow-partial" in captured.err
        assert (
            cli_main(
                ["sweep", "merge", str(spec), "--cache-dir", str(cache), "--allow-partial",
                 "--format", "csv"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out.startswith("workload,filter,codec")

    def test_status_shards_shows_partition_and_leases(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        cache = tmp_path / "cache"
        _StubDistributedRunner(_SPEC, cache, shard="1/2").run_worker()
        LeaseManager(cache, owner="busy").acquire(_HASH.replace("a", "c"))
        assert cli_main(["sweep", "status", str(spec), "--cache-dir", str(cache),
                         "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "shard 1/2" in captured.out and "shard 2/2" in captured.out
        assert "leases           : 1 active, 0 stale" in captured.out

    def test_run_rejects_no_cache_with_shard(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        assert cli_main(["sweep", "run", str(spec), "--shard", "1/2", "--no-cache"]) == 2
        assert "--no-cache is incompatible" in capsys.readouterr().err
