"""Tests of sweep execution: caching, resume, parallelism, harness parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.harness import EvaluationHarness
from repro.errors import ConfigurationError
from repro.experiments import ResultStore, SweepRunner, run_sweep, sweep_spec_from_dict
from repro.experiments.plan import expand_sweep

_SPEC = sweep_spec_from_dict(
    {
        "name": "grid",
        "workloads": [
            {"name": "429.mcf", "references": 6000},
            {"name": "462.libquantum", "references": 6000},
        ],
        "filters": [
            {"label": "l1-paper"},
            {"label": "l1-8KB", "capacity_bytes": 8192, "associativity": 2},
        ],
        "codecs": [{"kind": "lossless"}, {"kind": "lossy"}],
        "scale": {"small_buffer": 1000, "interval_length": 1000},
    }
)


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = "0" * 64
        assert store.get(key) is None
        store.put(key, {"bits_per_address": 2.5})
        assert store.get(key) == {"bits_per_address": 2.5}
        assert key in store
        assert store.size() == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "1" * 64
        store.put(key, {"x": 1})
        (tmp_path / f"{key}.json").write_text("{half written")
        assert store.get(key) is None

    def test_malformed_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError, match="malformed unit hash"):
            store.get("../escape")

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("2" * 64, {})
        store.put("3" * 64, {})
        assert store.clear() == 2
        assert store.size() == 0


class TestSweepRunner:
    def test_first_run_computes_second_run_hits_cache(self, tmp_path):
        runner = SweepRunner(_SPEC, cache_dir=tmp_path / "cache")
        first = runner.run()
        assert len(first.rows) == 8
        assert first.cached_count() == 0
        assert all(row.bits_per_address > 0 for row in first.rows)
        second = runner.run()
        assert second.cached_count() == 8
        assert [r.bits_per_address for r in second.rows] == [
            r.bits_per_address for r in first.rows
        ]

    def test_rows_come_back_in_grid_order(self, tmp_path):
        result = run_sweep(_SPEC, cache_dir=tmp_path / "cache")
        labels = [(r.workload, r.filter, r.codec) for r in result.rows]
        expected = [
            (u.workload.name, u.filter.name, u.codec.name) for u in expand_sweep(_SPEC).units
        ]
        assert labels == expected

    def test_parallel_run_matches_serial(self, tmp_path):
        def measured(result):
            # Everything except wall-clock time must be scheduling-invariant.
            return [
                {k: v for k, v in row.to_dict().items() if k != "seconds"}
                for row in result.rows
            ]

        serial = run_sweep(_SPEC)
        parallel = SweepRunner(_SPEC, cache_dir=None, workers=4).run()
        assert measured(serial) == measured(parallel)

    def test_resume_recomputes_only_missing_cells(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        runner = SweepRunner(_SPEC, cache_dir=cache)
        runner.run()
        # Drop one cached cell, then count how many cells are re-evaluated.
        victim = expand_sweep(_SPEC).units[3]
        (cache / f"{victim.unit_hash(runner.code_version)}.json").unlink()
        evaluated = []
        original = SweepRunner._evaluate_unit

        def counting(self, unit, addresses):
            evaluated.append(unit.label)
            return original(self, unit, addresses)

        monkeypatch.setattr(SweepRunner, "_evaluate_unit", counting)
        resumed = SweepRunner(_SPEC, cache_dir=cache).run()
        assert evaluated == [victim.label]
        assert resumed.cached_count() == 7

    def test_fully_cached_groups_skip_trace_generation(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        SweepRunner(_SPEC, cache_dir=cache).run()

        def exploding(self, workload, filter_spec):
            raise AssertionError("cached sweep must not regenerate traces")

        monkeypatch.setattr(SweepRunner, "_filtered_trace", exploding)
        result = SweepRunner(_SPEC, cache_dir=cache).run()
        assert result.cached_count() == 8

    def test_schema_incomplete_cache_entry_reads_as_miss(self, tmp_path):
        cache = tmp_path / "cache"
        runner = SweepRunner(_SPEC, cache_dir=cache)
        runner.run()
        # Hand-edit one entry: still valid JSON, but missing a required key.
        victim = expand_sweep(_SPEC).units[0]
        path = cache / f"{victim.unit_hash(runner.code_version)}.json"
        entry = json.loads(path.read_text())
        del entry["addresses"]
        path.write_text(json.dumps(entry))
        resumed = SweepRunner(_SPEC, cache_dir=cache).run()
        assert resumed.cached_count() == 7  # recomputed, not crashed
        assert all(row.addresses > 0 for row in resumed.rows)

    def test_trace_provider_preempts_generation(self, monkeypatch):
        baseline = run_sweep(_SPEC)
        # Capture the traces the runner would generate, keyed per group.
        plain = SweepRunner(_SPEC)
        traces = {
            (workload.name, filter_spec.name): plain._filtered_trace(workload, filter_spec)
            for (workload, filter_spec), _units in plain.plan.groups()
        }
        provided = []

        def provider(workload, filter_spec):
            provided.append((workload.name, filter_spec.name))
            return traces[(workload.name, filter_spec.name)]

        # With the provider covering every group, the generation path must
        # never run.
        import repro.traces.filter as filter_module

        def exploding(*args, **kwargs):
            raise AssertionError("provider-covered sweep must not generate traces")

        monkeypatch.setattr(filter_module, "filtered_spec_like_trace", exploding)
        result = SweepRunner(_SPEC, trace_provider=provider).run()
        assert len(provided) == len(traces)
        assert [r.bits_per_address for r in result.rows] == [
            r.bits_per_address for r in baseline.rows
        ]

    def test_code_version_invalidates_cache(self, tmp_path):
        cache = tmp_path / "cache"
        SweepRunner(_SPEC, cache_dir=cache, code_version="v1").run()
        rerun = SweepRunner(_SPEC, cache_dir=cache, code_version="v2").run()
        assert rerun.cached_count() == 0

    def test_no_cache_dir_disables_caching(self):
        runner = SweepRunner(_SPEC, cache_dir=None)
        assert runner.run().cached_count() == 0
        assert runner.run().cached_count() == 0

    def test_status_tracks_pending_cells(self, tmp_path):
        cache = tmp_path / "cache"
        runner = SweepRunner(_SPEC, cache_dir=cache)
        before = runner.status()
        assert (before.total_units, before.completed_units) == (8, 0)
        assert not before.is_complete
        runner.run()
        after = runner.status()
        assert after.is_complete
        assert after.pending == ()

    def test_different_filters_change_the_trace(self, tmp_path):
        result = run_sweep(_SPEC)
        by_cell = {(r.workload, r.filter, r.codec): r for r in result.rows}
        paper = by_cell[("429.mcf", "l1-paper", "lossless")]
        small = by_cell[("429.mcf", "l1-8KB", "lossless")]
        assert paper.addresses != small.addresses

    def test_fidelity_sweep_records_miss_ratio_error(self, tmp_path):
        spec = sweep_spec_from_dict(
            {
                "name": "fid",
                "workloads": [{"name": "429.mcf", "references": 6000}],
                "codecs": ["lossless", "lossy"],
                "scale": {"small_buffer": 1000, "interval_length": 1000, "set_counts": [64]},
                "fidelity": True,
            }
        )
        result = run_sweep(spec)
        by_codec = {r.codec: r for r in result.rows}
        assert "max_miss_ratio_error" in by_codec["lossy"].extra
        assert by_codec["lossy"].extra["max_miss_ratio_error"] >= 0.0
        assert by_codec["lossless"].extra == {}


class TestHarnessParity:
    """A spec-driven sweep and the hand-driven harness agree exactly."""

    @pytest.fixture(scope="class")
    def harness(self):
        from repro.experiments.spec import EvaluationScale

        scale = EvaluationScale(
            references_per_workload=6000, small_buffer=1000, big_buffer=4000, interval_length=1000
        )
        # 453.povray filters down to a near-empty trace: the comparison
        # methods skip it via their minimum-length guards, and sweep_spec
        # must drop the same rows.
        return EvaluationHarness(scale, workloads=("429.mcf", "462.libquantum", "453.povray"))

    def test_table1_grid_matches_exactly(self, tmp_path, harness):
        sweep = SweepRunner(harness.sweep_spec("table1"), cache_dir=tmp_path / "c").run()
        hand = harness.lossless_comparison()
        (grid,) = sweep.tables().values()
        assert set(grid) == set(hand.rows), "same rows (length guard applied)"
        for workload, row in hand.rows.items():
            assert set(grid[workload]) == set(row), "same columns"
            for column, value in row.items():
                assert grid[workload][column] == pytest.approx(value, rel=0, abs=0)

    def test_table3_grid_matches_exactly(self, tmp_path, harness):
        sweep = SweepRunner(harness.sweep_spec("table3"), cache_dir=tmp_path / "c3").run()
        hand = harness.lossy_comparison()
        (grid,) = sweep.tables().values()
        assert set(grid) == set(hand.rows), "same rows (2x-interval guard applied)"
        for workload, row in hand.rows.items():
            for column, value in row.items():
                assert grid[workload][column] == pytest.approx(value, rel=0, abs=0)

    def test_length_guard_can_be_disabled(self, harness):
        guarded = harness.sweep_spec("table3")
        unguarded = harness.sweep_spec("table3", apply_length_guard=False)
        guarded_names = {w.name for w in guarded.workloads}
        assert {w.name for w in unguarded.workloads} == set(harness.workloads)
        assert "453.povray" not in guarded_names
        assert guarded_names < set(harness.workloads)

    def test_unknown_table_rejected(self, harness):
        with pytest.raises(ConfigurationError, match="unknown harness table"):
            harness.sweep_spec("table9")


class TestExports:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(_SPEC)

    def test_text_renders_one_table_per_filter(self, result):
        text = result.to_text()
        assert "Sweep grid [l1-paper]: bits per address" in text
        assert "Sweep grid [l1-8KB]: bits per address" in text
        assert "arith. mean" in text

    def test_markdown_table_shape(self, result):
        markdown = result.to_markdown()
        assert "| workload | lossless | lossy |" in markdown
        assert "| 429.mcf |" in markdown
        assert "*arith. mean*" in markdown

    def test_csv_has_one_row_per_cell(self, result):
        lines = result.to_csv().splitlines()
        assert lines[0].startswith("workload,filter,codec,")
        assert len(lines) == 1 + len(result.rows)

    def test_json_roundtrips(self, result):
        data = json.loads(result.to_json())
        assert data["name"] == "grid"
        assert len(data["rows"]) == len(result.rows)
        assert {row["codec"] for row in data["rows"]} == {"lossless", "lossy"}

    def test_unknown_format_rejected(self, result):
        with pytest.raises(ConfigurationError, match="unknown report format"):
            result.render("pdf")

    def test_csv_bpa_matches_rows(self, result):
        lines = result.to_csv().splitlines()[1:]
        for line, row in zip(lines, result.rows):
            assert line.split(",")[5] == f"{row.bits_per_address:.4f}"


class TestEvaluateCodecKinds:
    def test_every_kind_measures_positive_payload(self):
        from repro.experiments import CODEC_KINDS, CodecSpec, evaluate_codec
        from repro.experiments.spec import EvaluationScale

        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 4096, size=5000, dtype=np.uint64)
        scale = EvaluationScale(small_buffer=1000, interval_length=1000)
        for kind in CODEC_KINDS:
            measured = evaluate_codec(CodecSpec(kind=kind), addresses, scale)
            assert measured["payload_bytes"] > 0, kind
            assert measured["bits_per_address"] == pytest.approx(
                8.0 * measured["payload_bytes"] / addresses.size
            )

    def test_empty_trace_measures_zero(self):
        from repro.experiments import CodecSpec, evaluate_codec

        measured = evaluate_codec(CodecSpec(kind="raw"), np.empty(0, dtype=np.uint64))
        assert measured == {"payload_bytes": 0, "bits_per_address": 0.0}
