"""Tests of the declarative sweep-spec layer (parsing, defaults, validation)."""

from __future__ import annotations

import sys

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plan import expand_sweep
from repro.experiments.spec import (
    CodecSpec,
    EvaluationScale,
    FilterSpec,
    SweepSpec,
    WorkloadSpec,
    load_sweep_spec,
    loads_sweep_spec,
    sweep_spec_from_dict,
)

_JSON_SPEC = """
{
  "name": "json-sweep",
  "workloads": [{"name": "429.mcf"}, {"name": "433.milc", "references": 9000, "seed": 3}],
  "filters": [{"label": "small", "capacity_bytes": 16384, "associativity": 2}],
  "codecs": ["raw", {"kind": "lossless", "backend": "zlib"}],
  "scale": {"references_per_workload": 7000, "small_buffer": 2000},
  "fidelity": true
}
"""

_TOML_SPEC = """
name = "toml-sweep"

[[workloads]]
name = "429.mcf"

[[codecs]]
kind = "lossy"
threshold = 0.2

[scale]
interval_length = 2500
"""


class TestSpecParsing:
    def test_json_spec_parses_fully(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        assert spec.name == "json-sweep"
        assert [w.name for w in spec.workloads] == ["429.mcf", "433.milc"]
        assert spec.workloads[1].references == 9000
        assert spec.filters[0].name == "small"
        assert spec.codecs[0].kind == "raw"
        assert spec.codecs[1].backend == "zlib"
        assert spec.scale.small_buffer == 2000
        assert spec.fidelity is True

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib needs Python 3.11")
    def test_toml_spec_parses(self):
        spec = loads_sweep_spec(_TOML_SPEC)
        assert spec.name == "toml-sweep"
        assert spec.codecs[0].threshold == 0.2
        assert spec.scale.interval_length == 2500
        # No filters section: the paper's L1 geometry is implied.
        assert spec.filters == (FilterSpec(),)

    def test_load_from_file_defaults_name_to_stem(self, tmp_path):
        path = tmp_path / "nightly.json"
        path.write_text('{"workloads": ["429.mcf"], "codecs": ["raw"]}')
        spec = load_sweep_spec(path)
        assert spec.name == "nightly"

    def test_missing_file_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_sweep_spec(tmp_path / "absent.json")

    def test_invalid_json_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            loads_sweep_spec("{not json", format="json")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep spec format"):
            loads_sweep_spec("{}", format="yaml")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep keys"):
            sweep_spec_from_dict(
                {"name": "s", "workloads": ["a"], "codecs": ["raw"], "surprise": 1}
            )
        with pytest.raises(ConfigurationError, match="unknown codec keys"):
            sweep_spec_from_dict(
                {"name": "s", "workloads": ["a"], "codecs": [{"kind": "raw", "level": 9}]}
            )

    def test_roundtrip_through_dict(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        assert sweep_spec_from_dict(spec.to_dict()) == spec


class TestSpecValidation:
    def test_empty_grid_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one workload"):
            SweepSpec(name="s", workloads=(), codecs=(CodecSpec(kind="raw"),))
        with pytest.raises(ConfigurationError, match="at least one codec"):
            SweepSpec(name="s", workloads=(WorkloadSpec("a"),), codecs=())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate codec labels"):
            SweepSpec(
                name="s",
                workloads=(WorkloadSpec("a"),),
                codecs=(CodecSpec(kind="raw"), CodecSpec(kind="raw")),
            )

    def test_bad_codec_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown codec kind"):
            CodecSpec(kind="middle-out")

    def test_bad_backend_rejected_at_load_time(self):
        with pytest.raises(ConfigurationError, match="unknown compression backend"):
            CodecSpec(kind="raw", backend="bzip99")

    def test_bad_filter_geometry_rejected_at_load_time(self):
        with pytest.raises(ConfigurationError):
            FilterSpec(capacity_bytes=1000, associativity=3)  # not a power-of-two set count

    def test_labels_derive_from_parameters(self):
        assert FilterSpec().name == "l1-32KB-4w"
        assert CodecSpec(kind="lossless").name == "lossless"
        assert CodecSpec(kind="lossless", backend="zlib").name == "lossless@zlib"
        assert CodecSpec(kind="lossless", label="bs").name == "bs"


class TestPlanExpansion:
    def test_grid_order_and_resolution(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        plan = expand_sweep(spec)
        assert len(plan.units) == spec.num_units == 4
        # Workload-major order, codecs innermost.
        assert [u.label for u in plan.units] == [
            "429.mcf/small/raw",
            "429.mcf/small/lossless@zlib",
            "433.milc/small/raw",
            "433.milc/small/lossless@zlib",
        ]
        # Scale defaults resolve into the units; explicit values survive.
        assert plan.units[0].workload.references == 7000
        assert plan.units[2].workload.references == 9000
        assert plan.units[2].workload.seed == 3

    def test_fidelity_only_marks_lossy_cells(self):
        spec = sweep_spec_from_dict(
            {"name": "s", "workloads": ["a"], "codecs": ["raw", "lossy"], "fidelity": True}
        )
        plan = expand_sweep(spec)
        assert [u.fidelity for u in plan.units] == [False, True]

    def test_groups_share_workload_and_filter(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        groups = expand_sweep(spec).groups()
        assert len(groups) == 2  # 2 workloads x 1 filter
        for (workload, _filter), units in groups:
            assert all(u.workload == workload for u in units)

    def test_unit_hash_is_stable_and_parameter_sensitive(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        # units[1] is the lossless cell, which consumes the bytesort buffer.
        unit = expand_sweep(spec).units[1]
        assert unit.unit_hash("v1") == unit.unit_hash("v1")
        assert unit.unit_hash("v1") != unit.unit_hash("v2")
        rescaled = sweep_spec_from_dict(
            {**spec.to_dict(), "scale": {**spec.scale.to_dict(), "small_buffer": 999}}
        )
        assert expand_sweep(rescaled).units[1].unit_hash("v1") != unit.unit_hash("v1")

    def test_unit_hash_ignores_cosmetics_and_unused_knobs(self):
        spec = loads_sweep_spec(_JSON_SPEC, format="json")
        units = expand_sweep(spec).units
        raw_unit = units[0]
        # A raw cell never touches the bytesort buffer: rescaling it must
        # not invalidate the cached result.
        rescaled = sweep_spec_from_dict(
            {**spec.to_dict(), "scale": {**spec.scale.to_dict(), "small_buffer": 999}}
        )
        assert expand_sweep(rescaled).units[0].unit_hash("v") == raw_unit.unit_hash("v")
        # Renaming a column is cosmetic.
        relabelled = sweep_spec_from_dict(
            {**spec.to_dict(), "codecs": [{"kind": "raw", "label": "bzip2-alone"},
                                          {"kind": "lossless", "backend": "zlib"}]}
        )
        assert expand_sweep(relabelled).units[0].unit_hash("v") == raw_unit.unit_hash("v")
        # Alias spellings of the same back-end describe the same computation.
        aliased = sweep_spec_from_dict(
            {**spec.to_dict(), "codecs": [{"kind": "raw"}, {"kind": "lossless", "backend": "gz"}]}
        )
        assert (
            expand_sweep(aliased).units[1].unit_hash("v")
            == expand_sweep(spec).units[1].unit_hash("v")  # backend "zlib"
        )

    def test_inherited_cells_hash_identically_across_sweeps(self):
        # Two sweeps that resolve to the same cell share cache entries.
        base = {"name": "a", "workloads": [{"name": "w", "references": 5000}], "codecs": ["raw"]}
        explicit = sweep_spec_from_dict(base)
        inherited = sweep_spec_from_dict(
            {"name": "b", "workloads": ["w"], "codecs": ["raw"],
             "scale": {"references_per_workload": 5000}}
        )
        assert (
            expand_sweep(explicit).units[0].unit_hash("v")
            == expand_sweep(inherited).units[0].unit_hash("v")
        )


class TestEvaluationScale:
    def test_dict_roundtrip(self):
        scale = EvaluationScale(references_per_workload=123, set_counts=(8, 16))
        assert EvaluationScale.from_dict(scale.to_dict()) == scale

    def test_unknown_scale_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scale keys"):
            EvaluationScale.from_dict({"reference_count": 5})

    def test_reexported_from_analysis_harness(self):
        # The harness re-exports the same class, so old imports keep working.
        from repro.analysis.harness import EvaluationScale as HarnessScale

        assert HarnessScale is EvaluationScale
