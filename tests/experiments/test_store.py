"""ResultStore integrity: entry digests, quarantine, and durable commits.

The sweep store is the coordination substrate of distributed runs, so a
corrupt entry must never be *served* — it is quarantined (renamed aside,
counted) and the unit recomputed.  The torn-write test doubles as the
motivation for ``REPRO_DURABLE_FSYNC``: without the digest an entry whose
tail was never written would parse as truncated garbage or, worse, as a
valid-looking document.
"""

from __future__ import annotations

import json

import pytest

from repro.core.integrity import ENTRY_DIGEST_KEY
from repro.experiments.store import (
    DURABLE_FSYNC_ENV,
    ResultStore,
    durable_fsync_enabled,
)
from repro.testing.faults import torn_write

KEY = "ab" * 32


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


class TestEntryDigests:
    def test_roundtrip_strips_the_digest_key(self, store):
        store.put(KEY, {"bits_per_address": 1.5})
        entry = store.get(KEY)
        assert entry == {"bits_per_address": 1.5}
        assert ENTRY_DIGEST_KEY not in entry

    def test_entries_embed_a_digest_on_disk(self, store):
        store.put(KEY, {"metric": 3})
        raw = json.loads((store.directory / f"{KEY}.json").read_text())
        assert ENTRY_DIGEST_KEY in raw

    def test_legacy_digestless_entries_are_served(self, store):
        store.directory.mkdir(parents=True)
        (store.directory / f"{KEY}.json").write_text(json.dumps({"old": True}))
        assert store.get(KEY) == {"old": True}
        assert store.integrity_evictions == 0


class TestQuarantine:
    def _corrupt(self, store):
        path = store.directory / f"{KEY}.json"
        path.write_text(path.read_text().replace("1.5", "2.5"))

    def test_tampered_entry_is_quarantined_and_misses(self, store):
        store.put(KEY, {"bits_per_address": 1.5})
        self._corrupt(store)
        assert store.get(KEY) is None
        assert store.integrity_evictions == 1
        assert KEY not in store
        assert store.keys() == []

    def test_quarantined_bytes_are_preserved_for_post_mortem(self, store):
        store.put(KEY, {"bits_per_address": 1.5})
        self._corrupt(store)
        tampered = (store.directory / f"{KEY}.json").read_text()
        store.get(KEY)
        files = store.quarantine_files()
        assert [p.name for p in files] == [f"{KEY}.json.quarantine"]
        assert files[0].read_text() == tampered

    def test_unparsable_entry_is_quarantined(self, store):
        store.directory.mkdir(parents=True)
        (store.directory / f"{KEY}.json").write_text("{broken")
        assert store.get(KEY) is None
        assert store.integrity_evictions == 1

    def test_quarantine_then_put_heals_the_entry(self, store):
        store.put(KEY, {"metric": 1})
        self_path = store.directory / f"{KEY}.json"
        self_path.write_text("not json")
        assert store.get(KEY) is None
        store.put(KEY, {"metric": 1})
        assert store.get(KEY) == {"metric": 1}
        assert store.integrity_evictions == 1

    def test_contains_goes_through_verification(self, store):
        """``in`` must not claim a corrupt entry is a completed unit."""
        store.put(KEY, {"metric": 1})
        assert KEY in store
        self._corrupt_any(store)
        assert KEY not in store

    def _corrupt_any(self, store):
        path = store.directory / f"{KEY}.json"
        path.write_text(path.read_text().replace(":", ";", 1))


class TestTornWritesAndFsync:
    def test_torn_write_is_detected_thanks_to_the_digest(self, store):
        """A zero-filled tail (the rename survived, the data did not).

        This is the exact crash signature ``REPRO_DURABLE_FSYNC`` prevents;
        the digest guarantees that *if* it happens, it is detected and the
        unit re-run instead of a half-written entry being trusted.
        """
        store.put(KEY, {"bits_per_address": 1.23456})
        path = store.directory / f"{KEY}.json"
        torn_write(path, path.stat().st_size // 2)
        assert store.get(KEY) is None
        assert store.integrity_evictions == 1

    def test_fsync_knob_parses_common_truthy_values(self, monkeypatch):
        for value, expected in (
            ("1", True),
            ("true", True),
            (" YES ", True),
            ("on", True),
            ("", False),
            ("0", False),
            ("off", False),
        ):
            monkeypatch.setenv(DURABLE_FSYNC_ENV, value)
            assert durable_fsync_enabled() is expected, value
        monkeypatch.delenv(DURABLE_FSYNC_ENV)
        assert durable_fsync_enabled() is False

    def test_put_under_durable_fsync_roundtrips(self, store, monkeypatch):
        monkeypatch.setenv(DURABLE_FSYNC_ENV, "1")
        store.put(KEY, {"durable": True})
        assert store.get(KEY) == {"durable": True}
        assert store.tmp_files() == []
