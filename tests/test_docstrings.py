"""Enforcement of the documentation contract on the public API surface.

Two rules, both enforced here so they cannot silently regress:

* every public symbol — everything exported from ``repro.__all__`` and
  from each subpackage's ``__all__`` — carries a docstring (classes and
  functions; constants are documented in their module docstring);
* the package carries runnable usage examples: the doctest corpus (run in
  CI via ``pytest --doctest-modules src/repro``) must not shrink below the
  floor asserted here, and every headline entry point keeps its example.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro

_PUBLIC_MODULES = (
    "repro",
    "repro.core",
    "repro.traces",
    "repro.cache",
    "repro.predictors",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
    "repro.bench",
    "repro.service",
    "repro.cli",
    "repro.errors",
    "repro.testing",
)

#: Headline entry points that must keep a runnable Example in their docstring.
_MUST_HAVE_EXAMPLE = (
    "repro.core.bytesort.bytesort_transform",
    "repro.core.lossless.lossless_compress",
    "repro.core.lossy.lossy_compress",
    "repro.core.atc.compress_trace",
    "repro.core.backend.get_backend",
    "repro.core.stream.rechunk",
    "repro.traces.trace.as_address_array",
    "repro.traces.spec_like.get_workload",
    "repro.traces.filter.filtered_spec_like_trace",
    "repro.cache.cache.CacheConfig.from_capacity",
    "repro.cache.sweep.miss_ratio_sweep",
    "repro.analysis.metrics.bits_per_address",
    "repro.analysis.reporting.render_table",
    "repro.baselines.delta.delta_encode",
    "repro.experiments.spec.CodecSpec",
    "repro.experiments.runner",   # module example: run + cache + re-run
    "repro.experiments.store",    # module example: miss -> put -> hit
)


def _public_symbols():
    for module_name in _PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            yield module_name, name, getattr(module, name)


class TestDocstringPresence:
    @pytest.mark.parametrize(
        "module_name, name, obj",
        [pytest.param(m, n, o, id=f"{m}.{n}") for m, n, o in _public_symbols()],
    )
    def test_every_public_symbol_has_a_docstring(self, module_name, name, obj):
        if not (inspect.isclass(obj) or inspect.isroutine(obj)):
            # Constants (tuples, ints, frozen instances) document themselves
            # in the module docstring; the module must have one.
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} needs a module docstring for {name}"
            return
        assert inspect.getdoc(obj), f"{module_name}.{name} has no docstring"

    def test_every_module_has_a_docstring(self):
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} has no module docstring"


class TestDoctestCorpus:
    def _count_examples(self, module) -> int:
        finder = doctest.DocTestFinder(exclude_empty=True)
        return sum(len(test.examples) for test in finder.find(module))

    @staticmethod
    def _resolve(path: str):
        parts = path.split(".")
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            for part in parts[split:]:
                obj = getattr(obj, part)
            return obj
        raise AssertionError(f"cannot resolve {path}")

    def test_headline_entry_points_keep_their_examples(self):
        for path in _MUST_HAVE_EXAMPLE:
            doc = inspect.getdoc(self._resolve(path)) or ""
            assert ">>>" in doc, f"{path} lost its runnable docstring example"

    def test_doctest_corpus_does_not_shrink(self):
        total = 0
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            total += self._count_examples(importlib.import_module(info.name))
        total += self._count_examples(repro)
        # CI runs the corpus via `pytest --doctest-modules src/repro`; this
        # floor keeps the corpus from being quietly deleted.
        assert total >= 60, f"doctest corpus shrank to {total} examples"

    def test_a_representative_doctest_actually_runs(self):
        from repro.core import bytesort

        failures, _ = doctest.testmod(bytesort, verbose=False)
        assert failures == 0
