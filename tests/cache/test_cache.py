"""Tests of the set-associative cache simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_capacity_computation(self):
        config = CacheConfig(num_sets=128, associativity=4, block_bytes=64)
        assert config.capacity_bytes == 32 * 1024
        assert config.capacity_blocks == 512

    def test_from_capacity(self):
        config = CacheConfig.from_capacity(32 * 1024, associativity=4)
        assert config.num_sets == 128

    def test_from_capacity_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig.from_capacity(1000, associativity=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sets": 0, "associativity": 1},
            {"num_sets": 3, "associativity": 1},
            {"num_sets": 4, "associativity": 0},
            {"num_sets": 4, "associativity": 1, "block_bytes": 33},
            {"num_sets": 4, "associativity": 1, "policy": "plru"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            CacheConfig(**kwargs)


class TestCacheStats:
    def test_ratios(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_ratio == pytest.approx(0.7)
        assert stats.miss_ratio == pytest.approx(0.3)

    def test_empty_ratios(self):
        assert CacheStats().miss_ratio == 0.0
        assert CacheStats().hit_ratio == 0.0

    def test_merge(self):
        merged = CacheStats(10, 7, 3, 1).merge(CacheStats(20, 10, 10, 5))
        assert merged.accesses == 30
        assert merged.misses == 13
        assert merged.evictions == 6


class TestSetAssociativeCacheBasics:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2))
        assert cache.access_block(100) is False
        assert cache.access_block(100) is True
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_byte_address_access_maps_to_block(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2, block_bytes=64))
        cache.access(0)
        assert cache.access(63) is True  # same 64-byte block
        assert cache.access(64) is False  # next block

    def test_capacity_eviction_lru(self):
        # Direct-mapped set of 1 way: the second distinct block evicts the first.
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=1))
        cache.access_block(0)
        cache.access_block(1)
        assert cache.access_block(0) is False
        assert cache.stats.evictions >= 1

    def test_lru_evicts_least_recently_used(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=2, policy="lru"))
        cache.access_block(0)
        cache.access_block(1)
        cache.access_block(0)       # 1 is now LRU
        cache.access_block(2)       # evicts 1
        assert cache.access_block(0) is True
        assert cache.access_block(1) is False

    def test_fifo_ignores_reuse(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=2, policy="fifo"))
        cache.access_block(0)
        cache.access_block(1)
        cache.access_block(0)       # reuse must NOT refresh FIFO order
        cache.access_block(2)       # evicts 0 (the oldest fill)
        assert cache.access_block(1) is True
        assert cache.access_block(0) is False

    def test_random_policy_keeps_capacity_bounded(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=2, associativity=2, policy="random"))
        for block in range(100):
            cache.access_block(block)
        assert len(cache.resident_blocks()) <= 4

    def test_set_mapping_uses_low_bits(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=1))
        cache.access_block(0)
        cache.access_block(4)  # same set (block % 4 == 0), evicts block 0
        assert cache.access_block(0) is False
        cache.access_block(1)  # different set, no interference
        assert cache.access_block(1) is True

    def test_contains_and_resident_blocks(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2))
        cache.access_block(10)
        assert cache.contains_block(10)
        assert 10 in cache.resident_blocks()

    def test_flush_and_reset(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2))
        cache.access_block(1)
        cache.flush()
        assert not cache.contains_block(1)
        assert cache.stats.accesses == 1
        cache.reset()
        assert cache.stats.accesses == 0


class TestCacheTraceHelpers:
    def test_access_trace_counts(self, working_set_addresses):
        cache = SetAssociativeCache(CacheConfig(num_sets=64, associativity=4))
        stats = cache.access_trace(working_set_addresses[:5_000].tolist())
        assert stats.accesses == 5_000
        assert stats.hits + stats.misses == 5_000

    def test_miss_stream_matches_miss_count(self, working_set_addresses):
        cache = SetAssociativeCache(CacheConfig(num_sets=64, associativity=4))
        misses = cache.miss_stream(working_set_addresses[:5_000].tolist())
        assert misses.size == cache.stats.misses

    def test_fully_resident_working_set_has_cold_misses_only(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=64, associativity=4))
        blocks = np.tile(np.arange(100, dtype=np.uint64), 50)
        cache.access_trace(blocks.tolist())
        assert cache.stats.misses == 100  # only compulsory misses

    def test_miss_ratio_of_random_access_matches_theory(self):
        """Random access over N blocks with a C-block cache: miss ~ 1 - C/N."""
        rng = np.random.default_rng(0)
        num_blocks = 4_096
        cache_blocks = 1_024
        cache = SetAssociativeCache(CacheConfig(num_sets=256, associativity=4))
        blocks = rng.integers(0, num_blocks, size=60_000, dtype=np.uint64)
        stats = cache.access_trace(blocks.tolist())
        expected = 1.0 - cache_blocks / num_blocks
        assert stats.miss_ratio == pytest.approx(expected, abs=0.05)


def _serial_hits(cache: SetAssociativeCache, blocks: np.ndarray) -> np.ndarray:
    """Reference implementation: one access_block call per element."""
    return np.array([cache.access_block(int(block)) for block in blocks], dtype=bool)


class TestAccessBatchEquivalence:
    """The vectorised batch paths must be bit-identical to the serial loop."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("associativity", [1, 2, 4])
    def test_hits_stats_and_state_match_serial(self, policy, associativity):
        rng = np.random.default_rng(2009)
        config = CacheConfig(num_sets=16, associativity=associativity, policy=policy)
        batched = SetAssociativeCache(config, seed=5)
        serial = SetAssociativeCache(config, seed=5)
        for _ in range(3):
            blocks = rng.integers(0, 150, size=800, dtype=np.uint64)
            assert np.array_equal(batched.access_batch(blocks), _serial_hits(serial, blocks))
            assert batched.stats == serial.stats
            assert batched._sets == serial._sets
            assert batched._clock == serial._clock

    @pytest.mark.parametrize("associativity", [1, 4])
    def test_batch_interoperates_with_serial_accesses(self, associativity):
        """A batch phase followed by single accesses behaves like all-serial."""
        rng = np.random.default_rng(7)
        config = CacheConfig(num_sets=8, associativity=associativity, policy="lru")
        mixed = SetAssociativeCache(config)
        reference = SetAssociativeCache(config)
        blocks = rng.integers(0, 64, size=500, dtype=np.uint64)
        mixed.access_batch(blocks)
        _serial_hits(reference, blocks)
        follow_up = rng.integers(0, 64, size=200, dtype=np.uint64)
        for block in follow_up.tolist():
            assert mixed.access_block(block) == reference.access_block(block)
        assert mixed.stats == reference.stats

    def test_dirty_blocks_fall_back_to_exact_writeback_accounting(self):
        config = CacheConfig(num_sets=1, associativity=1, policy="lru")
        batched = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        for cache in (batched, serial):
            cache.access_block_rw(0, is_write=True)  # block 0 is dirty
        blocks = np.array([1, 2, 1], dtype=np.uint64)
        assert np.array_equal(batched.access_batch(blocks), _serial_hits(serial, blocks))
        assert batched.stats == serial.stats
        assert batched.stats.writebacks == 1  # evicting dirty block 0

    def test_empty_batch(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2))
        assert cache.access_batch(np.empty(0, dtype=np.uint64)).size == 0
        assert cache.stats.accesses == 0

    def test_batch_accepts_plain_iterables(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=4, associativity=2))
        hits = cache.access_batch([1, 1, 2])
        assert hits.tolist() == [False, True, False]
