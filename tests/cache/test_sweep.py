"""Tests of miss-ratio sweeps over (sets, associativity) grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.sweep import DEFAULT_ASSOCIATIVITIES, miss_ratio_sweep


class TestMissRatioSweep:
    def test_surface_contains_every_set_count(self, working_set_addresses):
        surface = miss_ratio_sweep(working_set_addresses[:10_000], set_counts=[16, 64], trace_name="t")
        assert surface.set_counts == [16, 64]
        assert surface.trace_name == "t"

    def test_miss_ratio_decreases_with_cache_size(self, working_set_addresses):
        surface = miss_ratio_sweep(working_set_addresses[:20_000], set_counts=[16, 64, 256])
        for associativity in (1, 4, 16):
            ratios = [surface.miss_ratio(sets, associativity) for sets in (16, 64, 256)]
            assert ratios[0] >= ratios[1] >= ratios[2]

    def test_series_matches_default_associativities(self, working_set_addresses):
        surface = miss_ratio_sweep(working_set_addresses[:5_000], set_counts=[32])
        series = surface.series(32)
        assert len(series) == len(DEFAULT_ASSOCIATIVITIES)
        assert all(0.0 <= value <= 1.0 for value in series)

    def test_identical_surfaces_have_zero_error(self, working_set_addresses):
        blocks = working_set_addresses[:5_000]
        surface_a = miss_ratio_sweep(blocks, set_counts=[16, 32])
        surface_b = miss_ratio_sweep(blocks, set_counts=[16, 32])
        assert surface_a.max_absolute_error(surface_b) == 0.0
        assert surface_a.mean_absolute_error(surface_b) == 0.0

    def test_different_traces_have_positive_error(self, working_set_addresses, sequential_addresses):
        surface_a = miss_ratio_sweep(working_set_addresses[:5_000], set_counts=[16])
        surface_b = miss_ratio_sweep(sequential_addresses[:5_000], set_counts=[16])
        assert surface_a.max_absolute_error(surface_b) > 0.0

    def test_accepts_python_lists(self):
        surface = miss_ratio_sweep([1, 2, 3, 1, 2, 3], set_counts=[2])
        assert surface.miss_ratio(2, 32) <= 1.0

    def test_fully_cached_trace_has_only_cold_misses(self):
        blocks = np.tile(np.arange(16, dtype=np.uint64), 100)
        surface = miss_ratio_sweep(blocks, set_counts=[16])
        # 16 cold misses out of 1600 accesses at any associativity >= 1.
        assert surface.miss_ratio(16, 1) == pytest.approx(16 / 1600)
        assert surface.miss_ratio(16, 32) == pytest.approx(16 / 1600)
