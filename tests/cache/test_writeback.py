"""Tests of write-back modelling in the cache and the tagged filter mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.traces import synthetic
from repro.traces.filter import CacheFilter
from repro.traces.records import RecordKind, untag_addresses
from repro.traces.synthetic import ReferenceStream, make_reference_stream


class TestWriteBackCache:
    def test_clean_eviction_produces_no_writeback(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=1))
        cache.access_block_rw(1, is_write=False)
        hit, writeback = cache.access_block_rw(2, is_write=False)
        assert not hit
        assert writeback is None
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_produces_writeback(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=1))
        cache.access_block_rw(1, is_write=True)
        hit, writeback = cache.access_block_rw(2, is_write=False)
        assert not hit
        assert writeback == 1
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_block_dirty(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=1))
        cache.access_block_rw(1, is_write=False)
        cache.access_block_rw(1, is_write=True)   # hit, now dirty
        _, writeback = cache.access_block_rw(2, is_write=False)
        assert writeback == 1

    def test_writeback_clears_dirty_state(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, associativity=1))
        cache.access_block_rw(1, is_write=True)
        cache.access_block_rw(2, is_write=False)   # writes back block 1
        # Re-fetch block 1 cleanly and evict it again: no second write-back.
        cache.access_block_rw(1, is_write=False)
        _, writeback = cache.access_block_rw(3, is_write=False)
        assert writeback is None
        assert cache.stats.writebacks == 1

    def test_dirty_blocks_view_and_flush(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=2, associativity=2))
        cache.access_block_rw(0, is_write=True)
        cache.access_block_rw(1, is_write=False)
        assert cache.dirty_blocks() == {0}
        cache.flush()
        assert cache.dirty_blocks() == set()

    def test_read_only_api_unchanged(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=2, associativity=2))
        assert cache.access_block(5) is False
        assert cache.access_block(5) is True
        assert cache.stats.writebacks == 0


class TestReferenceStreamWrites:
    def test_default_is_all_reads(self):
        stream = ReferenceStream(np.arange(5, dtype=np.uint64), np.zeros(5, dtype=bool))
        assert stream.is_write.sum() == 0
        assert stream.write_addresses.size == 0

    def test_write_fraction_generates_writes(self):
        data = synthetic.sequential_stream(10_000, base=0)
        stream = make_reference_stream(data, instruction_ratio=0.5, write_fraction=0.3, seed=1)
        write_share = stream.is_write.sum() / stream.data_addresses.size
        assert 0.25 < write_share < 0.35
        assert not bool((stream.is_write & stream.is_instruction).any())

    def test_instruction_writes_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferenceStream(
                np.arange(2, dtype=np.uint64),
                np.array([True, False]),
                is_write=np.array([True, False]),
            )

    def test_invalid_write_fraction(self):
        with pytest.raises(ConfigurationError):
            make_reference_stream(np.arange(10, dtype=np.uint64), write_fraction=1.5)

    def test_mismatched_write_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferenceStream(
                np.arange(3, dtype=np.uint64), np.zeros(3, dtype=bool), is_write=np.zeros(2, dtype=bool)
            )


class TestTaggedFilter:
    def _stream(self, working_set_blocks: int = 4_096, length: int = 30_000, write_fraction: float = 0.4):
        data = synthetic.random_working_set(length, working_set_blocks=working_set_blocks, seed=3)
        return make_reference_stream(data, instruction_ratio=0.2, write_fraction=write_fraction, seed=3)

    def test_tagged_trace_contains_all_record_kinds(self):
        result = CacheFilter().filter_tagged(self._stream())
        _, kinds = untag_addresses(result.trace.addresses)
        present = set(kinds.tolist())
        assert int(RecordKind.DEMAND_MISS) in present
        assert int(RecordKind.WRITE_BACK) in present
        assert int(RecordKind.INSTRUCTION_MISS) in present

    def test_writeback_count_matches_cache_stats(self):
        cache_filter = CacheFilter()
        result = cache_filter.filter_tagged(self._stream())
        _, kinds = untag_addresses(result.trace.addresses)
        writebacks = int((kinds == int(RecordKind.WRITE_BACK)).sum())
        assert writebacks == cache_filter.data_cache.stats.writebacks

    def test_no_writes_means_no_writebacks(self):
        result = CacheFilter().filter_tagged(self._stream(write_fraction=0.0))
        _, kinds = untag_addresses(result.trace.addresses)
        assert int((kinds == int(RecordKind.WRITE_BACK)).sum()) == 0

    def test_demand_misses_match_untagged_filter(self):
        """The demand-miss sub-stream equals what the plain filter emits."""
        stream = self._stream()
        plain = CacheFilter().filter(stream)
        tagged = CacheFilter().filter_tagged(stream)
        addresses, kinds = untag_addresses(tagged.trace.addresses)
        demand_mask = kinds != int(RecordKind.WRITE_BACK)
        assert np.array_equal(addresses[demand_mask], plain.trace.addresses)

    def test_tagged_trace_compresses_and_roundtrips(self):
        """Tagged traces are still plain 64-bit traces for the ATC codecs."""
        from repro.core.lossless import LosslessCodec

        result = CacheFilter().filter_tagged(self._stream(length=15_000))
        codec = LosslessCodec(buffer_addresses=4_000)
        recovered = codec.decompress(codec.compress(result.trace.addresses))
        assert np.array_equal(recovered, result.trace.addresses)
