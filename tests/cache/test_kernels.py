"""Equivalence suite for the set-parallel cache-simulation kernels.

The kernel layer (:mod:`repro.core.kernels`) must be *bit-identical* to the
serial per-reference simulators it replaces: same hit masks, same
:class:`~repro.cache.cache.CacheStats` counters, same resident blocks and
replacement stamps, for any trace, chunking and policy.  This suite drives
random traces through three implementations — the serial loop (the
semantics oracle), the pre-kernel grouped OrderedDict replay, and the
kernel — and asserts exact agreement, including the dirty/write-back and
RANDOM-replacement traces that must take the serial fallback, and chunked
streaming at chunk sizes 1/7/4096.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.cache.cache as cache_module
import repro.cache.stackdist as stackdist_module
import repro.core.kernels as kernels
from repro.cache.cache import CacheConfig, SetAssociativeCache, access_batches
from repro.cache.stackdist import LruStackSimulator
from repro.errors import ConfigurationError
from repro.traces.filter import (
    CacheFilter,
    filter_reference_stream,
    filter_reference_streams_fused,
)
from repro.traces.spec_like import generate_reference_stream


@pytest.fixture(autouse=True)
def _always_kernel(monkeypatch):
    """Remove the small-batch cutoffs so every batch exercises the kernel."""
    monkeypatch.setattr(cache_module, "KERNEL_MIN_BATCH", 0)
    monkeypatch.setattr(stackdist_module, "KERNEL_MIN_TRACE", 0)


def _serial_reference(config: CacheConfig, blocks) -> SetAssociativeCache:
    cache = SetAssociativeCache(config)
    for block in blocks:
        cache.access_block(int(block))
    return cache


def _serial_hits(cache: SetAssociativeCache, blocks) -> np.ndarray:
    return np.array([cache.access_block(int(block)) for block in blocks], dtype=bool)


def _assert_same_state(left: SetAssociativeCache, right: SetAssociativeCache) -> None:
    assert left.stats == right.stats
    assert left._sets == right._sets
    assert left._dirty == right._dirty
    assert left._clock == right._clock


# Traces mix tight reuse, duplicate runs (instruction-stream shape) and
# cold streaming so every kernel regime (collapse, march, replay) fires.
_blocks = st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=400)
_repeats = st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=400)


def _build_trace(values, repeats) -> np.ndarray:
    reps = (repeats * (len(values) // len(repeats) + 1))[: len(values)]
    return np.repeat(
        np.array(values, dtype=np.uint64), np.array(reps, dtype=np.int64)
    )


class TestKernelEquivalence:
    """Serial loop vs grouped replay vs kernel, across the policy grid."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_blocks, repeats=_repeats, sets_exp=st.integers(min_value=0, max_value=5))
    def test_access_batch_matches_serial(self, policy, ways, sets_exp, values, repeats):
        trace = _build_trace(values, repeats)
        config = CacheConfig(num_sets=2**sets_exp, associativity=ways, policy=policy)
        batched = SetAssociativeCache(config, seed=7)
        serial = SetAssociativeCache(config, seed=7)
        for chunk in np.array_split(trace, 3):
            assert np.array_equal(batched.access_batch(chunk), _serial_hits(serial, chunk))
        _assert_same_state(batched, serial)

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    @pytest.mark.parametrize("ways", [2, 4, 8])
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_blocks, repeats=_repeats)
    def test_kernel_matches_grouped_replay(self, policy, ways, values, repeats):
        """The pre-kernel grouped path and the kernel agree exactly."""
        trace = _build_trace(values, repeats)
        config = CacheConfig(num_sets=16, associativity=ways, policy=policy)
        kernel = SetAssociativeCache(config)
        grouped = SetAssociativeCache(config)
        kernel_hits = kernel._access_batch_kernel(trace)
        grouped_hits = grouped._access_batch_grouped(trace)
        assert np.array_equal(kernel_hits, grouped_hits)
        _assert_same_state(kernel, grouped)

    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_blocks, repeats=_repeats)
    def test_chunked_streaming_is_identical(self, chunk_size, policy, values, repeats):
        """Any chunking of a batch leaves mask, stats and stamps unchanged."""
        trace = _build_trace(values, repeats)
        config = CacheConfig(num_sets=8, associativity=4, policy=policy)
        chunked = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        pieces = [
            chunked.access_batch(trace[start : start + chunk_size])
            for start in range(0, trace.size, chunk_size)
        ]
        assert np.array_equal(np.concatenate(pieces), _serial_hits(serial, trace))
        _assert_same_state(chunked, serial)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        values=_blocks,
        repeats=_repeats,
        writes=st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=20),
    )
    def test_dirty_caches_fall_back_and_count_writebacks(self, values, repeats, writes):
        """Dirty blocks force the serial fallback with exact write-backs."""
        trace = _build_trace(values, repeats)
        config = CacheConfig(num_sets=4, associativity=2, policy="lru")
        batched = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        for cache in (batched, serial):
            for block in writes:
                cache.access_block_rw(block, is_write=True)
        assert batched._dirty_block_count == sum(len(d) for d in batched._dirty)
        assert np.array_equal(batched.access_batch(trace), _serial_hits(serial, trace))
        _assert_same_state(batched, serial)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_blocks, repeats=_repeats)
    def test_mixed_serial_and_batch_phases(self, values, repeats):
        """Kernel batches interleave freely with single-reference accesses."""
        trace = _build_trace(values, repeats)
        config = CacheConfig(num_sets=8, associativity=4, policy="lru")
        mixed = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        third = max(1, trace.size // 3)
        mixed.access_batch(trace[:third])
        _serial_hits(serial, trace[:third])
        for block in trace[third : 2 * third].tolist():
            assert mixed.access_block(block) == serial.access_block(block)
        assert np.array_equal(
            mixed.access_batch(trace[2 * third :]), _serial_hits(serial, trace[2 * third :])
        )
        _assert_same_state(mixed, serial)


class TestFusedBatches:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(values=_blocks, repeats=_repeats, split=st.integers(min_value=1, max_value=9))
    def test_fused_lanes_match_independent_caches(self, values, repeats, split):
        trace = _build_trace(values, repeats)
        cut = (trace.size * split) // 10
        batches = [trace[:cut], trace[cut:]]
        configs = (
            CacheConfig(num_sets=16, associativity=4),
            CacheConfig(num_sets=8, associativity=2),
        )
        fused = [SetAssociativeCache(config) for config in configs]
        solo = [SetAssociativeCache(config) for config in configs]
        masks = access_batches(fused, batches)
        for cache, reference, mask, batch in zip(fused, solo, masks, batches):
            assert np.array_equal(mask, _serial_hits(reference, batch))
            _assert_same_state(cache, reference)

    def test_lane_count_mismatch_rejected(self):
        config = CacheConfig(num_sets=4, associativity=2)
        with pytest.raises(ConfigurationError, match="block batches"):
            access_batches([SetAssociativeCache(config)], [])

    def test_ineligible_caches_fall_back(self):
        """A RANDOM-policy lane routes through plain per-cache batches."""
        configs = (
            CacheConfig(num_sets=4, associativity=2, policy="random"),
            CacheConfig(num_sets=4, associativity=2, policy="lru"),
        )
        rng = np.random.default_rng(3)
        batches = [rng.integers(0, 50, size=300, dtype=np.uint64) for _ in configs]
        fused = [SetAssociativeCache(config, seed=1) for config in configs]
        solo = [SetAssociativeCache(config, seed=1) for config in configs]
        masks = access_batches(fused, batches)
        for cache, reference, mask, batch in zip(fused, solo, masks, batches):
            assert np.array_equal(mask, _serial_hits(reference, batch))
            _assert_same_state(cache, reference)


class TestStackDistanceKernel:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        values=_blocks,
        repeats=_repeats,
        depth=st.integers(min_value=1, max_value=9),
        sets_exp=st.integers(min_value=0, max_value=4),
    )
    def test_access_trace_matches_serial_loop(self, values, repeats, depth, sets_exp):
        trace = _build_trace(values, repeats)
        kernel = LruStackSimulator(2**sets_exp, max_associativity=depth)
        serial = LruStackSimulator(2**sets_exp, max_associativity=depth)
        kernel.access_trace(trace)
        for block in trace.tolist():
            serial.access_block(block)
        assert kernel.curve() == serial.curve()
        assert kernel._stacks == serial._stacks

    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    def test_chunked_trace_is_identical(self, chunk_size):
        rng = np.random.default_rng(11)
        trace = rng.integers(0, 500, size=3000, dtype=np.uint64)
        chunked = LruStackSimulator(16, max_associativity=4)
        oneshot = LruStackSimulator(16, max_associativity=4)
        for start in range(0, trace.size, chunk_size):
            chunked.access_trace(trace[start : start + chunk_size])
        oneshot.access_trace(trace)
        assert chunked.curve() == oneshot.curve()
        assert chunked._stacks == oneshot._stacks

    def test_generator_input_still_streams(self):
        lazy = LruStackSimulator(8, max_associativity=4)
        eager = LruStackSimulator(8, max_associativity=4)
        lazy.access_trace(int(value) % 64 for value in range(5000))
        eager.access_trace(np.arange(5000, dtype=np.uint64) % np.uint64(64))
        assert lazy.curve() == eager.curve()


class TestKernelRouting:
    """The march/replay/fast-path routing is a perf decision, never a
    semantic one — force each route and check exactness."""

    def test_skewed_single_set_takes_replay(self, monkeypatch):
        monkeypatch.setattr(kernels, "REPLAY_MIN_ROW_REFS", 4)
        rng = np.random.default_rng(5)
        # one scorching set plus background traffic
        hot = rng.integers(0, 40, size=800, dtype=np.uint64) * np.uint64(16)
        cold = rng.integers(0, 200, size=50, dtype=np.uint64)
        trace = np.concatenate([hot, cold])
        rng.shuffle(trace)
        config = CacheConfig(num_sets=16, associativity=4, policy="lru")
        batched = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        assert np.array_equal(batched.access_batch(trace), _serial_hits(serial, trace))
        _assert_same_state(batched, serial)

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_small_working_set_shortcut(self, policy, monkeypatch):
        monkeypatch.setattr(kernels, "REPLAY_MIN_ROW_REFS", 4)
        # a tight loop over 3 blocks of one set: distinct <= ways, so the
        # replay's numpy shortcut (no per-reference work) must fire
        trace = np.tile(np.array([0, 16, 32], dtype=np.uint64), 200)
        config = CacheConfig(num_sets=16, associativity=4, policy=policy)
        batched = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        assert np.array_equal(batched.access_batch(trace), _serial_hits(serial, trace))
        _assert_same_state(batched, serial)

    def test_single_set_geometry_has_no_sentinel(self):
        """num_sets == 1 (mask 0) must replay: no padding value exists."""
        rng = np.random.default_rng(9)
        trace = rng.integers(0, 30, size=500, dtype=np.uint64)
        config = CacheConfig(num_sets=1, associativity=4, policy="lru")
        batched = SetAssociativeCache(config)
        serial = SetAssociativeCache(config)
        assert np.array_equal(batched.access_batch(trace), _serial_hits(serial, trace))
        _assert_same_state(batched, serial)

    def test_kernel_rejects_bad_arguments(self):
        blocks = np.arange(10, dtype=np.uint64)
        rows = np.zeros(10, dtype=np.int64)
        with pytest.raises(ConfigurationError, match="policies"):
            kernels.simulate_batch(blocks, rows, 0, 2, policy="random")
        with pytest.raises(ConfigurationError, match="Mattson"):
            kernels.simulate_batch(blocks, rows, 0, np.array([2]), policy="fifo")
        with pytest.raises(ConfigurationError, match="only defined for LRU"):
            kernels.simulate_batch(blocks, rows, 0, 2, policy="fifo", want_depths=True)
        with pytest.raises(ConfigurationError, match="equal length"):
            kernels.simulate_batch(blocks, rows[:-1], 0, 2)

    def test_empty_batch(self):
        result = kernels.simulate_batch(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64), 7, 4
        )
        assert result.hits.size == 0
        assert result.final_stacks == {}


class TestFilterKernelPaths:
    def test_fused_filter_matches_sequential(self):
        streams = [
            generate_reference_stream(name, 2_000, seed=0)
            for name in ("429.mcf", "462.libquantum")
        ]
        fused = filter_reference_streams_fused(streams)
        for stream, result in zip(streams, fused):
            expected = filter_reference_stream(stream)
            assert np.array_equal(result.trace.addresses, expected.trace.addresses)
            assert result.instruction_stats == expected.instruction_stats
            assert result.data_stats == expected.data_stats

    def test_filter_matches_per_reference_caches(self):
        stream = generate_reference_stream("403.gcc", 3_000, seed=1)
        fast = CacheFilter()
        blocks = (stream.addresses >> np.uint64(6)).astype(np.uint64)
        instruction = SetAssociativeCache(fast.instruction_cache.config)
        data = SetAssociativeCache(fast.data_cache.config)
        misses = []
        for block, is_instr in zip(blocks.tolist(), stream.is_instruction.tolist()):
            cache = instruction if is_instr else data
            if not cache.access_block(block):
                misses.append(block)
        result = fast.filter(stream)
        assert result.trace.addresses.tolist() == misses
        assert result.instruction_stats == instruction.stats
        assert result.data_stats == data.stats
