"""Tests of the multi-level cache hierarchy filter."""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ConfigurationError


def _small_hierarchy():
    return CacheHierarchy(
        [
            CacheConfig(num_sets=4, associativity=2, name="L1"),
            CacheConfig(num_sets=16, associativity=4, name="L2"),
        ]
    )


class TestCacheHierarchy:
    def test_needs_at_least_one_level(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([])

    def test_levels_must_share_block_size(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                [
                    CacheConfig(num_sets=4, associativity=1, block_bytes=64),
                    CacheConfig(num_sets=4, associativity=1, block_bytes=128),
                ]
            )

    def test_single_level_behaves_like_plain_cache(self):
        hierarchy = CacheHierarchy([CacheConfig(num_sets=4, associativity=2)])
        assert hierarchy.access_block(1) is False
        assert hierarchy.access_block(1) is True

    def test_miss_stream_only_contains_last_level_misses(self):
        hierarchy = _small_hierarchy()
        blocks = list(range(32)) + list(range(32))
        misses = hierarchy.miss_stream(blocks)
        # First pass: 32 cold misses; second pass: everything fits in L2 (64 blocks).
        assert misses.tolist() == list(range(32))

    def test_second_level_catches_first_level_victims(self):
        hierarchy = _small_hierarchy()
        # 16 blocks exceed L1 (8 blocks) but fit in L2 (64 blocks).
        for block in range(16):
            hierarchy.access_block(block)
        hits = sum(hierarchy.access_block(block) for block in range(16))
        assert hits == 16

    def test_stats_per_level(self):
        hierarchy = _small_hierarchy()
        hierarchy.access_block(0)
        hierarchy.access_block(0)
        stats = hierarchy.stats()
        assert stats[0].accesses == 2
        assert stats[1].accesses == 1  # the hit never reached L2

    def test_byte_address_access(self):
        hierarchy = _small_hierarchy()
        assert hierarchy.access(0) is False
        assert hierarchy.access(63) is True

    def test_reset(self):
        hierarchy = _small_hierarchy()
        hierarchy.access_block(1)
        hierarchy.reset()
        assert hierarchy.stats()[0].accesses == 0
        assert hierarchy.access_block(1) is False

    def test_len(self):
        assert len(_small_hierarchy()) == 2
