"""Tests of the Belady/MIN optimal-replacement simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.optimal import OptimalCacheSimulator, optimal_miss_ratio
from repro.cache.stackdist import simulate_miss_curve
from repro.errors import ConfigurationError


class TestOptimalSimulatorBasics:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            OptimalCacheSimulator(num_sets=3, associativity=2)
        with pytest.raises(ConfigurationError):
            OptimalCacheSimulator(num_sets=4, associativity=0)

    def test_cold_misses_only_when_everything_fits(self):
        simulator = OptimalCacheSimulator(num_sets=1, associativity=4)
        stats = simulator.simulate([1, 2, 3, 1, 2, 3, 1, 2, 3])
        assert stats.misses == 3
        assert stats.hits == 6

    def test_empty_trace(self):
        stats = OptimalCacheSimulator(num_sets=2, associativity=2).simulate([])
        assert stats.accesses == 0
        assert stats.miss_ratio == 0.0

    def test_belady_textbook_example(self):
        """Classic MIN example: OPT keeps the block reused soonest."""
        # Fully associative, 3 blocks, reference string from textbooks.
        trace = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2]
        stats = OptimalCacheSimulator(num_sets=1, associativity=3).simulate(trace)
        # The known OPT fault count for this string with 3 frames is 7.
        assert stats.misses == 7

    def test_sequential_scan_has_no_reuse(self):
        stats = OptimalCacheSimulator(num_sets=4, associativity=2).simulate(list(range(100)))
        assert stats.misses == 100


class TestOptimalVsLru:
    @pytest.mark.parametrize("associativity", [1, 2, 4, 8])
    def test_opt_never_worse_than_lru(self, associativity, working_set_addresses):
        """Belady optimality: OPT misses <= LRU misses on the same config."""
        blocks = working_set_addresses[:8_000].tolist()
        num_sets = 16
        lru = SetAssociativeCache(
            CacheConfig(num_sets=num_sets, associativity=associativity, policy="lru")
        )
        lru.access_trace(blocks)
        opt_stats = OptimalCacheSimulator(num_sets, associativity).simulate(blocks)
        assert opt_stats.misses <= lru.stats.misses
        assert opt_stats.accesses == lru.stats.accesses

    def test_opt_matches_lru_when_no_capacity_pressure(self):
        blocks = (list(range(32)) * 10)
        num_sets, associativity = 8, 4  # 32 blocks fit exactly
        lru = SetAssociativeCache(CacheConfig(num_sets=num_sets, associativity=associativity))
        lru.access_trace(blocks)
        opt_stats = OptimalCacheSimulator(num_sets, associativity).simulate(blocks)
        assert opt_stats.misses == lru.stats.misses == 32

    def test_opt_bounded_below_by_cold_misses(self, working_set_addresses):
        blocks = working_set_addresses[:5_000]
        distinct = int(np.unique(blocks).size)
        stats = OptimalCacheSimulator(64, 4).simulate(blocks.tolist())
        assert stats.misses >= distinct

    def test_convenience_wrapper(self, working_set_addresses):
        ratio = optimal_miss_ratio(working_set_addresses[:3_000], num_sets=64, associativity=2)
        assert 0.0 <= ratio <= 1.0

    def test_opt_below_every_lru_associativity_curve(self, working_set_addresses):
        blocks = working_set_addresses[:6_000]
        curve = simulate_miss_curve(blocks, num_sets=32, max_associativity=8)
        opt_stats = OptimalCacheSimulator(32, 8).simulate(blocks.tolist())
        assert opt_stats.misses <= curve.miss_counts[8]
