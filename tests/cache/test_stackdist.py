"""Tests of the Mattson stack-distance multi-associativity simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.stackdist import LruStackSimulator, simulate_miss_curve
from repro.errors import ConfigurationError


class TestLruStackSimulator:
    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            LruStackSimulator(num_sets=3)
        with pytest.raises(ConfigurationError):
            LruStackSimulator(num_sets=4, max_associativity=0)

    def test_cold_misses_reported_at_all_associativities(self):
        simulator = LruStackSimulator(num_sets=1, max_associativity=4)
        simulator.access_trace([1, 2, 3])
        curve = simulator.curve()
        for associativity in range(1, 5):
            assert curve.miss_counts[associativity] == 3

    def test_reuse_depth_controls_hit_threshold(self):
        simulator = LruStackSimulator(num_sets=1, max_associativity=4)
        # Access pattern A B C A: the second A has stack depth 3.
        simulator.access_trace([1, 2, 3, 1])
        curve = simulator.curve()
        assert curve.miss_counts[2] == 4   # depth 3 misses in a 2-way cache
        assert curve.miss_counts[3] == 3   # but hits in a 3-way cache
        assert curve.miss_counts[4] == 3

    def test_miss_ratio_monotonically_non_increasing_in_associativity(self, working_set_addresses):
        curve = simulate_miss_curve(working_set_addresses[:20_000], num_sets=64)
        series = curve.as_series()
        assert all(earlier >= later - 1e-12 for earlier, later in zip(series, series[1:]))

    def test_curve_accessors(self, working_set_addresses):
        curve = simulate_miss_curve(working_set_addresses[:5_000], num_sets=16, max_associativity=8)
        assert curve.associativities == list(range(1, 9))
        assert 0.0 <= curve.miss_ratio(4) <= 1.0
        with pytest.raises(ConfigurationError):
            curve.miss_ratio(16)

    def test_empty_trace(self):
        curve = LruStackSimulator(num_sets=4).curve()
        assert curve.accesses == 0
        assert curve.miss_ratio(1) == 0.0

    @pytest.mark.parametrize("associativity", [1, 2, 4, 8])
    def test_matches_direct_lru_simulation(self, associativity, working_set_addresses):
        """Mattson inclusion: one stack pass == per-associativity simulation."""
        blocks = working_set_addresses[:8_000]
        num_sets = 32
        curve = simulate_miss_curve(blocks, num_sets=num_sets, max_associativity=8)
        direct = SetAssociativeCache(
            CacheConfig(num_sets=num_sets, associativity=associativity, policy="lru")
        )
        direct.access_trace(blocks.tolist())
        assert curve.miss_counts[associativity] == direct.stats.misses

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=400),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 3]),
    )
    def test_matches_direct_simulation_property(self, blocks, num_sets, associativity):
        curve = simulate_miss_curve(blocks, num_sets=num_sets, max_associativity=4)
        direct = SetAssociativeCache(
            CacheConfig(num_sets=num_sets, associativity=associativity, policy="lru")
        )
        direct.access_trace(blocks)
        assert curve.miss_counts[associativity] == direct.stats.misses
