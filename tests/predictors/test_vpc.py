"""Tests of the VPC/TCgen-style baseline compressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.predictors.vpc import DEFAULT_PREDICTOR_SPECS, VpcCodec, vpc_compress, vpc_decompress


class TestVpcRoundtrip:
    def test_roundtrip_sequential(self, sequential_addresses):
        codec = VpcCodec()
        payload = codec.compress(sequential_addresses[:5_000])
        assert np.array_equal(codec.decompress(payload), sequential_addresses[:5_000])

    def test_roundtrip_random(self, random_addresses):
        codec = VpcCodec()
        payload = codec.compress(random_addresses[:3_000])
        assert np.array_equal(codec.decompress(payload), random_addresses[:3_000])

    def test_roundtrip_working_set(self, working_set_addresses):
        codec = VpcCodec()
        payload = codec.compress(working_set_addresses[:5_000])
        assert np.array_equal(codec.decompress(payload), working_set_addresses[:5_000])

    def test_roundtrip_empty(self):
        codec = VpcCodec()
        assert codec.decompress(codec.compress([])).size == 0

    def test_one_shot_helpers(self, sequential_addresses):
        payload = vpc_compress(sequential_addresses[:1_000])
        assert np.array_equal(vpc_decompress(payload), sequential_addresses[:1_000])

    def test_decoder_honours_stream_predictor_specs(self, sequential_addresses):
        payload = vpc_compress(sequential_addresses[:1_000], predictor_specs=("LV", "ST"))
        # Decompressing with a codec built for the default specs must still
        # work because the stream carries its own specification.
        assert np.array_equal(VpcCodec().decompress(payload), sequential_addresses[:1_000])

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=150))
    def test_roundtrip_property(self, values):
        codec = VpcCodec(backend="zlib")
        array = np.array(values, dtype=np.uint64)
        assert np.array_equal(codec.decompress(codec.compress(array)), array)


class TestVpcCompressionBehaviour:
    def test_high_prediction_rate_on_strided_trace(self, sequential_addresses):
        codec = VpcCodec()
        codec.compress(sequential_addresses[:5_000])
        assert codec.stats.prediction_rate > 0.95

    def test_low_prediction_rate_on_random_trace(self, random_addresses):
        codec = VpcCodec()
        codec.compress(random_addresses[:3_000])
        assert codec.stats.prediction_rate < 0.2

    def test_regular_trace_compresses_well(self, sequential_addresses):
        payload = vpc_compress(sequential_addresses[:5_000])
        bits_per_address = 8 * len(payload) / 5_000
        assert bits_per_address < 4.0

    def test_default_specs_match_paper(self):
        assert DEFAULT_PREDICTOR_SPECS == ("DFCM3[2]", "FCM3[3]", "FCM2[3]", "FCM1[3]")


class TestVpcErrors:
    def test_needs_at_least_one_predictor(self):
        with pytest.raises(CodecError):
            VpcCodec(predictor_specs=())

    def test_truncated_stream(self):
        with pytest.raises(CodecError):
            VpcCodec().decompress(b"nope")

    def test_bad_magic(self, sequential_addresses):
        payload = bytearray(vpc_compress(sequential_addresses[:100]))
        payload[:4] = b"ZZZZ"
        with pytest.raises(CodecError):
            vpc_decompress(bytes(payload))
