"""Tests of the C/DC (CZone / Delta Correlation) address predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predictors.cdc import CdcConfig, CdcPredictor, PredictionBreakdown, simulate_cdc


class TestCdcConfig:
    def test_paper_defaults(self):
        config = CdcConfig()
        assert config.czone_bytes == 64 * 1024
        assert config.index_entries == 256
        assert config.ghb_entries == 256
        assert config.delta_key_length == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"czone_bytes": 0},
            {"czone_bytes": 3 * 1024},
            {"index_entries": 0},
            {"ghb_entries": 100},
            {"delta_key_length": 0},
            {"czone_bytes": 32, "block_bytes": 64},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            CdcConfig(**kwargs)


class TestPredictionBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = PredictionBreakdown(non_predicted=2, correct=5, incorrect=3)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["correct"] == pytest.approx(0.5)

    def test_empty_breakdown(self):
        fractions = PredictionBreakdown().fractions()
        assert all(value == 0.0 for value in fractions.values())

    def test_distance_between_identical_breakdowns_is_zero(self):
        a = PredictionBreakdown(1, 2, 3)
        b = PredictionBreakdown(10, 20, 30)
        assert a.distance(b) == pytest.approx(0.0)

    def test_distance_between_different_breakdowns(self):
        a = PredictionBreakdown(non_predicted=10, correct=0, incorrect=0)
        b = PredictionBreakdown(non_predicted=0, correct=10, incorrect=0)
        assert a.distance(b) == pytest.approx(2.0)


class TestCdcPredictor:
    def test_constant_stride_stream_is_predicted(self):
        """A unit-stride block stream inside one CZone is fully predictable."""
        blocks = np.arange(100, 1_100, dtype=np.uint64) % 1024  # stay in one czone
        breakdown = simulate_cdc(np.arange(0, 900, dtype=np.uint64))
        assert breakdown.fractions()["correct"] > 0.9

    def test_random_stream_is_mostly_unpredicted_or_wrong(self, rng):
        blocks = rng.integers(0, 1 << 40, size=5_000, dtype=np.uint64)
        breakdown = simulate_cdc(blocks)
        assert breakdown.fractions()["correct"] < 0.1

    def test_classification_covers_every_address(self, working_set_addresses):
        blocks = working_set_addresses[:5_000]
        breakdown = simulate_cdc(blocks)
        assert breakdown.total == blocks.size

    def test_first_accesses_are_non_predicted(self):
        predictor = CdcPredictor()
        assert predictor.access_block(10) == "non_predicted"
        assert predictor.access_block(11) == "non_predicted"

    def test_learns_delta_pattern_within_czone(self):
        """After seeing delta pair (1, 1) followed by 1, it predicts +1."""
        predictor = CdcPredictor()
        outcomes = [predictor.access_block(block) for block in range(20)]
        assert outcomes[-1] == "correct"

    def test_incorrect_when_pattern_breaks(self):
        predictor = CdcPredictor()
        for block in range(10):
            predictor.access_block(block)
        # The predictor now expects block 10; give it something else in the
        # same czone instead.
        assert predictor.access_block(500) == "incorrect"

    def test_zones_are_independent(self):
        """Interleaving two strided streams in different CZones still predicts."""
        config = CdcConfig()
        blocks_per_zone = config.czone_bytes // config.block_bytes
        zone_a = np.arange(0, 400, dtype=np.uint64)
        zone_b = np.arange(10 * blocks_per_zone, 10 * blocks_per_zone + 400, dtype=np.uint64)
        interleaved = np.empty(800, dtype=np.uint64)
        interleaved[0::2] = zone_a
        interleaved[1::2] = zone_b
        breakdown = simulate_cdc(interleaved)
        assert breakdown.fractions()["correct"] > 0.9

    def test_index_table_conflicts_reset_zone_state(self):
        """Two czones mapping to the same index entry evict each other."""
        config = CdcConfig(index_entries=256)
        blocks_per_zone = config.czone_bytes // config.block_bytes
        predictor = CdcPredictor(config)
        zone_stride = 256 * blocks_per_zone  # maps to the same index entry
        for round_index in range(4):
            for zone in range(2):
                predictor.access_block(zone * zone_stride + round_index)
        # No crash and every access classified.
        assert predictor.breakdown.total == 8

    def test_deterministic(self, working_set_addresses):
        blocks = working_set_addresses[:3_000]
        a = simulate_cdc(blocks)
        b = simulate_cdc(blocks)
        assert a.fractions() == b.fractions()
