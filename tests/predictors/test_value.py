"""Tests of the value predictors used by the VPC/TCgen baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.predictors.value import (
    DifferentialFiniteContextPredictor,
    FiniteContextPredictor,
    LastValuePredictor,
    StridePredictor,
    default_tcgen_predictors,
    make_predictor,
)


class TestLastValuePredictor:
    def test_predicts_recent_values(self):
        predictor = LastValuePredictor(depth=2)
        assert predictor.predictions() == ()
        predictor.update(10)
        predictor.update(20)
        assert predictor.predictions() == (20, 10)

    def test_depth_limits_history(self):
        predictor = LastValuePredictor(depth=2)
        for value in (1, 2, 3):
            predictor.update(value)
        assert predictor.predictions() == (3, 2)

    def test_duplicate_moves_to_front(self):
        predictor = LastValuePredictor(depth=3)
        for value in (1, 2, 3, 1):
            predictor.update(value)
        assert predictor.predictions() == (1, 3, 2)

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            LastValuePredictor(depth=0)


class TestStridePredictor:
    def test_detects_constant_stride(self):
        predictor = StridePredictor()
        predictor.update(100)
        predictor.update(108)
        assert predictor.predictions() == (116,)

    def test_no_prediction_before_first_value(self):
        assert StridePredictor().predictions() == ()

    def test_stride_wraps_modulo_2_64(self):
        predictor = StridePredictor()
        predictor.update(10)
        predictor.update(2)   # stride -8 (mod 2**64)
        (prediction,) = predictor.predictions()
        assert prediction == (2 - 8) % (1 << 64)


class TestFiniteContextPredictor:
    def test_learns_repeating_sequence(self):
        predictor = FiniteContextPredictor(order=2, depth=1)
        pattern = [1, 2, 3, 1, 2, 3, 1, 2]
        for value in pattern:
            predictor.update(value)
        # Context (1, 2) has always been followed by 3.
        assert predictor.predictions() == (3,)

    def test_no_prediction_before_warmup(self):
        predictor = FiniteContextPredictor(order=3)
        predictor.update(1)
        predictor.update(2)
        assert predictor.predictions() == ()

    def test_depth_keeps_multiple_candidates(self):
        predictor = FiniteContextPredictor(order=1, depth=2)
        for value in (5, 10, 5, 20, 5):
            predictor.update(value)
        candidates = predictor.predictions()
        assert set(candidates) == {10, 20}
        assert candidates[0] == 20  # most recent successor first

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FiniteContextPredictor(order=0)
        with pytest.raises(ConfigurationError):
            FiniteContextPredictor(order=1, depth=0)


class TestDifferentialFiniteContextPredictor:
    def test_learns_stride_patterns(self):
        predictor = DifferentialFiniteContextPredictor(order=2, depth=1)
        values = [0, 8, 16, 24, 32, 40]
        for value in values:
            predictor.update(value)
        assert predictor.predictions() == (48,)

    def test_learns_alternating_deltas(self):
        predictor = DifferentialFiniteContextPredictor(order=2, depth=1)
        # Deltas alternate +1, +3: 0,1,4,5,8,9,12...
        values = [0, 1, 4, 5, 8, 9, 12]
        for value in values:
            predictor.update(value)
        assert predictor.predictions() == (13,)

    def test_no_prediction_before_warmup(self):
        predictor = DifferentialFiniteContextPredictor(order=3)
        predictor.update(1)
        assert predictor.predictions() == ()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DifferentialFiniteContextPredictor(order=0)


class TestMakePredictor:
    @pytest.mark.parametrize(
        "spec,expected_type",
        [
            ("LV", LastValuePredictor),
            ("LV3", LastValuePredictor),
            ("ST", StridePredictor),
            ("FCM3[3]", FiniteContextPredictor),
            ("fcm2[1]", FiniteContextPredictor),
            ("DFCM3[2]", DifferentialFiniteContextPredictor),
        ],
    )
    def test_spec_parsing(self, spec, expected_type):
        assert isinstance(make_predictor(spec), expected_type)

    def test_spec_orders_and_depths(self):
        predictor = make_predictor("FCM3[2]")
        assert predictor.order == 3
        assert predictor.depth == 2

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            make_predictor("GHB4")
        with pytest.raises(ConfigurationError):
            make_predictor("FCM[2]")

    def test_default_tcgen_bank_matches_paper(self):
        bank = default_tcgen_predictors()
        assert len(bank) == 4
        assert isinstance(bank[0], DifferentialFiniteContextPredictor)
        assert bank[0].order == 3 and bank[0].depth == 2
        assert [p.order for p in bank[1:]] == [3, 2, 1]
        assert all(p.depth == 3 for p in bank[1:])
