"""Cross-executor equivalence: serial vs thread vs process, byte for byte.

The pipeline's hard invariant is that the executor strategy is invisible in
the output: for every mode (lossless, lossy), every chunk/interval size and
every strategy, the ``.atc`` container bytes are identical.  This module
pins that invariant three ways:

* a serial/thread/process matrix over chunk sizes {1, 7, 4096} for both
  modes, asserting container digests equal;
* the process executor reproducing the *committed golden fixtures* byte
  for byte (the strongest anchor: not just self-consistency, but the
  on-disk format as committed);
* a hypothesis property run under a shared process executor.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig
from repro.core.parallel import ProcessExecutor

from test_golden_containers import (
    GOLDEN_VARIANTS,
    golden_addresses,
    golden_config,
    golden_directory,
)

EXECUTORS = ("serial", "thread", "process")

#: (chunk size, trace length): tiny chunks get shorter traces so the
#: lossless matrix cell stays at hundreds — not thousands — of chunk tasks.
CHUNK_MATRIX = ((1, 120), (7, 700), (4096, 3000))


@pytest.fixture(scope="module")
def process_executor():
    """One process pool shared by every matrix cell (startup amortised)."""
    with ProcessExecutor(2) as executor:
        yield executor


def _digest(directory: Path) -> str:
    digest = hashlib.sha256()
    for entry in sorted(directory.iterdir()):
        digest.update(entry.name.encode())
        digest.update(entry.read_bytes())
    return digest.hexdigest()


def _encode(trace, directory, mode, chunk, executor) -> str:
    config = LossyConfig(
        interval_length=chunk,
        threshold=0.5,
        chunk_buffer_addresses=chunk,
        backend="zlib",
        workers=2,
    )
    with AtcEncoder(directory, mode=mode, config=config, executor=executor) as encoder:
        encoder.code_many(trace)
    return _digest(directory)


class TestCrossExecutorMatrix:
    @pytest.mark.parametrize("mode", [MODE_LOSSLESS, MODE_LOSSY])
    @pytest.mark.parametrize("chunk,length", CHUNK_MATRIX)
    def test_containers_byte_identical_across_executors(
        self, tmp_path, process_executor, mode, chunk, length
    ):
        trace = golden_addresses()[:length]
        digests = {}
        for name in EXECUTORS:
            directory = tmp_path / f"{mode}-{chunk}-{name}"
            executor = process_executor if name == "process" else name
            digests[name] = _encode(trace, directory, mode, chunk, executor)
        assert digests["thread"] == digests["serial"], (mode, chunk)
        assert digests["process"] == digests["serial"], (mode, chunk)

    @pytest.mark.parametrize("mode", [MODE_LOSSLESS, MODE_LOSSY])
    @pytest.mark.parametrize("chunk,length", CHUNK_MATRIX)
    def test_decode_identical_across_executors(
        self, tmp_path, process_executor, mode, chunk, length
    ):
        trace = golden_addresses()[:length]
        directory = tmp_path / "container"
        _encode(trace, directory, mode, chunk, "serial")
        reference = AtcDecoder(directory, workers=1).read_all()
        for name in EXECUTORS:
            executor = process_executor if name == "process" else name
            decoded = AtcDecoder(directory, workers=2, executor=executor).read_all()
            assert np.array_equal(decoded, reference), (mode, chunk, name)
        if mode == MODE_LOSSLESS:
            assert np.array_equal(reference, trace)


class TestProcessExecutorMatchesGoldenFixtures:
    def test_process_encoder_reproduces_committed_containers(self, tmp_path, process_executor):
        """The strongest anchor: the process pipeline must reproduce the
        committed on-disk golden bytes, not merely agree with itself."""
        for mode_name, mode, backend in GOLDEN_VARIANTS:
            committed = golden_directory(mode_name, backend)
            fresh = tmp_path / f"{mode_name}_{backend}"
            config = golden_config(backend)
            with AtcEncoder(fresh, mode=mode, config=config, executor=process_executor) as encoder:
                encoder.code_many(golden_addresses())
            expected = {entry.name: entry.read_bytes() for entry in sorted(committed.iterdir())}
            actual = {entry.name: entry.read_bytes() for entry in sorted(fresh.iterdir())}
            assert actual == expected, f"{mode_name}_{backend} drifted under the process executor"


@pytest.fixture(scope="module")
def property_executor():
    with ProcessExecutor(2) as executor:
        yield executor


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=120),
    interval_length=st.integers(min_value=1, max_value=31),
)
def test_process_roundtrip_property(tmp_path_factory, property_executor, addresses, interval_length):
    """Lossless process-executor encode/decode is exact for arbitrary traces."""
    config = LossyConfig(
        interval_length=interval_length,
        chunk_buffer_addresses=interval_length,
        backend="zlib",
        workers=2,
    )
    directory = tmp_path_factory.mktemp("prop") / "container"
    with AtcEncoder(directory, mode=MODE_LOSSLESS, config=config, executor=property_executor) as enc:
        enc.code_many(np.array(addresses, dtype=np.uint64))
    decoded = AtcDecoder(directory, workers=2, executor=property_executor).read_all()
    assert decoded.tolist() == addresses
