"""Property-based proof of the integrity layer's headline guarantee.

The acceptance bar for the format-v2 digests is absolute: *any* single-bit
flip, truncation, or chunk splice anywhere in *any* golden container must
surface as :class:`~repro.errors.IntegrityError` on decode — never a wrong
answer, never a silent success.  Hypothesis draws the damage (which
container, which file, which bit/length/chunk); the properties assert
detection.  A deterministic sibling suite (``test_fsck.py``) covers
localisation and repair; this file is only about *detection*.

The fault primitives come from :mod:`repro.testing.faults` — the same ones
the CI chaos lane drives out-of-process — so the property suite and the
chaos lane exercise one implementation of "corruption".
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.atc import AtcDecoder
from repro.core.fsck import repair_container, scrub_container
from repro.errors import IntegrityError, ReproError
from repro.testing.faults import TransientEIO, flip_bit, torn_write, truncate_file

from test_golden_containers import (
    GOLDEN_VARIANTS,
    golden_addresses,
    golden_directory,
)

#: Every committed v2 golden container (the v1 twins record no digests, so
#: the absolute-detection guarantee is a v2 property).
_CONTAINERS = tuple(
    golden_directory(mode_name, backend) for mode_name, _, backend in GOLDEN_VARIANTS
)


def _copy_container(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    return destination


def _decode_all(directory: Path) -> np.ndarray:
    """Open and fully decode a container (every chunk passes verification)."""
    return AtcDecoder(directory).read_all()


def _container_files(directory: Path):
    return sorted(path for path in directory.iterdir() if path.is_file())


class TestEveryBitIsLoadBearing:
    """Drawn corruption of committed fixtures is always detected."""

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_any_single_bit_flip_is_detected(self, data, tmp_path_factory):
        source = data.draw(st.sampled_from(_CONTAINERS), label="container")
        work = _copy_container(source, tmp_path_factory.mktemp("flip") / source.name)
        target = data.draw(st.sampled_from(_container_files(work)), label="file")
        size = target.stat().st_size
        bit = data.draw(
            st.integers(min_value=0, max_value=8 * size - 1), label="bit_offset"
        )
        flip_bit(target, bit)
        with pytest.raises(IntegrityError):
            _decode_all(work)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_truncation_is_detected(self, data, tmp_path_factory):
        source = data.draw(st.sampled_from(_CONTAINERS), label="container")
        work = _copy_container(source, tmp_path_factory.mktemp("trunc") / source.name)
        target = data.draw(st.sampled_from(_container_files(work)), label="file")
        size = target.stat().st_size
        length = data.draw(st.integers(min_value=0, max_value=size - 1), label="keep")
        truncate_file(target, length)
        with pytest.raises(ReproError):
            # A truncated chunk fails its digest (IntegrityError); an INFO
            # truncated to zero bytes may instead read as "no INFO stream"
            # (ContainerError).  Either way the damage is *detected*.
            _decode_all(work)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_torn_write_is_detected(self, data, tmp_path_factory):
        """A zero-filled tail (size intact!) still fails its digest."""
        source = data.draw(st.sampled_from(_CONTAINERS), label="container")
        work = _copy_container(source, tmp_path_factory.mktemp("torn") / source.name)
        target = data.draw(st.sampled_from(_container_files(work)), label="file")
        size = target.stat().st_size
        keep = data.draw(st.integers(min_value=0, max_value=size - 1), label="keep")
        torn_write(target, keep)
        with pytest.raises(IntegrityError):
            _decode_all(work)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_chunk_splices_are_detected(self, data, tmp_path_factory):
        """Swapping whole (individually valid!) chunk files across slots fails.

        This is the corruption digests exist for: every spliced byte is a
        perfectly valid compressed stream, so decompression succeeds and a
        digestless v1 reader would return the wrong addresses without a
        whisper.  The v2 per-chunk digest is bound to the chunk *slot*.
        """
        multi_chunk = [
            c
            for c in _CONTAINERS
            if sum(1 for p in _container_files(c) if not p.name.startswith("INFO.")) >= 2
        ]
        source = data.draw(st.sampled_from(multi_chunk), label="container")
        work = _copy_container(source, tmp_path_factory.mktemp("splice") / source.name)
        chunks = [p for p in _container_files(work) if not p.name.startswith("INFO.")]
        a, b = data.draw(
            st.permutations(chunks).map(lambda seq: seq[:2]), label="slots"
        )
        assume(a.read_bytes() != b.read_bytes())
        b.write_bytes(a.read_bytes())
        with pytest.raises(IntegrityError):
            _decode_all(work)

    def test_pristine_copies_still_decode(self, tmp_path):
        """The detection properties are not vacuous: undamaged copies pass."""
        for source in _CONTAINERS:
            work = _copy_container(source, tmp_path / f"ok_{source.name}")
            _decode_all(work)


class TestRepairSalvage:
    """``fsck --repair`` semantics, driven over drawn damage locations."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_salvage_decodes_to_the_exact_intact_prefix(self, data, tmp_path_factory):
        source = golden_directory("lossless", "bz2")
        work = _copy_container(source, tmp_path_factory.mktemp("rep") / source.name)
        chunks = [p for p in _container_files(work) if not p.name.startswith("INFO.")]
        victim = data.draw(st.sampled_from(chunks), label="chunk")
        bit = data.draw(
            st.integers(min_value=0, max_value=8 * victim.stat().st_size - 1),
            label="bit_offset",
        )
        flip_bit(victim, bit)

        salvaged_dir = work.parent / "salvaged"
        report = repair_container(work, salvaged_dir)
        victim_id = int(victim.name.split(".")[0]) - 1
        assert victim_id in report.dropped_chunks
        assert victim_id not in report.salvaged_chunks

        # The salvage is a valid container again (clean scrub) ...
        assert scrub_container(salvaged_dir).ok
        # ... its intact chunk files are byte-identical to the source ...
        for path in _container_files(salvaged_dir):
            if path.name.startswith("INFO."):
                continue
            assert path.read_bytes() == (source / path.name).read_bytes()
        # ... and it decodes to an exact prefix of the original trace.
        recovered = _decode_all(salvaged_dir)
        expected = golden_addresses()
        assert recovered.size <= expected.size
        assert np.array_equal(recovered, expected[: recovered.size])
        # Damage before the last chunk costs data; the prefix is maximal
        # only up to record granularity, but it is never empty unless the
        # first chunk died.
        if victim_id > 0:
            assert recovered.size > 0


class TestTransientFaults:
    def test_transient_eio_surfaces_as_integrity_error(self, tmp_path):
        """A failing read is reported as damage, not a crash."""
        work = _copy_container(
            golden_directory("lossless", "bz2"), tmp_path / "eio"
        )
        decoder = AtcDecoder(work)  # INFO read succeeds before the fault
        with TransientEIO(match=f"{work.name}/1.bz2", failures=1):
            with pytest.raises(IntegrityError) as excinfo:
                decoder.read_all()
        assert excinfo.value.chunk_id == 0
        # The fault was transient: a fresh decode succeeds afterwards.
        assert np.array_equal(AtcDecoder(work).read_all(), golden_addresses())
