"""Tests of the executor engine: selection, ordering, transport, shutdown.

The shutdown cases are the regression suite for the "clean worker-pool
teardown" contract: a crashing worker, an abandoned pipeline or an aborted
context must propagate one clear error, reap every child process and leave
no shared-memory segment behind.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_kind,
    executor_scope,
    resolve_executor,
)
from repro.core.parallel import OrderedChunkWriter, map_ordered
from repro.core import shmem
from repro.errors import ConfigurationError, ParallelExecutionError

_SHM_DIR = Path("/dev/shm")


def _double(value):
    return value * 2


def _boom(_value):
    raise ValueError("task failure")


def _kill_self(_value):
    os.kill(os.getpid(), signal.SIGKILL)


def _slow_identity(value):
    time.sleep(0.05)
    return value


def _array_total(array):
    return int(array.sum())


def _echo_array(array):
    return array


def _shm_segment_names():
    if not _SHM_DIR.is_dir():
        return set()
    return {entry.name for entry in _SHM_DIR.iterdir()}


@pytest.fixture()
def shm_snapshot():
    """Assert that a test leaves no new /dev/shm segments behind."""
    if not _SHM_DIR.is_dir():
        pytest.skip("/dev/shm not available on this platform")
    before = _shm_segment_names()
    yield
    leaked = _shm_segment_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestResolveExecutor:
    def test_names_resolve_to_matching_strategies(self):
        for name in EXECUTOR_NAMES:
            executor = resolve_executor(name, workers=2)
            try:
                assert executor.name == name
            finally:
                executor.close()

    def test_auto_is_serial_for_one_worker_and_threads_beyond(self):
        assert resolve_executor("auto", workers=1).name == "serial"
        executor = resolve_executor("auto", workers=3)
        try:
            assert executor.name == "thread"
            assert executor.workers == 3
        finally:
            executor.close()

    def test_default_consults_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        executor = resolve_executor(None, workers=2)
        try:
            assert executor.name == "process"
        finally:
            executor.close()
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert resolve_executor(None, workers=1).name == "serial"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor("fibers", workers=2)
        with pytest.raises(ConfigurationError):
            executor_kind("fibers")

    def test_instance_passes_through_and_scope_borrows_it(self):
        with ThreadExecutor(2) as executor:
            assert resolve_executor(executor) is executor
            with executor_scope(executor, workers=8) as scoped:
                assert scoped is executor
            # Borrowed: the scope must not have closed it.
            assert executor.map_ordered(_double, [1, 2]) == [2, 4]

    def test_scope_closes_executors_it_created(self):
        with executor_scope("thread", workers=2) as executor:
            assert executor.map_ordered(_double, [3]) == [6]
        with pytest.raises(ConfigurationError):
            executor.submit(_double, 1)


class TestOrderingAndErrors:
    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_map_ordered_preserves_input_order(self, name):
        with resolve_executor(name, workers=2) as executor:
            items = list(range(24))
            assert executor.map_ordered(_double, items) == [value * 2 for value in items]

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_imap_ordered_streams_in_order(self, name):
        with resolve_executor(name, workers=2) as executor:
            items = list(range(15))
            assert list(executor.imap_ordered(_double, items, lookahead=3)) == [
                value * 2 for value in items
            ]

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_task_exceptions_propagate_unchanged(self, name):
        with resolve_executor(name, workers=2) as executor:
            if executor.name == "serial":
                with pytest.raises(ValueError, match="task failure"):
                    executor.map_ordered(_boom, [1, 2])
            else:
                with pytest.raises(ValueError, match="task failure"):
                    executor.map_ordered(_boom, [1, 2])

    def test_serial_submit_runs_inline(self):
        executor = SerialExecutor()
        ran = []
        executor.submit(ran.append, "now")
        assert ran == ["now"]  # before result() was ever called
        assert executor.is_async is False

    def test_map_ordered_helper_routes_through_named_executor(self):
        assert map_ordered(_double, [1, 2, 3], workers=2, executor="process") == [2, 4, 6]

    def test_map_ordered_helper_stays_inline_for_one_worker(self):
        calls = []

        def local_closure(value):  # unpicklable on purpose
            calls.append(value)
            return value

        assert map_ordered(local_closure, [1, 2], workers=1) == [1, 2]
        assert calls == [1, 2]


class TestProcessTransport:
    def test_large_arrays_round_trip_through_shared_memory(self, shm_snapshot, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")  # force every payload through shm
        arrays = [np.full(20_000, i, dtype=np.uint64) for i in range(6)]
        with ProcessExecutor(2) as executor:
            totals = executor.map_ordered(_array_total, arrays)
        assert totals == [i * 20_000 for i in range(6)]

    def test_result_arrays_are_owned_copies(self):
        array = np.arange(50_000, dtype=np.uint64)
        with ProcessExecutor(1) as executor:
            echoed = executor.submit(_echo_array, array).result()
        assert np.array_equal(echoed, array)
        echoed[0] = 7  # owned memory: writable without touching the source
        assert array[0] == 0

    def test_export_import_round_trip_nested_containers(self, shm_snapshot):
        value = {"chunks": [np.arange(10_000, dtype=np.uint64), b"x" * 70_000], "n": 3}
        segments = []
        packed = shmem.export_value(value, segments, threshold=0)
        assert segments, "large payloads must be lifted into segments"
        restored = shmem.import_value(packed, unlink=True)
        assert restored["n"] == 3
        assert np.array_equal(restored["chunks"][0], value["chunks"][0])
        assert restored["chunks"][1] == value["chunks"][1]

    def test_small_payloads_skip_shared_memory(self):
        segments = []
        packed = shmem.export_value((np.arange(4, dtype=np.uint64), b"tiny"), segments)
        assert segments == []
        assert isinstance(packed[0], np.ndarray) and packed[1] == b"tiny"

    def test_decoupling_contract_follows_the_shm_threshold(self):
        serial = SerialExecutor()
        assert serial.decouples_at_submit(8)  # inline: nothing outlives submit
        with ThreadExecutor(2) as threads:
            assert not threads.decouples_at_submit(1 << 30)  # shares the buffer
        executor = ProcessExecutor(1)
        try:
            assert executor.decouples_at_submit(shmem.shm_min_bytes())  # shm copy at submit
            assert not executor.decouples_at_submit(shmem.shm_min_bytes() - 1)  # pickled later
        finally:
            executor.close()


class TestCleanShutdown:
    """Regression tests: crash/cancel paths reap children and segments."""

    def test_worker_crash_raises_one_clear_error(self):
        with ProcessExecutor(2) as executor:
            with pytest.raises(ParallelExecutionError, match="worker process died"):
                executor.map_ordered(_kill_self, [1, 2, 3])
        assert multiprocessing.active_children() == []

    def test_crash_inside_pipeline_surfaces_and_cleans_up(self, tmp_path, shm_snapshot):
        writer = OrderedChunkWriter(lambda cid, payload: None, workers=2, executor="process")
        writer.submit(0, _kill_self, 1)
        with pytest.raises(ParallelExecutionError):
            writer.close()
        assert multiprocessing.active_children() == []

    def test_cancelled_pipeline_discards_results_without_leaks(self, shm_snapshot, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        executor = ProcessExecutor(2)
        handles = [executor.submit(_echo_array, np.arange(30_000, dtype=np.uint64)) for _ in range(4)]
        # Let at least one task finish so a packed result is in flight,
        # then abandon everything: close() must unlink the parked results.
        handles[0].result()
        executor.close(cancel=True)
        assert multiprocessing.active_children() == []

    def test_cancel_reclaims_finished_results_on_a_borrowed_pool(self, shm_snapshot, monkeypatch):
        """Abandoning finished work must not hold segments until close():
        a borrowed long-lived executor would otherwise accumulate them."""
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        with ProcessExecutor(1) as executor:
            handles = [
                executor.submit(_echo_array, np.arange(20_000, dtype=np.uint64)) for _ in range(3)
            ]
            executor.submit(_double, 1).result()  # barrier: all echoes finished
            for handle in handles:
                handle.cancel()
            # Segments must be gone NOW, while the pool is still open.
            leaked = [n for n in _shm_segment_names() if n.startswith("psm_")]
            assert not leaked, f"cancel left parked result segments: {leaked}"
            assert executor.submit(_double, 21).result() == 42  # pool still usable

    def test_aborted_encoder_context_reaps_process_pool(self, tmp_path, shm_snapshot):
        from repro.core.atc import MODE_LOSSLESS, AtcEncoder
        from repro.core.lossy import LossyConfig

        config = LossyConfig(
            interval_length=5_000, chunk_buffer_addresses=5_000, workers=2, executor="process"
        )
        encoder = AtcEncoder(tmp_path / "container", mode=MODE_LOSSLESS, config=config)
        with pytest.raises(RuntimeError):
            with encoder:
                encoder.code_many(np.arange(20_000, dtype=np.uint64))
                raise RuntimeError("abort")
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent_and_rejects_new_work(self):
        executor = ProcessExecutor(1)
        assert executor.submit(_double, 4).result() == 8
        executor.close()
        executor.close()
        with pytest.raises(ConfigurationError):
            executor.submit(_double, 1)

    def test_slow_queue_cancel_returns_promptly(self):
        executor = ProcessExecutor(1)
        started = time.perf_counter()
        for value in range(40):
            executor.submit(_slow_identity, value)
        executor.close(cancel=True)
        # 40 tasks x 50 ms would be 2 s serially; cancellation must drop
        # the unstarted tail instead of draining it.
        assert time.perf_counter() - started < 1.5
        assert multiprocessing.active_children() == []


class TestExecutorKind:
    def test_kind_resolves_names_env_and_instances(self, monkeypatch):
        assert executor_kind("process") == "process"
        assert executor_kind(None) == "auto"
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert executor_kind(None) == "thread"
        with SerialExecutor() as executor:
            assert executor_kind(executor) == "serial"


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX shared memory only")
def test_engine_module_is_exported_from_core():
    import repro
    import repro.core as core

    assert core.ProcessExecutor is ProcessExecutor
    assert repro.resolve_executor is resolve_executor
    assert issubclass(ProcessExecutor, Executor)
