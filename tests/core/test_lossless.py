"""Tests of the bytesort-based lossless codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.generic import raw_bits_per_address
from repro.core.lossless import (
    LosslessCodec,
    lossless_bits_per_address,
    lossless_compress,
    lossless_decompress,
)
from repro.errors import CodecError


class TestLosslessRoundtrip:
    @pytest.mark.parametrize("buffer_addresses", [100, 1_000, 50_000])
    def test_roundtrip_sequential(self, sequential_addresses, buffer_addresses):
        codec = LosslessCodec(buffer_addresses=buffer_addresses)
        assert np.array_equal(codec.decompress(codec.compress(sequential_addresses)), sequential_addresses)

    def test_roundtrip_random(self, random_addresses):
        codec = LosslessCodec(buffer_addresses=3_000)
        assert np.array_equal(codec.decompress(codec.compress(random_addresses)), random_addresses)

    def test_roundtrip_working_set(self, working_set_addresses):
        codec = LosslessCodec(buffer_addresses=10_000)
        payload = codec.compress(working_set_addresses)
        assert np.array_equal(codec.decompress(payload), working_set_addresses)

    def test_roundtrip_empty_trace(self):
        codec = LosslessCodec()
        assert codec.decompress(codec.compress(np.empty(0, dtype=np.uint64))).size == 0

    def test_decompressor_reads_buffer_size_from_header(self, random_addresses):
        payload = lossless_compress(random_addresses, buffer_addresses=777)
        assert np.array_equal(lossless_decompress(payload), random_addresses)

    @pytest.mark.parametrize("backend", ["bz2", "zlib", "lzma", "store"])
    def test_roundtrip_all_backends(self, sequential_addresses, backend):
        codec = LosslessCodec(buffer_addresses=5_000, backend=backend)
        assert np.array_equal(
            codec.decompress(codec.compress(sequential_addresses)), sequential_addresses
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=0, max_size=300))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.uint64)
        codec = LosslessCodec(buffer_addresses=64, backend="zlib")
        assert np.array_equal(codec.decompress(codec.compress(array)), array)


class TestLosslessCompressionQuality:
    def test_regular_trace_compresses_well(self, sequential_addresses):
        bpa = lossless_bits_per_address(sequential_addresses, buffer_addresses=10_000)
        assert bpa < 2.0  # 64 bits down to under 2 bits per address

    def test_bytesort_beats_plain_bzip2_on_filtered_trace(self, filtered_trace):
        """The core Table 1 claim: bytesort+bzip2 beats bzip2 alone."""
        addresses = filtered_trace.addresses
        bytesort_bpa = lossless_bits_per_address(addresses, buffer_addresses=len(addresses))
        plain_bpa = raw_bits_per_address(addresses)
        assert bytesort_bpa < plain_bpa

    def test_bigger_buffer_never_much_worse(self, working_set_addresses):
        """Section 4.1: a bigger buffer exposes more regularity."""
        small = lossless_bits_per_address(working_set_addresses, buffer_addresses=2_000)
        big = lossless_bits_per_address(working_set_addresses, buffer_addresses=60_000)
        assert big <= small * 1.10  # allow small noise, but the trend must hold

    def test_bits_per_address_of_empty_trace(self):
        assert LosslessCodec().bits_per_address(np.empty(0, dtype=np.uint64)) == 0.0


class TestLosslessErrors:
    def test_invalid_buffer_size(self):
        with pytest.raises(CodecError):
            LosslessCodec(buffer_addresses=0)

    def test_truncated_stream(self):
        with pytest.raises(CodecError):
            LosslessCodec().decompress(b"shrt")

    def test_bad_magic(self, sequential_addresses):
        payload = bytearray(lossless_compress(sequential_addresses))
        payload[:4] = b"XXXX"
        with pytest.raises(CodecError):
            lossless_decompress(bytes(payload))

    def test_corrupt_body_detected(self, sequential_addresses):
        payload = lossless_compress(sequential_addresses, buffer_addresses=1_000)
        corrupted = payload[:-10]
        with pytest.raises(Exception):
            lossless_decompress(corrupted)
