"""Deterministic suite for ``repro fsck``: localisation, salvage, dispatch.

The hypothesis suite (``test_integrity.py``) proves damage is *detected*;
this file pins down what the scrubber *says* about it — that damage is
localised to the right chunk with the right status word — and that repair
produces a valid partial container with an honest damage report.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.atc import AtcDecoder
from repro.core.fsck import (
    repair_container,
    scrub_cache_root,
    scrub_container,
    scrub_path,
    scrub_store,
)
from repro.errors import ContainerError, IntegrityError
from repro.experiments.store import ResultStore
from repro.testing.faults import flip_bit, torn_write, truncate_file

from test_golden_containers import golden_addresses, golden_directory, golden_v1_directory


@pytest.fixture()
def container(tmp_path) -> Path:
    """A scratch copy of the lossless/bz2 golden container (6 chunks)."""
    work = tmp_path / "lossless_bz2"
    shutil.copytree(golden_directory("lossless", "bz2"), work)
    return work


def _chunk_file(container: Path, chunk_id: int) -> Path:
    return container / f"{chunk_id + 1}.bz2"


class TestScrubContainer:
    def test_clean_container_scrubs_clean(self, container):
        scrub = scrub_container(container)
        assert scrub.ok
        assert scrub.format_version == 2
        assert scrub.info_status == "ok"
        assert [c.status for c in scrub.chunks] == ["ok"] * 6

    def test_damage_is_localised_to_the_flipped_chunk(self, container):
        flip_bit(_chunk_file(container, 2), 13)
        scrub = scrub_container(container)
        assert not scrub.ok
        damaged = scrub.damaged_chunks
        assert [c.chunk_id for c in damaged] == [2]
        assert damaged[0].status == "digest-mismatch"
        assert "recorded" in damaged[0].detail and "found" in damaged[0].detail
        # every other chunk is individually vouched for
        assert sum(1 for c in scrub.chunks if c.ok) == 5

    def test_missing_chunk_is_reported_missing(self, container):
        _chunk_file(container, 4).unlink()
        scrub = scrub_container(container)
        assert [c.chunk_id for c in scrub.damaged_chunks] == [4]
        assert scrub.damaged_chunks[0].status == "missing"

    def test_torn_written_chunk_fails_its_digest(self, container):
        torn_write(_chunk_file(container, 1), 4)
        scrub = scrub_container(container)
        assert [c.status for c in scrub.damaged_chunks] == ["digest-mismatch"]

    def test_damaged_info_is_reported_as_corrupt(self, container):
        info = container / "INFO.bz2"
        flip_bit(info, 8 * (info.stat().st_size // 2))
        scrub = scrub_container(container)
        assert not scrub.ok
        assert scrub.info_status == "corrupt"
        assert scrub.info_detail

    def test_v1_container_scrubs_via_decompression(self, tmp_path):
        work = tmp_path / "v1"
        shutil.copytree(golden_v1_directory("lossless", "bz2"), work)
        assert scrub_container(work).ok
        # v1 has no digests: only gross damage (decompress failure) is caught
        target = _chunk_file(work, 0)
        truncate_file(target, target.stat().st_size // 2)
        scrub = scrub_container(work)
        assert [c.status for c in scrub.damaged_chunks] == ["corrupt"]
        assert scrub.format_version == 1

    def test_non_container_raises_container_error(self, tmp_path):
        (tmp_path / "stray.txt").write_text("hi")
        with pytest.raises(ContainerError, match="not an ATC container"):
            scrub_container(tmp_path)

    def test_scrub_is_read_only(self, container):
        flip_bit(_chunk_file(container, 3), 7)
        before = {p.name: p.read_bytes() for p in sorted(container.iterdir())}
        scrub_container(container)
        after = {p.name: p.read_bytes() for p in sorted(container.iterdir())}
        assert before == after


class TestRepairContainer:
    def test_repair_salvages_the_intact_prefix(self, container, tmp_path):
        flip_bit(_chunk_file(container, 3), 99)
        report = repair_container(container, tmp_path / "salvaged")
        assert report.dropped_chunks == [3]
        assert report.salvaged_chunks == [0, 1, 2, 4, 5]
        assert report.records_dropped > 0
        assert 0 < report.salvaged_addresses < report.original_addresses

        salvaged = AtcDecoder(tmp_path / "salvaged")
        recovered = salvaged.read_all()
        assert recovered.size == report.salvaged_addresses
        assert np.array_equal(recovered, golden_addresses()[: recovered.size])
        # the salvage report is carried in the metadata for post-mortem
        salvage = salvaged.metadata["salvage"]
        assert salvage["damaged_chunks"] == [3]
        assert salvage["original_length"] == golden_addresses().size
        # and the result is a *clean* v2 container
        assert scrub_container(tmp_path / "salvaged").ok

    def test_repair_refuses_a_damaged_info_stream(self, container, tmp_path):
        truncate_file(container / "INFO.bz2", 3)
        with pytest.raises(IntegrityError, match="nothing can be salvaged"):
            repair_container(container, tmp_path / "out")

    def test_repairing_a_clean_container_keeps_everything(self, container, tmp_path):
        report = repair_container(container, tmp_path / "copy")
        assert report.dropped_chunks == []
        assert report.records_dropped == 0
        assert report.salvaged_addresses == report.original_addresses
        assert np.array_equal(AtcDecoder(tmp_path / "copy").read_all(), golden_addresses())


class TestScrubStoreAndCache:
    def test_store_entries_get_individual_verdicts(self, tmp_path):
        store = ResultStore(tmp_path)
        good, bad = "aa" * 32, "bb" * 32
        store.put(good, {"metric": 1})
        store.put(bad, {"metric": 2})
        bad_path = tmp_path / f"{bad}.json"
        bad_path.write_text(bad_path.read_text().replace("2", "3"))
        (tmp_path / ("cc" * 32 + ".json")).write_text("{broken")
        (tmp_path / ("dd" * 32 + ".json")).write_text(json.dumps({"legacy": True}))

        scrub = scrub_store(tmp_path)
        statuses = {entry.file.split(".")[0][:2]: entry.status for entry in scrub.entries}
        assert statuses == {
            "aa": "ok",
            "bb": "digest-mismatch",
            "cc": "corrupt",
            "dd": "legacy",
        }
        assert not scrub.ok
        assert [e.status for e in scrub.damaged_entries] == ["digest-mismatch", "corrupt"]

    def test_cache_root_scrubs_index_and_containers(self, tmp_path, container):
        root = tmp_path / "cache"
        (root / "index").mkdir(parents=True)
        ResultStore(root / "index").put("ee" * 32, {"addresses": 9})
        shutil.copytree(container, root / "containers" / "deadbeef")
        report = scrub_cache_root(root)
        assert report.kind == "cache"
        assert report.ok
        flip_bit(root / "containers" / "deadbeef" / "2.bz2", 5)
        assert not scrub_cache_root(root).ok


class TestScrubPathDispatch:
    def test_container_path_dispatches_to_container(self, container):
        report = scrub_path(container)
        assert report.kind == "container" and len(report.containers) == 1

    def test_store_path_dispatches_to_store(self, tmp_path):
        ResultStore(tmp_path).put("ab" * 32, {"x": 1})
        report = scrub_path(tmp_path)
        assert report.kind == "store" and len(report.stores) == 1 and report.ok

    def test_sweep_cache_with_sub_containers_is_a_store(self, tmp_path, container):
        sweep_cache = tmp_path / "sweep-cache"
        ResultStore(sweep_cache).put("ab" * 32, {"x": 1})
        shutil.copytree(container, sweep_cache / "unit_container")
        report = scrub_path(sweep_cache)
        assert report.kind == "store"
        assert len(report.stores) == 1 and len(report.containers) == 1

    def test_cache_root_dispatches_to_cache(self, tmp_path):
        (tmp_path / "index").mkdir()
        (tmp_path / "containers").mkdir()
        assert scrub_path(tmp_path).kind == "cache"

    def test_unrecognised_paths_raise(self, tmp_path):
        with pytest.raises(ContainerError):
            scrub_path(tmp_path / "absent")
        (tmp_path / "empty").mkdir()
        with pytest.raises(ContainerError):
            scrub_path(tmp_path / "empty")
