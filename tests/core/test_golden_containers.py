"""Golden-file regression suite for the on-disk ATC container format.

Small reference containers — lossless and lossy, for each of the gz/bz2/xz
back-ends — are committed under ``tests/data/golden/``.  The tests assert
two directions:

* **encode**: today's encoder, fed the fixed golden input trace, must
  reproduce every committed container file byte for byte; and
* **decode**: today's decoder must read the committed containers and
  produce exactly the expected address sequences.

Together they lock the container layout, the INFO stream, the bytesort
transform, the interval-record serialisation and the byte-translation
tables against silent drift: changing a single byte of the on-disk format
(or of a committed fixture) fails the suite.

The golden input is generated with pure integer arithmetic — no RNG — so
it is identical on every platform, Python and NumPy version.  To
regenerate the fixtures after an *intentional* format change::

    PYTHONPATH=src python tests/core/test_golden_containers.py --regen
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

import numpy as np

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyCodec, LossyConfig

GOLDEN_ROOT = Path(__file__).resolve().parent.parent / "data" / "golden"

#: The back-ends covered by the fixtures (aliases exercise alias lookup too).
GOLDEN_BACKENDS = ("gz", "bz2", "xz")

#: One fixture per (mode, backend): 2 x 3 = 6 committed containers.
GOLDEN_VARIANTS = tuple(
    (mode_name, mode, backend)
    for mode_name, mode in (("lossless", MODE_LOSSLESS), ("lossy", MODE_LOSSY))
    for backend in GOLDEN_BACKENDS
)

_INTERVAL = 500


def golden_addresses() -> np.ndarray:
    """The fixed golden input: 3000 block addresses, RNG-free.

    Six 500-address phases over a 4096-block working set, scrambled with a
    Knuth multiplicative hash so the distribution is stationary (phases
    resemble each other, which makes the lossy encoder emit *imitation*
    records with byte-translation tables — the format's trickiest part).
    Later phases shift the region base so translations are non-trivial.
    """
    pieces = []
    for phase in range(6):
        k = np.arange(_INTERVAL, dtype=np.uint64)
        scrambled = ((k + np.uint64(17 * phase + 1)) * np.uint64(2654435761)) % np.uint64(4096)
        base = np.uint64(0x40_0000 + (phase // 2) * 0x1_0000)
        pieces.append(base + scrambled)
    return np.concatenate(pieces)


def golden_config(backend: str) -> LossyConfig:
    """The fixed codec configuration every golden container was written with."""
    return LossyConfig(
        interval_length=_INTERVAL,
        threshold=0.5,
        chunk_buffer_addresses=_INTERVAL,
        backend=backend,
    )


def golden_directory(mode_name: str, backend: str) -> Path:
    return GOLDEN_ROOT / f"{mode_name}_{backend}"


def golden_v1_directory(mode_name: str, backend: str) -> Path:
    """The committed format-v1 twin of a golden container (legacy reader pin)."""
    return GOLDEN_ROOT / "v1" / f"{mode_name}_{backend}"


def write_golden_container(
    directory: Path, mode: str, backend: str, format_version: int = 2
) -> None:
    """Encode the golden input into ``directory`` (used by tests and --regen)."""
    with AtcEncoder(
        directory, mode=mode, config=golden_config(backend), format_version=format_version
    ) as encoder:
        encoder.code_many(golden_addresses())


def _read_files(directory: Path) -> dict:
    return {entry.name: entry.read_bytes() for entry in sorted(directory.iterdir())}


class TestGoldenContainers:
    def test_fixtures_are_committed(self):
        for mode_name, _, backend in GOLDEN_VARIANTS:
            directory = golden_directory(mode_name, backend)
            assert directory.is_dir(), (
                f"missing golden fixture {directory}; regenerate with "
                "PYTHONPATH=src python tests/core/test_golden_containers.py --regen"
            )

    def test_encoder_reproduces_golden_containers_byte_for_byte(self, tmp_path):
        for mode_name, mode, backend in GOLDEN_VARIANTS:
            fresh = tmp_path / f"{mode_name}_{backend}"
            write_golden_container(fresh, mode, backend)
            expected = _read_files(golden_directory(mode_name, backend))
            actual = _read_files(fresh)
            assert actual.keys() == expected.keys(), (mode_name, backend)
            for name in expected:
                assert actual[name] == expected[name], (
                    f"{mode_name}_{backend}/{name} drifted from the committed golden bytes"
                )

    def test_decoder_reads_golden_lossless_containers_exactly(self):
        for backend in GOLDEN_BACKENDS:
            decoder = AtcDecoder(golden_directory("lossless", backend))
            assert not decoder.is_lossy
            assert np.array_equal(decoder.read_all(), golden_addresses()), backend

    def test_decoder_matches_in_memory_codec_on_golden_lossy_containers(self):
        for backend in GOLDEN_BACKENDS:
            decoder = AtcDecoder(golden_directory("lossy", backend))
            assert decoder.is_lossy
            codec = LossyCodec(golden_config(backend))
            expected = codec.decompress(codec.compress(golden_addresses()))
            assert np.array_equal(decoder.read_all(), expected), backend

    def test_golden_lossy_containers_exercise_imitation_records(self):
        """The fixtures must cover the imitate-record layout, not just chunks."""
        for backend in GOLDEN_BACKENDS:
            decoder = AtcDecoder(golden_directory("lossy", backend))
            kinds = {record.kind for record in decoder.records}
            assert kinds == {"chunk", "imitate"}, backend

    def test_golden_metadata_is_stable(self):
        for mode_name, _, backend in GOLDEN_VARIANTS:
            decoder = AtcDecoder(golden_directory(mode_name, backend))
            assert decoder.metadata["format"] == "atc"
            assert decoder.metadata["format_version"] == 2
            assert decoder.metadata["mode"] == mode_name
            assert decoder.metadata["original_length"] == golden_addresses().size
            digests = decoder.metadata["chunk_digests"]
            assert set(digests) == {str(i) for i in decoder.container.chunk_ids()}
            assert all(len(d) == 16 for d in digests.values())


class TestGoldenV1Containers:
    """The format-v1 twins: the legacy layout stays pinned byte-for-byte.

    Format v2 is the default, but v1 must remain both writable (for
    interchange with pre-v2 readers) and readable — these fixtures are the
    exact bytes the encoder produced before the integrity layer existed.
    """

    def test_v1_fixtures_are_committed(self):
        for mode_name, _, backend in GOLDEN_VARIANTS:
            assert golden_v1_directory(mode_name, backend).is_dir()

    def test_v1_encoder_reproduces_v1_containers_byte_for_byte(self, tmp_path):
        for mode_name, mode, backend in GOLDEN_VARIANTS:
            fresh = tmp_path / f"{mode_name}_{backend}"
            write_golden_container(fresh, mode, backend, format_version=1)
            expected = _read_files(golden_v1_directory(mode_name, backend))
            actual = _read_files(fresh)
            assert actual.keys() == expected.keys(), (mode_name, backend)
            for name in expected:
                assert actual[name] == expected[name], (
                    f"v1/{mode_name}_{backend}/{name} drifted from the committed bytes"
                )

    def test_v1_containers_decode_identically_to_v2(self):
        for mode_name, _, backend in GOLDEN_VARIANTS:
            v1 = AtcDecoder(golden_v1_directory(mode_name, backend))
            v2 = AtcDecoder(golden_directory(mode_name, backend))
            assert v1.metadata["format_version"] == 1
            assert "chunk_digests" not in v1.metadata
            assert np.array_equal(v1.read_all(), v2.read_all()), (mode_name, backend)

    def test_v1_and_v2_chunk_files_are_identical(self):
        """The integrity layer changes INFO only — chunk payloads are untouched."""
        for mode_name, _, backend in GOLDEN_VARIANTS:
            v1 = _read_files(golden_v1_directory(mode_name, backend))
            v2 = _read_files(golden_directory(mode_name, backend))
            assert v1.keys() == v2.keys()
            for name in v1:
                if not name.startswith("INFO."):
                    assert v1[name] == v2[name], (mode_name, backend, name)


def _regenerate() -> None:
    for mode_name, mode, backend in GOLDEN_VARIANTS:
        for directory, version in (
            (golden_directory(mode_name, backend), 2),
            (golden_v1_directory(mode_name, backend), 1),
        ):
            if directory.exists():
                shutil.rmtree(directory)
            write_golden_container(directory, mode, backend, format_version=version)
            print(f"wrote {directory} (format v{version})")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
