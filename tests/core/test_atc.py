"""Tests of the streaming ATC encoder/decoder and the atc_open facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.atc import (
    MODE_DECODE,
    MODE_LOSSLESS,
    MODE_LOSSY,
    AtcDecoder,
    AtcEncoder,
    atc_open,
    compress_trace,
    decompress_trace,
)
from repro.core.lossy import LossyConfig
from repro.errors import CodecError, ConfigurationError


@pytest.fixture
def small_config() -> LossyConfig:
    return LossyConfig(interval_length=5_000, chunk_buffer_addresses=5_000)


class TestAtcEncoderLossless:
    def test_roundtrip_streaming_one_by_one(self, tmp_path, sequential_addresses, small_config):
        directory = tmp_path / "trace"
        with AtcEncoder(directory, mode=MODE_LOSSLESS, config=small_config) as encoder:
            for value in sequential_addresses[:2_000].tolist():
                encoder.code(value)
        recovered = decompress_trace(directory)
        assert np.array_equal(recovered, sequential_addresses[:2_000])

    def test_roundtrip_bulk(self, tmp_path, random_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(random_addresses, directory, mode=MODE_LOSSLESS, config=small_config)
        assert np.array_equal(decoder.read_all(), random_addresses)

    def test_lossless_mode_is_exact_even_on_random_data(self, tmp_path, random_addresses, small_config):
        directory = tmp_path / "trace"
        compress_trace(random_addresses, directory, mode=MODE_LOSSLESS, config=small_config)
        assert np.array_equal(decompress_trace(directory), random_addresses)

    def test_each_buffer_becomes_a_chunk(self, tmp_path, sequential_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(
            sequential_addresses, directory, mode=MODE_LOSSLESS, config=small_config
        )
        expected_chunks = -(-sequential_addresses.size // small_config.chunk_buffer_addresses)
        assert len(decoder.container.chunk_ids()) == expected_chunks
        assert all(record.kind == "chunk" for record in decoder.records)


class TestAtcEncoderLossy:
    def test_roundtrip_length_preserved(self, tmp_path, working_set_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=small_config)
        approx = decoder.read_all()
        assert approx.size == working_set_addresses.size

    def test_stationary_trace_stores_one_chunk(self, tmp_path, working_set_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=small_config)
        assert len(decoder.container.chunk_ids()) == 1
        assert decoder.is_lossy

    def test_streaming_matches_batch_codec(self, tmp_path, working_set_addresses, small_config):
        from repro.core.lossy import LossyCodec

        directory = tmp_path / "trace"
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=small_config)
        batch = LossyCodec(small_config).compress(working_set_addresses)
        batch_approx = LossyCodec(small_config).decompress(batch)
        assert np.array_equal(decoder.read_all(), batch_approx)

    def test_metadata_recorded(self, tmp_path, working_set_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=small_config)
        metadata = decoder.metadata
        assert metadata["mode"] == "lossy"
        assert metadata["original_length"] == working_set_addresses.size
        assert metadata["interval_length"] == small_config.interval_length
        assert metadata["threshold"] == pytest.approx(small_config.threshold)

    def test_bits_per_address_positive(self, tmp_path, working_set_addresses, small_config):
        directory = tmp_path / "trace"
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=small_config)
        assert 0.0 < decoder.bits_per_address() < 64.0

    def test_code_after_close_rejected(self, tmp_path, small_config):
        encoder = AtcEncoder(tmp_path / "trace", mode=MODE_LOSSY, config=small_config)
        encoder.code(1)
        encoder.close()
        with pytest.raises(CodecError):
            encoder.code(2)

    def test_close_is_idempotent(self, tmp_path, small_config):
        encoder = AtcEncoder(tmp_path / "trace", mode=MODE_LOSSY, config=small_config)
        encoder.code_many(np.arange(100, dtype=np.uint64))
        encoder.close()
        encoder.close()
        assert decompress_trace(tmp_path / "trace").size == 100

    def test_empty_container(self, tmp_path, small_config):
        with AtcEncoder(tmp_path / "trace", mode=MODE_LOSSY, config=small_config):
            pass
        assert decompress_trace(tmp_path / "trace").size == 0


class TestAtcOpenFacade:
    def test_atc_open_modes(self, tmp_path, small_config):
        encoder = atc_open(tmp_path / "trace", MODE_LOSSY, config=small_config)
        assert isinstance(encoder, AtcEncoder)
        encoder.code_many(np.arange(1_000, dtype=np.uint64))
        encoder.close()
        decoder = atc_open(tmp_path / "trace", MODE_DECODE)
        assert isinstance(decoder, AtcDecoder)
        assert decoder.read_all().size == 1_000

    def test_atc_open_invalid_mode(self, tmp_path):
        with pytest.raises(ConfigurationError):
            atc_open(tmp_path / "trace", "x")

    def test_iteration_protocol(self, tmp_path, small_config):
        encoder = atc_open(tmp_path / "trace", MODE_LOSSLESS, config=small_config)
        values = np.arange(500, dtype=np.uint64)
        encoder.code_many(values)
        encoder.close()
        decoder = atc_open(tmp_path / "trace", MODE_DECODE)
        assert list(decoder) == values.tolist()

    def test_figure8_random_values_single_chunk(self, tmp_path, rng):
        """Figure 8: i.i.d. random values -> one chunk, ratio = #intervals."""
        values = rng.integers(0, 1 << 63, size=50_000, dtype=np.uint64)
        config = LossyConfig(interval_length=5_000, chunk_buffer_addresses=5_000)
        decoder = compress_trace(values, tmp_path / "foobar", mode=MODE_LOSSY, config=config)
        assert len(decoder.container.chunk_ids()) == 1
        approx = decoder.read_all()
        assert approx.size == values.size
        # Compression ratio approaches the number of intervals (10 here).
        ratio = (values.size * 8) / decoder.compressed_bytes()
        assert ratio > 5.0
