"""Tests of the lossy-trace diagnostic reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, compress_trace
from repro.core.inspect import analyze_container, analyze_lossy
from repro.core.lossy import LossyCodec, LossyConfig


@pytest.fixture(scope="module")
def stationary_compressed():
    rng = np.random.default_rng(42)
    trace = rng.integers(0, 2_048, size=50_000, dtype=np.uint64) + np.uint64(1 << 24)
    config = LossyConfig(interval_length=10_000)
    return trace, LossyCodec(config).compress(trace)


class TestAnalyzeLossy:
    def test_counts_match_compression_result(self, stationary_compressed):
        trace, compressed = stationary_compressed
        report = analyze_lossy(compressed)
        assert report.num_intervals == compressed.num_intervals
        assert report.num_chunks == compressed.num_chunks
        assert report.num_imitations == compressed.num_intervals - compressed.num_chunks
        assert report.original_length == trace.size

    def test_reuse_counts_cover_all_intervals(self, stationary_compressed):
        _, compressed = stationary_compressed
        report = analyze_lossy(compressed)
        assert sum(report.chunk_reuse_counts.values()) == report.num_intervals
        assert report.most_reused_chunk == 0

    def test_bits_per_address_consistent(self, stationary_compressed):
        _, compressed = stationary_compressed
        report = analyze_lossy(compressed)
        assert report.bits_per_address == pytest.approx(compressed.bits_per_address(), rel=0.01)

    def test_imitation_fraction(self, stationary_compressed):
        _, compressed = stationary_compressed
        report = analyze_lossy(compressed)
        assert report.imitation_fraction == pytest.approx(
            (compressed.num_intervals - compressed.num_chunks) / compressed.num_intervals
        )

    def test_translated_byte_histogram_bounded(self, stationary_compressed):
        _, compressed = stationary_compressed
        report = analyze_lossy(compressed)
        assert len(report.translated_byte_histogram) == 8
        for count in report.translated_byte_histogram:
            assert 0 <= count <= report.num_imitations

    def test_summary_lines_render(self, stationary_compressed):
        _, compressed = stationary_compressed
        lines = analyze_lossy(compressed).summary_lines()
        assert any("chunks stored" in line for line in lines)
        assert any("bits per address" in line for line in lines)

    def test_empty_trace_report(self):
        compressed = LossyCodec(LossyConfig(interval_length=1_000)).compress(
            np.empty(0, dtype=np.uint64)
        )
        report = analyze_lossy(compressed)
        assert report.num_intervals == 0
        assert report.bits_per_address == 0.0
        assert report.most_reused_chunk is None


class TestAnalyzeContainer:
    def test_container_report_matches_in_memory(self, tmp_path, stationary_compressed):
        trace, compressed = stationary_compressed
        config = compressed.config
        compress_trace(trace, tmp_path / "c", mode=MODE_LOSSY, config=config)
        report = analyze_container(tmp_path / "c")
        in_memory = analyze_lossy(compressed)
        assert report.num_intervals == in_memory.num_intervals
        assert report.num_chunks == in_memory.num_chunks
        assert report.original_length == in_memory.original_length

    def test_lossless_container_report(self, tmp_path):
        trace = np.arange(20_000, dtype=np.uint64)
        config = LossyConfig(chunk_buffer_addresses=5_000)
        compress_trace(trace, tmp_path / "c", mode=MODE_LOSSLESS, config=config)
        report = analyze_container(tmp_path / "c")
        assert report.num_imitations == 0
        assert report.num_chunks == 4
        assert report.imitation_fraction == 0.0
