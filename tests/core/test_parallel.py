"""Tests of the parallel chunk pipeline and its byte-identity invariant."""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atc import (
    MODE_LOSSLESS,
    MODE_LOSSY,
    AtcDecoder,
    compress_trace,
    decompress_trace,
)
from repro.core.lossless import LosslessCodec
from repro.core.lossy import LossyCodec, LossyConfig
from repro.core.parallel import OrderedChunkWriter, map_ordered, resolve_workers
from repro.errors import CodecError, ConfigurationError


def _container_digest(directory) -> str:
    digest = hashlib.sha256()
    for entry in sorted(Path(directory).iterdir()):
        digest.update(entry.name.encode())
        digest.update(entry.read_bytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def phased_trace() -> np.ndarray:
    """A multi-phase trace that produces several chunks in both modes."""
    rng = np.random.default_rng(11)
    pieces = []
    for phase in range(6):
        base = (phase % 3) * 0x1000_0000
        pieces.append(rng.integers(base, base + 50_000, size=30_000, dtype=np.uint64))
    return np.concatenate(pieces)


def _config(workers: int) -> LossyConfig:
    return LossyConfig(interval_length=20_000, chunk_buffer_addresses=20_000, workers=workers)


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_mean_cpu_count(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) == resolve_workers(0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


class TestMapOrdered:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_preserves_order(self, workers):
        items = list(range(50))
        assert map_ordered(lambda value: value * 2, items, workers=workers) == [
            value * 2 for value in items
        ]

    def test_propagates_errors(self):
        def boom(value):
            raise ValueError(value)

        with pytest.raises(ValueError):
            map_ordered(boom, [1, 2, 3], workers=4)


class TestOrderedChunkWriter:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_writes_in_submission_order(self, workers):
        written = []
        with OrderedChunkWriter(lambda cid, payload: written.append((cid, payload)), workers) as writer:
            for chunk_id in range(20):
                writer.submit(chunk_id, lambda chunk_id=chunk_id: bytes([chunk_id]))
        assert written == [(chunk_id, bytes([chunk_id])) for chunk_id in range(20)]

    def test_bounded_pending(self):
        written = []
        writer = OrderedChunkWriter(lambda cid, payload: written.append(cid), workers=2, max_pending=3)
        for chunk_id in range(10):
            writer.submit(chunk_id, lambda chunk_id=chunk_id: bytes([chunk_id]))
            assert len(writer._pending) <= 3
        writer.close()
        assert written == list(range(10))

    def test_submit_after_close_rejected(self):
        writer = OrderedChunkWriter(lambda cid, payload: None, workers=1)
        writer.close()
        with pytest.raises(ConfigurationError):
            writer.submit(0, lambda: b"")

    def test_task_error_surfaces_on_close(self):
        def boom():
            raise RuntimeError("compression failed")

        writer = OrderedChunkWriter(lambda cid, payload: None, workers=2)
        writer.submit(0, boom)
        with pytest.raises(RuntimeError):
            writer.close()


class TestEncoderErrorPath:
    def test_close_after_aborted_context_writes_no_info(self, tmp_path, phased_trace):
        """An exception inside the context must not let a later close()
        publish an INFO stream referencing cancelled (unwritten) chunks."""
        from repro.core.atc import AtcEncoder
        from repro.core.container import AtcContainer

        directory = tmp_path / "container"
        encoder = AtcEncoder(directory, mode=MODE_LOSSLESS, config=_config(4))
        with pytest.raises(RuntimeError):
            with encoder:
                encoder.code_many(phased_trace[:40_000])
                raise RuntimeError("boom")
        encoder.close()  # must be a no-op, not a corrupt-container write
        assert not AtcContainer(directory).exists()
        with pytest.raises(CodecError):
            encoder.code(1)


class TestContainerDeterminism:
    @pytest.mark.parametrize("mode", [MODE_LOSSY, MODE_LOSSLESS])
    def test_parallel_container_is_byte_identical(self, tmp_path, phased_trace, mode):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        compress_trace(phased_trace, serial, mode=mode, config=_config(1))
        compress_trace(phased_trace, parallel, mode=mode, config=_config(4))
        serial_files = sorted(entry.name for entry in serial.iterdir())
        parallel_files = sorted(entry.name for entry in parallel.iterdir())
        assert serial_files == parallel_files
        assert len(serial_files) > 2  # several chunks, or there was nothing to parallelise
        assert _container_digest(serial) == _container_digest(parallel)

    @pytest.mark.parametrize("mode", [MODE_LOSSY, MODE_LOSSLESS])
    def test_parallel_decode_matches_serial(self, tmp_path, phased_trace, mode):
        directory = tmp_path / "container"
        compress_trace(phased_trace, directory, mode=mode, config=_config(2))
        serial = decompress_trace(directory, workers=1)
        parallel = decompress_trace(directory, workers=4)
        assert np.array_equal(serial, parallel)
        if mode == MODE_LOSSLESS:
            assert np.array_equal(serial, phased_trace)

    def test_in_memory_lossy_codec_matches_parallel(self, phased_trace):
        serial = LossyCodec(_config(1)).compress(phased_trace)
        parallel = LossyCodec(_config(4)).compress(phased_trace)
        assert serial.chunks == parallel.chunks
        assert len(serial.records) == len(parallel.records)
        assert np.array_equal(
            LossyCodec(_config(1)).decompress(serial), LossyCodec(_config(4)).decompress(parallel)
        )

    def test_compress_many_matches_serial_compress(self, phased_trace):
        codec = LosslessCodec(buffer_addresses=10_000)
        intervals = [phased_trace[start : start + 25_000] for start in range(0, 100_000, 25_000)]
        serial = [codec.compress(interval) for interval in intervals]
        assert codec.compress_many(intervals, workers=4) == serial


class TestDecoderChunkCache:
    def test_parallel_read_all_with_tiny_cache_matches_serial(self, tmp_path, phased_trace):
        directory = tmp_path / "container"
        compress_trace(phased_trace, directory, mode=MODE_LOSSLESS, config=_config(1))
        serial = AtcDecoder(directory, workers=1).read_all()
        parallel = AtcDecoder(directory, workers=4, cache_chunks=1).read_all()
        assert np.array_equal(serial, parallel)

    def test_read_all_loads_each_chunk_once_even_serially(self, tmp_path, phased_trace):
        directory = tmp_path / "container"
        compress_trace(phased_trace, directory, mode=MODE_LOSSLESS, config=_config(1))
        decoder = AtcDecoder(directory, workers=1, cache_chunks=1)
        loads = []
        original = decoder._load_chunk

        def counting_load(chunk_id):
            loads.append(chunk_id)
            return original(chunk_id)

        decoder._load_chunk = counting_load
        assert np.array_equal(decoder.read_all(), phased_trace)
        assert len(loads) == len(set(loads))  # no chunk decoded twice

    def test_cache_is_bounded(self, tmp_path, phased_trace):
        directory = tmp_path / "container"
        compress_trace(phased_trace, directory, mode=MODE_LOSSLESS, config=_config(1))
        decoder = AtcDecoder(directory, cache_chunks=2)
        decoder.read_all()
        assert len(decoder._chunk_cache) <= decoder._cache_capacity

    def test_cache_capacity_validated(self, tmp_path, phased_trace):
        directory = tmp_path / "container"
        compress_trace(phased_trace[:30_000], directory, mode=MODE_LOSSLESS, config=_config(1))
        with pytest.raises(ConfigurationError):
            AtcDecoder(directory, cache_chunks=0)

    def test_lossy_imitations_reuse_cached_chunk(self, tmp_path, working_set_addresses):
        directory = tmp_path / "container"
        config = LossyConfig(interval_length=5_000, chunk_buffer_addresses=5_000)
        decoder = compress_trace(working_set_addresses, directory, mode=MODE_LOSSY, config=config)
        # Streaming decode goes through the LRU cache: a stationary trace
        # stores one chunk and every interval reuses it.
        total = sum(int(piece.size) for piece in decoder.iter_intervals())
        assert total == working_set_addresses.size
        assert len(decoder._chunk_cache) == 1


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=400),
    interval_length=st.integers(min_value=1, max_value=97),
    workers=st.sampled_from([2, 3]),
)
def test_parallel_roundtrip_property(addresses, interval_length, workers):
    """Lossless parallel encode/decode is exact for arbitrary traces."""
    config = LossyConfig(
        interval_length=interval_length,
        chunk_buffer_addresses=interval_length,
        backend="zlib",
        workers=workers,
    )
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "container"
        compress_trace(addresses, directory, mode=MODE_LOSSLESS, config=config)
        recovered = decompress_trace(directory, workers=workers)
    assert recovered.tolist() == addresses
