"""Tests of the lossy phase-based codec (paper Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lossy import (
    LossyCodec,
    LossyConfig,
    LossyIntervalEncoder,
    lossy_compress,
    lossy_decompress,
)
from repro.errors import ConfigurationError
from repro.traces import synthetic


class TestLossyConfig:
    def test_defaults_are_valid(self):
        config = LossyConfig()
        assert config.threshold == pytest.approx(0.1)

    def test_paper_defaults(self):
        config = LossyConfig.paper_defaults()
        assert config.interval_length == 10_000_000
        assert config.threshold == pytest.approx(0.1)

    def test_paper_defaults_with_override(self):
        config = LossyConfig.paper_defaults(interval_length=1_000)
        assert config.interval_length == 1_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_length": 0},
            {"interval_length": -5},
            {"threshold": -0.1},
            {"threshold": 2.5},
            {"chunk_buffer_addresses": 0},
            {"backend": "no-such-backend"},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ConfigurationError):
            LossyConfig(**kwargs)


class TestLossyStructure:
    def test_first_interval_is_always_a_chunk(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(working_set_addresses, config)
        assert compressed.records[0].kind == "chunk"
        assert compressed.records[0].chunk_id == 0

    def test_length_preserved(self, working_set_addresses):
        config = LossyConfig(interval_length=7_000)
        compressed = lossy_compress(working_set_addresses, config)
        approx = lossy_decompress(compressed)
        assert approx.size == working_set_addresses.size

    def test_number_of_intervals(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(working_set_addresses, config)
        expected = -(-working_set_addresses.size // 10_000)
        assert compressed.num_intervals == expected
        assert sum(record.length for record in compressed.records) == working_set_addresses.size

    def test_stationary_trace_stores_single_chunk(self, working_set_addresses):
        """The Figure 8 behaviour: all intervals look like the first one."""
        config = LossyConfig(interval_length=10_000, threshold=0.1)
        compressed = lossy_compress(working_set_addresses, config)
        assert compressed.num_chunks == 1
        assert all(record.kind == "imitate" for record in compressed.records[1:])

    def test_unstable_trace_stores_many_chunks(self, rng):
        """Intervals with genuinely different structure must become chunks."""
        pieces = []
        pieces.append(synthetic.sequential_stream(5_000, base=0x1000_0000, stride=64))
        pieces.append(synthetic.random_working_set(5_000, working_set_blocks=100, seed=1))
        pieces.append(synthetic.random_working_set(5_000, working_set_blocks=200_000, seed=2))
        pieces.append(synthetic.pointer_chase(5_000, num_nodes=64, seed=3))
        trace = synthetic.phased_stream(pieces) >> np.uint64(6)
        config = LossyConfig(interval_length=5_000, threshold=0.05)
        compressed = lossy_compress(trace, config)
        assert compressed.num_chunks >= 3

    def test_zero_threshold_disables_imitation_for_nonidentical_intervals(self, rng):
        trace = rng.integers(0, 1 << 40, size=40_000, dtype=np.uint64)
        config = LossyConfig(interval_length=10_000, threshold=0.0)
        compressed = lossy_compress(trace, config)
        assert compressed.num_chunks == compressed.num_intervals

    def test_empty_trace(self):
        compressed = lossy_compress(np.empty(0, dtype=np.uint64))
        assert compressed.num_chunks == 0
        assert lossy_decompress(compressed).size == 0

    def test_trace_shorter_than_interval(self, rng):
        trace = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(trace, config)
        assert compressed.num_chunks == 1
        assert np.array_equal(lossy_decompress(compressed), trace)

    def test_tail_interval_handled(self, rng):
        trace = rng.integers(0, 4096, size=25_000, dtype=np.uint64)
        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(trace, config)
        assert compressed.records[-1].length == 5_000
        assert lossy_decompress(compressed).size == 25_000

    def test_bounded_chunk_table_still_decodes(self, rng):
        trace = rng.integers(0, 1 << 40, size=60_000, dtype=np.uint64)
        config = LossyConfig(interval_length=5_000, threshold=0.0, max_table_entries=2)
        compressed = lossy_compress(trace, config)
        assert np.array_equal(lossy_decompress(compressed), trace)


class TestLossyFidelity:
    def test_chunk_intervals_are_exact(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        codec = LossyCodec(config)
        compressed = codec.compress(working_set_addresses)
        approx = codec.decompress(compressed)
        first_chunk_length = compressed.records[0].length
        assert np.array_equal(approx[:first_chunk_length], working_set_addresses[:first_chunk_length])

    def test_distinct_address_count_roughly_preserved(self, working_set_addresses):
        """The myopic-interval fix: footprint must not collapse."""
        config = LossyConfig(interval_length=10_000)
        codec = LossyCodec(config)
        approx = codec.decompress(codec.compress(working_set_addresses))
        exact_distinct = np.unique(working_set_addresses).size
        approx_distinct = np.unique(approx).size
        assert approx_distinct >= 0.8 * exact_distinct

    def test_translation_disabled_shrinks_footprint(self, rng):
        """Figure 4: without byte translation the footprint collapses."""
        # Two phases touching disjoint regions of the same size/structure.
        phase_a = rng.integers(0, 4096, size=20_000, dtype=np.uint64) + np.uint64(1 << 20)
        phase_b = rng.integers(0, 4096, size=20_000, dtype=np.uint64) + np.uint64(1 << 21)
        trace = np.concatenate([phase_a, phase_b])
        with_translation = LossyCodec(LossyConfig(interval_length=20_000, enable_translation=True))
        without_translation = LossyCodec(
            LossyConfig(interval_length=20_000, enable_translation=False)
        )
        approx_with = with_translation.decompress(with_translation.compress(trace))
        approx_without = without_translation.decompress(without_translation.compress(trace))
        exact_distinct = np.unique(trace).size
        assert np.unique(approx_with).size >= 0.8 * exact_distinct
        assert np.unique(approx_without).size <= 0.6 * exact_distinct

    def test_lossy_bpa_not_worse_than_lossless_on_stationary_trace(self, working_set_addresses):
        from repro.core.lossless import lossless_bits_per_address

        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(working_set_addresses, config)
        lossless_bpa = lossless_bits_per_address(working_set_addresses, buffer_addresses=10_000)
        assert compressed.bits_per_address() < lossless_bpa

    def test_translations_recorded_only_for_imitations(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        compressed = lossy_compress(working_set_addresses, config)
        for record in compressed.records:
            if record.kind == "chunk":
                assert record.translations is None
            else:
                assert record.translations.shape == (8, 256)
                assert record.active_bytes.shape == (8,)


class TestLossyIntervalEncoder:
    def test_incremental_matches_batch(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        batch = LossyCodec(config).compress(working_set_addresses)
        encoder = LossyIntervalEncoder(config)
        incremental_kinds = []
        for start in range(0, working_set_addresses.size, config.interval_length):
            record, _ = encoder.encode_interval(
                working_set_addresses[start : start + config.interval_length]
            )
            incremental_kinds.append((record.kind, record.chunk_id))
        assert incremental_kinds == [(r.kind, r.chunk_id) for r in batch.records]

    def test_chunk_payloads_only_for_new_chunks(self, working_set_addresses):
        config = LossyConfig(interval_length=10_000)
        encoder = LossyIntervalEncoder(config)
        payloads = 0
        for start in range(0, working_set_addresses.size, config.interval_length):
            _, payload = encoder.encode_interval(
                working_set_addresses[start : start + config.interval_length]
            )
            if payload is not None:
                payloads += 1
        assert payloads == encoder.num_chunks == 1
