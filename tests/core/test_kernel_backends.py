"""Equivalence suite for the compiled/multicore kernel backend.

The NumPy kernels are the repository's bit-identity oracles; every other
way of running the hot loops must reproduce them byte for byte.  This
module pins that contract for the three backends introduced by the
``REPRO_KERNEL_BACKEND`` layer:

* **resolution** — ``auto`` silently falls back to NumPy when numba is
  absent, explicit ``numba`` without an install is a configuration error,
  unknown names are rejected (spec argument and environment variable
  alike);
* **bytesort** — the nopython-style loop nests that numba would compile
  (:func:`repro.core.kernel_backends._bytesort_forward` / ``_backward``)
  are run as plain Python against the NumPy ``argsort`` oracle, across
  window sizes {1, 7, 4096} and a hypothesis sweep — so the *algorithm*
  is proven equivalent even on machines with no JIT;
* **sharded cache kernel** — :func:`simulate_batch_sharded` agrees with
  :func:`simulate_batch` on hits, depths and final stacks for every
  executor strategy, carried-in stacks, FIFO, and per-row ways; and it
  degrades to the plain kernel (still correct) with one worker or a
  sub-threshold batch;
* **bulk codec window** — :func:`repro.core.parallel.imap_ordered`
  consumes its input through a bounded window (never materialising the
  stream), and ``compress_many`` stays byte-identical to the serial list
  comprehension for generator inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.kernel_backends as kernel_backends
from repro.core.bytesort import bytesort_inverse_window, bytesort_window
from repro.core.kernel_backends import (
    KERNEL_BACKEND_NAMES,
    _bytesort_backward,
    _bytesort_forward,
    compiled_bytesort,
    resolve_kernel_backend,
)
from repro.core.kernels import SHARD_MIN_REFS, simulate_batch, simulate_batch_sharded
from repro.core.lossless import LosslessCodec
from repro.core.parallel import ProcessExecutor, imap_ordered
from repro.errors import ConfigurationError

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def process_executor():
    """One process pool shared by every cell (startup amortised)."""
    with ProcessExecutor(2) as executor:
        yield executor


class TestBackendResolution:
    def test_names_registry(self):
        assert KERNEL_BACKEND_NAMES == ("auto", "numpy", "numba")

    def test_numpy_is_always_available(self):
        assert resolve_kernel_backend("numpy") == "numpy"
        assert compiled_bytesort("numpy") is None

    def test_auto_without_numba_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(kernel_backends, "_NUMBA_PROBE", False)
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert resolve_kernel_backend("auto") == "numpy"
        assert resolve_kernel_backend(None) == "numpy"
        assert compiled_bytesort(None) is None

    def test_auto_with_numba_selects_the_jit(self, monkeypatch):
        monkeypatch.setattr(kernel_backends, "_NUMBA_PROBE", True)
        assert resolve_kernel_backend("auto") == "numba"

    def test_environment_variable_is_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert resolve_kernel_backend(None) == "numpy"

    def test_explicit_numba_without_install_is_an_error(self, monkeypatch):
        monkeypatch.setattr(kernel_backends, "_NUMBA_PROBE", False)
        with pytest.raises(ConfigurationError, match="numba is not installed"):
            resolve_kernel_backend("numba")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        with pytest.raises(ConfigurationError, match="numba is not installed"):
            resolve_kernel_backend(None)

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_kernel_backend("fortran")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_kernel_backend(None)


def _numpy_oracle_window(values: np.ndarray) -> bytes:
    """The NumPy forward transform, with any compiled path forced off."""
    count = int(values.size)
    columns = values.view(np.uint8).reshape(count, 8)
    out = np.empty((8, count), dtype=np.uint8)
    order = np.arange(count)
    for block_index in range(8):
        position = 7 - block_index
        column = columns[order, position]
        out[block_index] = column
        if position:
            order = order[np.argsort(column, kind="stable")]
    return out.tobytes()


def _run_forward(values: np.ndarray) -> bytes:
    count = int(values.size)
    columns = np.ascontiguousarray(values.view(np.uint8).reshape(count, 8))
    out = np.empty((8, count), dtype=np.uint8)
    _bytesort_forward(columns, out)
    return out.tobytes()


def _run_backward(payload: bytes) -> np.ndarray:
    count = len(payload) // 8
    blocks = np.ascontiguousarray(np.frombuffer(payload, dtype=np.uint8).reshape(8, count))
    columns = np.empty((count, 8), dtype=np.uint8)
    _bytesort_backward(blocks, columns)
    return columns.view("<u8").reshape(count).copy()


def _synthetic_window(count: int) -> np.ndarray:
    """RNG-free addresses with repeated bytes (ties exercise stability)."""
    k = np.arange(count, dtype=np.uint64)
    return ((k * np.uint64(2654435761)) ^ (k >> np.uint64(3))) % np.uint64(65536) + np.uint64(
        0x40_0000
    )


class TestCompiledBytesortAlgorithm:
    @pytest.mark.parametrize("count", [1, 7, 4096])
    def test_forward_matches_numpy_oracle(self, count):
        values = _synthetic_window(count)
        expected = _numpy_oracle_window(values)
        assert _run_forward(values) == expected
        # and the public entry point (whatever backend resolved) agrees too
        assert bytesort_window(values) == expected

    @pytest.mark.parametrize("count", [1, 7, 4096])
    def test_backward_round_trips(self, count):
        values = _synthetic_window(count)
        payload = _numpy_oracle_window(values)
        assert np.array_equal(_run_backward(payload), values)
        assert np.array_equal(bytesort_inverse_window(payload), values)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=200))
    def test_forward_equivalence_property(self, values):
        array = np.array(values, dtype=np.uint64)
        expected = _numpy_oracle_window(array)
        assert _run_forward(array) == expected
        assert np.array_equal(_run_backward(expected), array)


def _sharded_trace(count: int, rows: int = 16):
    index = np.arange(count, dtype=np.uint64)
    blocks = ((index * np.uint64(2654435761)) ^ (index >> np.uint64(5))) % np.uint64(4096)
    row_ids = (index % np.uint64(rows)).astype(np.int64)
    return blocks, row_ids


def _assert_results_equal(sharded, plain):
    assert np.array_equal(sharded.hits, plain.hits)
    if plain.depths is None:
        assert sharded.depths is None
    else:
        assert np.array_equal(sharded.depths, plain.depths)
    assert {rid: list(stack) for rid, stack in sharded.final_stacks.items()} == {
        rid: list(stack) for rid, stack in plain.final_stacks.items()
    }


class TestShardedKernelEquivalence:
    @pytest.mark.parametrize("name", EXECUTORS)
    def test_lru_with_depths(self, name, process_executor):
        blocks, rows = _sharded_trace(SHARD_MIN_REFS)
        executor = process_executor if name == "process" else name
        plain = simulate_batch(blocks, rows, 7, 4, "lru", want_depths=True)
        sharded = simulate_batch_sharded(
            blocks, rows, 7, 4, "lru", want_depths=True, workers=2, executor=executor
        )
        _assert_results_equal(sharded, plain)

    @pytest.mark.parametrize("name", EXECUTORS)
    def test_fifo(self, name, process_executor):
        blocks, rows = _sharded_trace(SHARD_MIN_REFS)
        executor = process_executor if name == "process" else name
        plain = simulate_batch(blocks, rows, 7, 2, "fifo")
        sharded = simulate_batch_sharded(blocks, rows, 7, 2, "fifo", workers=2, executor=executor)
        _assert_results_equal(sharded, plain)

    def test_per_row_ways_array(self, process_executor):
        blocks, rows = _sharded_trace(SHARD_MIN_REFS)
        ways = (np.arange(16, dtype=np.int64) % 3) + 1
        plain = simulate_batch(blocks, rows, 7, ways)
        sharded = simulate_batch_sharded(
            blocks, rows, 7, ways, workers=2, executor=process_executor
        )
        _assert_results_equal(sharded, plain)

    def test_carried_in_stacks(self, process_executor):
        blocks, rows = _sharded_trace(2 * SHARD_MIN_REFS)
        half = SHARD_MIN_REFS
        warm = simulate_batch(blocks[:half], rows[:half], 7, 4)
        # initial_stacks carries bare block orders (stamps are per-batch)
        carry = {rid: [block for block, _ in stack] for rid, stack in warm.final_stacks.items()}
        plain = simulate_batch(blocks[half:], rows[half:], 7, 4, "lru", carry)
        sharded = simulate_batch_sharded(
            blocks[half:],
            rows[half:],
            7,
            4,
            "lru",
            carry,
            workers=2,
            executor=process_executor,
        )
        _assert_results_equal(sharded, plain)

    def test_single_worker_degrades_to_plain_kernel(self):
        # On a one-CPU box (or workers=1) sharding cannot pay; the call
        # must fall back to the oracle kernel, not fail or drift.
        blocks, rows = _sharded_trace(SHARD_MIN_REFS)
        plain = simulate_batch(blocks, rows, 7, 4)
        sharded = simulate_batch_sharded(blocks, rows, 7, 4, workers=1)
        _assert_results_equal(sharded, plain)

    def test_sub_threshold_batch_falls_back(self, process_executor):
        blocks, rows = _sharded_trace(SHARD_MIN_REFS // 4)
        plain = simulate_batch(blocks, rows, 7, 4)
        sharded = simulate_batch_sharded(
            blocks, rows, 7, 4, workers=2, executor=process_executor
        )
        _assert_results_equal(sharded, plain)


class TestBulkCodecWindow:
    def test_imap_ordered_serial_pulls_one_at_a_time(self):
        state = {"pulled": 0, "yielded": 0}

        def items():
            for value in range(32):
                state["pulled"] += 1
                assert state["pulled"] <= state["yielded"] + 1
                yield value

        results = []
        for value in imap_ordered(lambda v: v * 3, items()):
            state["yielded"] += 1
            results.append(value)
        assert results == [v * 3 for v in range(32)]

    def test_imap_ordered_bounded_window_on_threads(self):
        workers = 2
        state = {"pulled": 0, "yielded": 0}
        # With list(items) up front this trips immediately (pulled == 64 at
        # yielded == 0); the bounded window keeps pulls within the
        # submission lookahead (2 * workers) plus slack for in-flight tasks.
        window_slack = 2 * workers + 2

        def items():
            for value in range(64):
                state["pulled"] += 1
                assert state["pulled"] <= state["yielded"] + window_slack
                yield value

        results = []
        for value in imap_ordered(lambda v: v + 100, items(), workers=workers, executor="thread"):
            state["yielded"] += 1
            results.append(value)
        assert results == [v + 100 for v in range(64)]

    @pytest.mark.parametrize("name", EXECUTORS)
    def test_compress_many_accepts_generators_byte_identically(self, name, process_executor):
        codec = LosslessCodec(buffer_addresses=64, backend="zlib")
        intervals = [_synthetic_window(50 + 13 * i) for i in range(12)]
        reference = [codec.compress(interval) for interval in intervals]
        executor = process_executor if name == "process" else name
        produced = codec.compress_many(
            (interval for interval in intervals), workers=2, executor=executor
        )
        assert produced == reference
        recovered = codec.decompress_many(iter(produced), workers=2, executor=executor)
        assert all(np.array_equal(r, i) for r, i in zip(recovered, intervals))
