"""Tests of the chunk table and interval records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histograms import IntervalSummary, identity_translation
from repro.core.intervals import ChunkMatch, ChunkTable, IntervalRecord
from repro.errors import CodecError, ConfigurationError


def _summary_of(values) -> IntervalSummary:
    return IntervalSummary.from_addresses(np.asarray(values, dtype=np.uint64))


class TestChunkTable:
    def test_empty_table_has_no_match(self):
        table = ChunkTable()
        assert table.best_match(_summary_of(np.arange(100))) is None
        assert len(table) == 0

    def test_add_and_get(self):
        table = ChunkTable()
        summary = _summary_of(np.arange(100))
        table.add(0, summary)
        assert table.get(0) is summary
        assert 0 in table
        assert len(table) == 1

    def test_duplicate_add_rejected(self):
        table = ChunkTable()
        table.add(0, _summary_of(np.arange(10)))
        with pytest.raises(CodecError):
            table.add(0, _summary_of(np.arange(10)))

    def test_get_missing_chunk_raises(self):
        with pytest.raises(CodecError):
            ChunkTable().get(3)

    def test_best_match_picks_smallest_distance(self, rng):
        table = ChunkTable()
        streaming = _summary_of(np.arange(0, 8_000, dtype=np.uint64))
        random_values = _summary_of(rng.integers(0, 1 << 48, size=8_000, dtype=np.uint64))
        table.add(0, streaming)
        table.add(1, random_values)
        probe = _summary_of(np.arange(16_000, 24_000, dtype=np.uint64))
        match = table.best_match(probe)
        assert isinstance(match, ChunkMatch)
        assert match.chunk_id == 0
        assert match.distance < 0.5

    def test_fifo_eviction_of_oldest(self):
        table = ChunkTable(max_entries=2)
        table.add(0, _summary_of(np.arange(10)))
        table.add(1, _summary_of(np.arange(10, 20)))
        table.add(2, _summary_of(np.arange(20, 30)))
        assert 0 not in table
        assert table.chunk_ids == (1, 2)

    def test_unbounded_table_keeps_everything(self):
        table = ChunkTable(max_entries=None)
        for chunk_id in range(50):
            table.add(chunk_id, _summary_of(np.arange(chunk_id, chunk_id + 10)))
        assert len(table) == 50

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ChunkTable(max_entries=0)

    def test_tie_prefers_oldest_chunk(self):
        table = ChunkTable()
        identical = np.arange(1_000, dtype=np.uint64)
        table.add(0, _summary_of(identical))
        table.add(1, _summary_of(identical))
        match = table.best_match(_summary_of(identical))
        assert match.chunk_id == 0
        assert match.distance == pytest.approx(0.0)


class TestIntervalRecord:
    def test_chunk_record(self):
        record = IntervalRecord(kind="chunk", chunk_id=3, length=100)
        assert record.is_chunk
        assert record.chunk_id == 3

    def test_imitate_record_requires_translations(self):
        with pytest.raises(CodecError):
            IntervalRecord(kind="imitate", chunk_id=0, length=10)

    def test_imitate_record_with_translations(self):
        record = IntervalRecord(
            kind="imitate",
            chunk_id=1,
            length=10,
            active_bytes=np.ones(8, dtype=bool),
            translations=identity_translation(),
            distance=0.05,
        )
        assert not record.is_chunk
        assert record.distance == pytest.approx(0.05)

    def test_invalid_kind_rejected(self):
        with pytest.raises(CodecError):
            IntervalRecord(kind="copy", chunk_id=0, length=1)

    def test_negative_length_rejected(self):
        with pytest.raises(CodecError):
            IntervalRecord(kind="chunk", chunk_id=0, length=-1)
