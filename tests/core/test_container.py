"""Tests of the on-disk container format and interval-trace serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.container import (
    AtcContainer,
    deserialize_interval_trace,
    serialize_interval_trace,
)
from repro.core.histograms import identity_translation
from repro.core.intervals import IntervalRecord
from repro.errors import ContainerError


def _chunk_record(chunk_id=0, length=100):
    return IntervalRecord(kind="chunk", chunk_id=chunk_id, length=length)


def _imitate_record(chunk_id=0, length=100, active=None):
    translations = identity_translation()
    translations[3] = np.roll(translations[3], 7)
    active_bytes = np.zeros(8, dtype=bool) if active is None else np.asarray(active, dtype=bool)
    active_bytes = active_bytes.copy()
    active_bytes[3] = True
    return IntervalRecord(
        kind="imitate",
        chunk_id=chunk_id,
        length=length,
        active_bytes=active_bytes,
        translations=translations,
    )


class TestIntervalTraceSerialisation:
    def test_roundtrip_chunk_records(self):
        records = [_chunk_record(0, 50), _chunk_record(1, 60)]
        recovered = deserialize_interval_trace(serialize_interval_trace(records))
        assert [(r.kind, r.chunk_id, r.length) for r in recovered] == [
            ("chunk", 0, 50),
            ("chunk", 1, 60),
        ]

    def test_roundtrip_imitation_records(self):
        records = [_chunk_record(0, 100), _imitate_record(0, 100)]
        recovered = deserialize_interval_trace(serialize_interval_trace(records))
        assert recovered[1].kind == "imitate"
        assert recovered[1].chunk_id == 0
        assert np.array_equal(recovered[1].translations, records[1].translations)
        assert np.array_equal(recovered[1].active_bytes, records[1].active_bytes)

    def test_empty_interval_trace(self):
        assert deserialize_interval_trace(serialize_interval_trace([])) == []

    def test_truncated_payload_rejected(self):
        payload = serialize_interval_trace([_imitate_record()])
        with pytest.raises(ContainerError):
            deserialize_interval_trace(payload[:-100])

    def test_truncated_header_rejected(self):
        with pytest.raises(ContainerError):
            deserialize_interval_trace(b"\x00\x01")

    def test_invalid_kind_byte_rejected(self):
        payload = bytearray(serialize_interval_trace([_chunk_record()]))
        payload[0] = 9
        with pytest.raises(ContainerError):
            deserialize_interval_trace(bytes(payload))

    def test_imitation_record_size_matches_paper(self):
        """Translations are 'completely described with 8 x 256 bytes'."""
        payload = serialize_interval_trace([_imitate_record()])
        # kind + chunk_id + length + active byte + 2048 translation bytes
        assert len(payload) == 1 + 4 + 4 + 1 + 8 * 256


class TestAtcContainer:
    def test_create_write_read_chunks(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        container.write_chunk(0, b"first")
        container.write_chunk(1, b"second")
        assert container.read_chunk(0) == b"first"
        assert container.read_chunk(1) == b"second"
        assert container.chunk_ids() == [0, 1]

    def test_chunk_files_are_one_indexed_with_suffix(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", backend="bz2", create=True)
        container.write_chunk(0, b"payload")
        assert (tmp_path / "trace" / "1.bz2").exists()

    def test_info_roundtrip(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        metadata = {"mode": "lossy", "original_length": 123}
        records = [_chunk_record(0, 100), _imitate_record(0, 23)]
        container.write_info(metadata, records)
        read_metadata, read_records = container.read_info()
        assert read_metadata == metadata
        assert len(read_records) == 2
        assert read_records[1].kind == "imitate"

    def test_missing_chunk_raises(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        with pytest.raises(ContainerError):
            container.read_chunk(5)

    def test_missing_info_raises(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        with pytest.raises(ContainerError):
            container.read_info()

    def test_open_nonexistent_directory_raises(self, tmp_path):
        with pytest.raises(ContainerError):
            AtcContainer(tmp_path / "missing")

    def test_double_create_rejected(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        container.write_info({"mode": "lossless"}, [])
        with pytest.raises(ContainerError):
            AtcContainer(tmp_path / "trace", create=True)

    def test_negative_chunk_id_rejected(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        with pytest.raises(ContainerError):
            container.write_chunk(-1, b"")

    def test_total_bytes_counts_all_files(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", create=True)
        container.write_chunk(0, b"x" * 100)
        container.write_info({"mode": "lossless"}, [])
        assert container.total_bytes() >= 100

    def test_corrupt_info_detected(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", backend="store", create=True)
        (tmp_path / "trace" / "INFO.store").write_bytes(b"garbage")
        with pytest.raises(ContainerError):
            container.read_info()

    def test_alternate_backend_suffix(self, tmp_path):
        container = AtcContainer(tmp_path / "trace", backend="zlib", create=True)
        container.write_chunk(0, b"payload")
        container.write_info({"mode": "lossless"}, [])
        assert (tmp_path / "trace" / "1.zlib").exists()
        assert (tmp_path / "trace" / "INFO.zlib").exists()
        reopened = AtcContainer(tmp_path / "trace", backend="zlib")
        metadata, _ = reopened.read_info()
        assert metadata["mode"] == "lossless"
