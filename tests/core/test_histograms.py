"""Tests of byte histograms, interval distances and byte translations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histograms import (
    IntervalSummary,
    apply_translation,
    byte_histograms,
    byte_translation,
    histogram_distance,
    identity_translation,
    interval_distance,
    sort_histograms,
    translation_active_mask,
)
from repro.errors import CodecError


class TestByteHistograms:
    def test_counts_sum_to_length(self, random_addresses):
        histograms = byte_histograms(random_addresses)
        assert histograms.shape == (8, 256)
        assert np.all(histograms.sum(axis=1) == random_addresses.size)

    def test_empty_interval(self):
        histograms = byte_histograms(np.empty(0, dtype=np.uint64))
        assert histograms.sum() == 0

    def test_known_values(self):
        values = np.array([0x0102, 0x0102, 0x0203], dtype=np.uint64)
        histograms = byte_histograms(values)
        assert histograms[0][0x02] == 2  # low byte 0x02 appears twice
        assert histograms[0][0x03] == 1
        assert histograms[1][0x01] == 2  # byte order 1 value 0x01 appears twice
        assert histograms[1][0x02] == 1
        assert histograms[7][0x00] == 3  # top byte always zero

    def test_byte_order_convention_is_little_endian_order_index(self):
        values = np.array([0xAB00000000000000], dtype=np.uint64)
        histograms = byte_histograms(values)
        assert histograms[7][0xAB] == 1
        assert histograms[0][0x00] == 1


class TestSortedHistograms:
    def test_sorted_histograms_are_decreasing(self, working_set_addresses):
        histograms = byte_histograms(working_set_addresses)
        sorted_histograms, permutations = sort_histograms(histograms)
        for j in range(8):
            assert np.all(np.diff(sorted_histograms[j]) <= 0)
            # permutation property
            assert sorted(permutations[j].tolist()) == list(range(256))
            assert np.array_equal(sorted_histograms[j], histograms[j][permutations[j]])

    def test_tie_break_is_by_byte_value(self):
        # All byte values appear exactly once in the low byte: the stable
        # sort must keep them in increasing byte-value order.
        values = np.arange(256, dtype=np.uint64)
        histograms = byte_histograms(values)
        _, permutations = sort_histograms(histograms)
        assert np.array_equal(permutations[0], np.arange(256))

    def test_most_frequent_first(self):
        values = np.array([0x11, 0x11, 0x11, 0x22], dtype=np.uint64)
        histograms = byte_histograms(values)
        _, permutations = sort_histograms(histograms)
        assert permutations[0][0] == 0x11
        assert permutations[0][1] == 0x22

    def test_rejects_bad_shape(self):
        with pytest.raises(CodecError):
            sort_histograms(np.zeros((4, 256), dtype=np.int64))


class TestHistogramDistance:
    def test_identical_histograms_have_zero_distance(self, random_addresses):
        histograms = byte_histograms(random_addresses)
        for j in range(8):
            assert histogram_distance(histograms[j], histograms[j]) == 0.0

    def test_disjoint_histograms_have_distance_two(self):
        histogram_a = np.zeros(256, dtype=np.int64)
        histogram_b = np.zeros(256, dtype=np.int64)
        histogram_a[0] = 100
        histogram_b[1] = 100
        assert histogram_distance(histogram_a, histogram_b) == pytest.approx(2.0)

    def test_distance_is_symmetric(self, rng):
        histogram_a = rng.integers(0, 50, size=256)
        histogram_b = rng.integers(0, 50, size=256)
        assert histogram_distance(histogram_a, histogram_b) == pytest.approx(
            histogram_distance(histogram_b, histogram_a)
        )

    def test_distance_bounds(self, rng):
        for _ in range(20):
            histogram_a = rng.integers(0, 50, size=256)
            histogram_b = rng.integers(0, 50, size=256)
            distance = histogram_distance(histogram_a, histogram_b)
            assert 0.0 <= distance <= 2.0

    def test_normalisation_extends_to_unequal_lengths(self):
        histogram_a = np.zeros(256, dtype=np.int64)
        histogram_b = np.zeros(256, dtype=np.int64)
        histogram_a[5] = 10
        histogram_b[5] = 1000
        # Same shape (all mass on one value) so the distance must be zero.
        assert histogram_distance(histogram_a, histogram_b) == pytest.approx(0.0)


class TestIntervalSummaryAndDistance:
    def test_summary_from_addresses(self, working_set_addresses):
        summary = IntervalSummary.from_addresses(working_set_addresses)
        assert summary.length == working_set_addresses.size
        assert summary.histograms.shape == (8, 256)

    def test_self_distance_is_zero(self, working_set_addresses):
        summary = IntervalSummary.from_addresses(working_set_addresses)
        assert interval_distance(summary, summary) == 0.0

    def test_shifted_regions_have_zero_sorted_distance(self):
        """The paper's example: F200..F2FF vs F300..F3FF look identical."""
        interval_a = np.arange(0xF200, 0xF300, dtype=np.uint64)
        interval_b = np.arange(0xF300, 0xF400, dtype=np.uint64)
        summary_a = IntervalSummary.from_addresses(interval_a)
        summary_b = IntervalSummary.from_addresses(interval_b)
        assert interval_distance(summary_a, summary_b) == pytest.approx(0.0)

    def test_different_structures_have_positive_distance(self, rng):
        stream = np.arange(0, 10_000, dtype=np.uint64)
        random_values = rng.integers(0, 1 << 40, size=10_000, dtype=np.uint64)
        distance = interval_distance(
            IntervalSummary.from_addresses(stream),
            IntervalSummary.from_addresses(random_values),
        )
        assert distance > 0.5

    def test_distance_symmetry(self, rng):
        interval_a = rng.integers(0, 1 << 32, size=5_000, dtype=np.uint64)
        interval_b = rng.integers(0, 1 << 48, size=5_000, dtype=np.uint64)
        summary_a = IntervalSummary.from_addresses(interval_a)
        summary_b = IntervalSummary.from_addresses(interval_b)
        assert interval_distance(summary_a, summary_b) == pytest.approx(
            interval_distance(summary_b, summary_a)
        )


class TestByteTranslation:
    def test_paper_example_translation(self):
        """Section 5.1: interval A = F200..F2FF, B = F300..F3FF.

        The translation for byte order 1 must map F2 -> F3 and the low byte
        must be left alone (distance zero), producing a perfect imitation.
        """
        interval_a = np.arange(0xF200, 0xF300, dtype=np.uint64)
        interval_b = np.arange(0xF300, 0xF400, dtype=np.uint64)
        summary_a = IntervalSummary.from_addresses(interval_a)
        summary_b = IntervalSummary.from_addresses(interval_b)
        translations = byte_translation(summary_a, summary_b)
        assert translations[1][0xF2] == 0xF3
        active = translation_active_mask(summary_a, summary_b, threshold=0.1)
        assert bool(active[1]) is True
        assert bool(active[0]) is False
        imitation = apply_translation(interval_a, translations, active)
        assert np.array_equal(imitation, interval_b)

    def test_translation_rows_are_permutations(self, rng):
        interval_a = rng.integers(0, 1 << 40, size=4_000, dtype=np.uint64)
        interval_b = rng.integers(0, 1 << 40, size=4_000, dtype=np.uint64)
        translations = byte_translation(
            IntervalSummary.from_addresses(interval_a), IntervalSummary.from_addresses(interval_b)
        )
        for j in range(8):
            assert sorted(translations[j].tolist()) == list(range(256))

    def test_translation_preserves_distinct_count(self, rng):
        """Permutation property: distinct addresses stay distinct."""
        interval_a = rng.integers(0, 1 << 40, size=4_000, dtype=np.uint64)
        interval_b = rng.integers(1 << 41, 1 << 42, size=4_000, dtype=np.uint64)
        summary_a = IntervalSummary.from_addresses(interval_a)
        summary_b = IntervalSummary.from_addresses(interval_b)
        translations = byte_translation(summary_a, summary_b)
        translated = apply_translation(interval_a, translations)
        assert np.unique(translated).size == np.unique(interval_a).size

    def test_identity_translation_is_noop(self, random_addresses):
        translated = apply_translation(random_addresses, identity_translation())
        assert np.array_equal(translated, random_addresses)

    def test_inactive_mask_leaves_bytes_alone(self, random_addresses):
        summary = IntervalSummary.from_addresses(random_addresses)
        shifted = IntervalSummary.from_addresses(random_addresses + np.uint64(1 << 40))
        translations = byte_translation(summary, shifted)
        untouched = apply_translation(random_addresses, translations, np.zeros(8, dtype=bool))
        assert np.array_equal(untouched, random_addresses)

    def test_apply_translation_rejects_bad_shapes(self, random_addresses):
        with pytest.raises(CodecError):
            apply_translation(random_addresses, np.zeros((2, 256), dtype=np.uint8))
        with pytest.raises(CodecError):
            apply_translation(
                random_addresses, identity_translation(), np.zeros(3, dtype=bool)
            )

    def test_empty_interval_translation(self):
        result = apply_translation(np.empty(0, dtype=np.uint64), identity_translation())
        assert result.size == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=200))
    def test_translation_sends_most_frequent_to_most_frequent(self, values):
        interval_a = np.array(values, dtype=np.uint64)
        interval_b = interval_a ^ np.uint64(0x5A5A5A5A5A5A5A5A)
        summary_a = IntervalSummary.from_addresses(interval_a)
        summary_b = IntervalSummary.from_addresses(interval_b)
        translations = byte_translation(summary_a, summary_b)
        for j in range(8):
            most_frequent_a = summary_a.permutations[j][0]
            most_frequent_b = summary_b.permutations[j][0]
            assert translations[j][most_frequent_a] == most_frequent_b
