"""Tests of the byte-level compression back-ends."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend import (
    CompressionBackend,
    available_backends,
    backend_aliases,
    get_backend,
    register_alias,
    register_backend,
)
from repro.errors import ConfigurationError


class TestBackendRegistry:
    def test_standard_backends_are_registered(self):
        names = available_backends()
        for expected in ("bz2", "zlib", "gz", "lzma", "xz", "store"):
            assert expected in names

    def test_get_backend_by_name(self):
        backend = get_backend("bz2")
        assert backend.name == "bz2"

    def test_get_backend_passthrough_instance(self):
        backend = get_backend("zlib")
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("zstd-not-here")

    def test_register_custom_backend(self):
        custom = CompressionBackend("reverse", lambda d: d[::-1], lambda d: d[::-1])
        register_backend(custom)
        assert get_backend("reverse").roundtrip(b"hello") == b"hello"


class TestBackendAliases:
    def test_gz_and_xz_resolve_to_canonical_backends(self):
        assert get_backend("gz") is get_backend("zlib")
        assert get_backend("xz") is get_backend("lzma")
        assert get_backend("gz").name == "zlib"
        assert get_backend("xz").name == "lzma"

    def test_alias_mapping_is_deterministic(self):
        aliases = backend_aliases()
        assert aliases["gz"] == "zlib"
        assert aliases["xz"] == "lzma"
        assert list(aliases) == sorted(aliases)

    def test_available_backends_sorted_and_include_aliases(self):
        names = available_backends()
        assert list(names) == sorted(names)
        assert "gz" in names and "xz" in names

    def test_alias_to_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            register_alias("nope", "missing-backend")

    def test_alias_shadowing_backend_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_alias("bz2", "zlib")

    def test_registered_backend_overrides_alias(self):
        """Substituting an instrumented back-end under an alias name works."""
        calls = []

        def spy_compress(data):
            calls.append(len(data))
            return bytes(data)

        from repro.core.backend import _BACKENDS

        try:
            register_backend(CompressionBackend("gz", spy_compress, lambda d: bytes(d)))
            assert get_backend("gz").name == "gz"
            get_backend("gz").compress(b"xyz")
            assert calls == [3]
        finally:
            # Restore the stock registry: drop the instrumented back-end and
            # re-point the alias at zlib.
            _BACKENDS.pop("gz", None)
            register_alias("gz", "zlib")
        assert get_backend("gz") is get_backend("zlib")

    def test_custom_alias_registration(self):
        register_backend(
            CompressionBackend("identity2", lambda d: bytes(d), lambda d: bytes(d)),
            aliases=("id2",),
        )
        assert get_backend("id2") is get_backend("identity2")


class TestBackendRoundtrips:
    @pytest.mark.parametrize("name", ["bz2", "zlib", "gz", "lzma", "xz", "store"])
    def test_roundtrip_simple_payload(self, name):
        backend = get_backend(name)
        payload = b"the quick brown fox " * 100
        assert backend.roundtrip(payload) == payload

    @pytest.mark.parametrize("name", ["bz2", "zlib", "lzma"])
    def test_compresses_redundant_data(self, name):
        backend = get_backend(name)
        payload = b"\x00" * 100_000
        assert len(backend.compress(payload)) < len(payload) // 100

    @pytest.mark.parametrize("name", ["bz2", "zlib", "store"])
    def test_empty_payload(self, name):
        backend = get_backend(name)
        assert backend.roundtrip(b"") == b""

    def test_store_backend_is_identity(self):
        backend = get_backend("store")
        payload = bytes(range(256))
        assert backend.compress(payload) == payload
        assert backend.decompress(payload) == payload

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=2048), st.sampled_from(["bz2", "zlib", "lzma", "store"]))
    def test_roundtrip_arbitrary_bytes(self, payload, name):
        assert get_backend(name).roundtrip(payload) == payload
