"""Tests of the bytesort reversible transformation (paper Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bytesort import (
    bytesort_inverse,
    bytesort_inverse_window,
    bytesort_transform,
    bytesort_window,
    iter_windows,
)
from repro.errors import CodecError
from repro.traces.trace import ADDRESS_BYTES


class TestBytesortWindow:
    def test_empty_window_roundtrips(self):
        assert bytesort_window(np.empty(0, dtype=np.uint64)) == b""
        assert bytesort_inverse_window(b"").size == 0

    def test_single_address_roundtrips(self):
        values = np.array([0xDEADBEEFCAFEF00D], dtype=np.uint64)
        assert np.array_equal(bytesort_inverse_window(bytesort_window(values)), values)

    def test_output_size_is_eight_bytes_per_address(self, sequential_addresses):
        payload = bytesort_window(sequential_addresses)
        assert len(payload) == ADDRESS_BYTES * sequential_addresses.size

    def test_roundtrip_sequential(self, sequential_addresses):
        payload = bytesort_window(sequential_addresses)
        assert np.array_equal(bytesort_inverse_window(payload), sequential_addresses)

    def test_roundtrip_random(self, random_addresses):
        payload = bytesort_window(random_addresses)
        assert np.array_equal(bytesort_inverse_window(payload), random_addresses)

    def test_roundtrip_with_duplicates(self, working_set_addresses):
        payload = bytesort_window(working_set_addresses)
        assert np.array_equal(bytesort_inverse_window(payload), working_set_addresses)

    def test_first_block_is_msb_in_original_order(self):
        values = np.array([0x0100000000000000, 0x0200000000000000, 0x0300000000000000], dtype=np.uint64)
        payload = bytesort_window(values)
        assert payload[:3] == bytes([0x01, 0x02, 0x03])

    def test_transform_is_a_byte_permutation(self, random_addresses):
        """Bytesort reorders bytes but never changes the multiset of bytes."""
        payload = bytesort_window(random_addresses)
        original = random_addresses.view(np.uint8)
        assert np.array_equal(
            np.bincount(np.frombuffer(payload, dtype=np.uint8), minlength=256),
            np.bincount(original, minlength=256),
        )

    def test_section_4_1_worked_example(self):
        """The 384-address example of Section 4.1.

        Input: F200,F201,A100,F202,F203,A101,... (two interleaved regions).
        After bytesort, the low-order byte block must be 00..7F followed by
        00..FF because addresses are grouped by region (A1 region first,
        stable order preserved inside each region).
        """
        f2 = [0xF200 + i for i in range(256)]
        a1 = [0xA100 + i for i in range(128)]
        interleaved = []
        f2_index = a1_index = 0
        while f2_index < 256 or a1_index < 128:
            for _ in range(2):
                if f2_index < 256:
                    interleaved.append(f2[f2_index])
                    f2_index += 1
            if a1_index < 128:
                interleaved.append(a1[a1_index])
                a1_index += 1
        values = np.array(interleaved, dtype=np.uint64)
        payload = bytesort_window(values)
        count = values.size
        # Blocks are emitted MSB first; the last block is the low-order byte.
        low_block = payload[-count:]
        expected = bytes(range(128)) + bytes(range(256))
        assert low_block == expected
        # Second-to-last block: the byte of order 1 is emitted *before*
        # sorting by it, i.e. still in interleaved order F2,F2,A1,F2,F2,A1,...
        order1_block = payload[-2 * count : -count]
        assert order1_block == bytes((value >> 8) & 0xFF for value in interleaved)
        # And the whole thing still inverts exactly.
        assert np.array_equal(bytesort_inverse_window(payload), values)

    def test_figure_1_style_grouping(self):
        """Figure 1: interleaving two regions, bytesort exposes regularity.

        The check is the figure's point rather than its exact byte layout:
        the transform stays reversible and the transformed stream compresses
        at least as well as the raw interleaved bytes.
        """
        import zlib

        region_a = [0x00000000 + i * 0x4000 for i in range(512)]
        region_b = [0xFF000000 + i for i in range(512)]
        interleaved = [value for pair in zip(region_a, region_b) for value in pair]
        values = np.array(interleaved, dtype=np.uint64)
        payload = bytesort_window(values)
        assert np.array_equal(bytesort_inverse_window(payload), values)
        assert len(zlib.compress(payload, 9)) <= len(zlib.compress(values.tobytes(), 9))

    def test_rejects_partial_window(self):
        with pytest.raises(CodecError):
            bytesort_inverse_window(b"\x00" * 13)


class TestBytesortStreaming:
    def test_roundtrip_multiple_windows(self, random_addresses):
        payload = bytesort_transform(random_addresses, buffer_addresses=1_000)
        assert np.array_equal(bytesort_inverse(payload, 1_000), random_addresses)

    def test_roundtrip_window_not_dividing_length(self, random_addresses):
        payload = bytesort_transform(random_addresses, buffer_addresses=7_777)
        assert np.array_equal(bytesort_inverse(payload, 7_777), random_addresses)

    def test_buffer_larger_than_trace(self, sequential_addresses):
        payload = bytesort_transform(sequential_addresses, buffer_addresses=10**9)
        assert np.array_equal(bytesort_inverse(payload, 10**9), sequential_addresses)

    def test_mismatched_buffer_fails_or_differs(self, random_addresses):
        payload = bytesort_transform(random_addresses, buffer_addresses=1_000)
        recovered = bytesort_inverse(payload, 2_000)
        assert not np.array_equal(recovered, random_addresses)

    def test_invalid_buffer_size(self):
        with pytest.raises(CodecError):
            bytesort_transform(np.arange(10, dtype=np.uint64), buffer_addresses=0)
        with pytest.raises(CodecError):
            bytesort_inverse(b"", buffer_addresses=-1)

    def test_iter_windows_covers_everything(self):
        values = np.arange(25, dtype=np.uint64)
        windows = list(iter_windows(values, 10))
        assert [w.size for w in windows] == [10, 10, 5]
        assert np.array_equal(np.concatenate(windows), values)

    def test_iter_windows_rejects_bad_buffer(self):
        with pytest.raises(CodecError):
            list(iter_windows(np.arange(5, dtype=np.uint64), 0))


class TestBytesortProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=0, max_size=300)
    )
    def test_roundtrip_any_values(self, values):
        array = np.array(values, dtype=np.uint64)
        assert np.array_equal(bytesort_inverse_window(bytesort_window(array)), array)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=64),
    )
    def test_streaming_roundtrip_any_buffer(self, values, buffer_addresses):
        array = np.array(values, dtype=np.uint64)
        payload = bytesort_transform(array, buffer_addresses)
        assert np.array_equal(bytesort_inverse(payload, buffer_addresses), array)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=200))
    def test_length_preserved(self, values):
        array = np.array(values, dtype=np.uint64)
        assert len(bytesort_window(array)) == 8 * array.size
