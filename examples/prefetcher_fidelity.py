#!/usr/bin/env python
"""Figure 5 style study: C/DC address-predictor fidelity of lossy traces.

Runs the C/DC (CZone / Delta Correlation) predictor over the exact and the
lossy-regenerated trace of a few SPEC-like workloads and prints the
breakdown of non-predicted / correctly predicted / mispredicted addresses,
the same comparison as the paper's Figure 5.

Run with:  python examples/prefetcher_fidelity.py
"""

from __future__ import annotations

from repro.analysis.comparison import compare_cdc_breakdowns
from repro.analysis.reporting import render_breakdown_table
from repro.core.lossy import LossyConfig
from repro.traces.filter import filtered_spec_like_trace

WORKLOADS = ["433.milc", "429.mcf", "445.gobmk", "462.libquantum"]


def main() -> None:
    breakdowns = {}
    for name in WORKLOADS:
        trace = filtered_spec_like_trace(name, 30_000, seed=0)
        if len(trace) < 2_000:
            continue
        config = LossyConfig(interval_length=max(len(trace) // 6, 1_000))
        exact, lossy, distance = compare_cdc_breakdowns(trace.addresses, config=config)
        breakdowns[f"{name} exact"] = exact.fractions()
        breakdowns[f"{name} lossy"] = lossy.fractions()
        print(f"{name}: breakdown distance between exact and lossy = {distance:.3f}")
    print()
    print(render_breakdown_table("C/DC predictor outcome breakdown (Figure 5 analogue)", breakdowns))


if __name__ == "__main__":
    main()
