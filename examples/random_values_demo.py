#!/usr/bin/env python
"""Figure 8 reproduction: lossy-compressing random 64-bit values.

The paper feeds 100 M random 64-bit values to ``bin2atc``: ATC detects that
every interval looks like the first one, stores a single chunk plus the byte
translations, and achieves a compression ratio of about 10 (one chunk for
ten intervals).  This script does the same with the library's streaming API
and container format, at a smaller scale.

Run with:  python examples/random_values_demo.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core.atc import MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig

TOTAL_VALUES = 200_000
INTERVAL_LENGTH = 20_000


def main() -> None:
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 64, size=TOTAL_VALUES, dtype=np.uint64)
    workdir = Path(tempfile.mkdtemp(prefix="atc-demo-"))
    container = workdir / "foobar"
    config = LossyConfig(interval_length=INTERVAL_LENGTH, chunk_buffer_addresses=INTERVAL_LENGTH)
    try:
        with AtcEncoder(container, mode=MODE_LOSSY, config=config) as encoder:
            encoder.code_many(values)
        decoder = AtcDecoder(container)
        decoded = decoder.read_all()
        stored_chunks = len(decoder.container.chunk_ids())
        compressed_bytes = decoder.compressed_bytes()
        ratio = values.size * 8 / compressed_bytes
        print(f"input values        : {values.size} random 64-bit values")
        print(f"intervals           : {values.size // INTERVAL_LENGTH}")
        print(f"chunks stored       : {stored_chunks}")
        print("container contents  :")
        for entry in sorted(container.iterdir()):
            print(f"  {entry.stat().st_size:>10} {entry.name}")
        print(f"compression ratio   : {ratio:.1f}x (paper's Figure 8: ~10x)")
        print(f"decoded length      : {decoded.size} (must equal input length)")
        assert decoded.size == values.size
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
