#!/usr/bin/env python
"""Compress a mini SPEC-like suite with every method (Table 1 in miniature).

Generates cache-filtered traces for a handful of the 22 SPEC-like workloads
and reports bits per address for:

* bzip2 alone (``bz2``),
* byte-unshuffling + bzip2 (``us``),
* the VPC/TCgen-style predictor compressor (``tcg``),
* small-buffer bytesort (``bs-small``),
* large-buffer bytesort (``bs-big``),
* the Mache/PDATS-style delta baseline (``delta``, extra comparator).

Run with:  python examples/spec_like_compression.py [references-per-workload]
"""

from __future__ import annotations

import sys

from repro.analysis.metrics import bits_per_address
from repro.analysis.reporting import render_table
from repro.baselines.delta import delta_bits_per_address
from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import unshuffled_bits_per_address
from repro.core.lossless import lossless_bits_per_address
from repro.predictors.vpc import VpcCodec
from repro.traces.filter import filtered_spec_like_trace

WORKLOADS = ["410.bwaves", "429.mcf", "401.bzip2", "462.libquantum", "471.omnetpp", "403.gcc"]


def main() -> None:
    references = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    small_buffer = 4_000
    rows = {}
    for name in WORKLOADS:
        trace = filtered_spec_like_trace(name, references, seed=0)
        addresses = trace.addresses
        if len(addresses) == 0:
            continue
        vpc_payload = VpcCodec().compress(addresses)
        rows[name] = {
            "bz2": raw_bits_per_address(addresses),
            "us": unshuffled_bits_per_address(addresses, buffer_addresses=small_buffer),
            "tcg": bits_per_address(len(vpc_payload), len(addresses)),
            "bs-small": lossless_bits_per_address(addresses, buffer_addresses=small_buffer),
            "bs-big": lossless_bits_per_address(addresses, buffer_addresses=len(addresses)),
            "delta": delta_bits_per_address(addresses),
        }
        print(f"compressed {name}: {len(addresses)} filtered addresses")
    print()
    print(
        render_table(
            "Bits per address (smaller is better) — synthetic analogue of Table 1",
            rows,
            columns=["bz2", "us", "tcg", "bs-small", "bs-big", "delta"],
        )
    )


if __name__ == "__main__":
    main()
