#!/usr/bin/env python
"""Run the complete evaluation programmatically and write a text report.

This example drives :class:`repro.analysis.harness.EvaluationHarness`, the
programmatic counterpart of the pytest benchmark suite: it regenerates the
Table 1 / Table 3 comparisons and the Figure 3 / Figure 5 fidelity studies
on a configurable subset of the SPEC-like workloads, then augments them with
the extended reuse-distance fidelity check (not in the paper, but implied by
its "memory-locality is preserved" claim).

Run with:  python examples/full_evaluation.py [output-file]
"""

from __future__ import annotations

import sys

from repro.analysis.harness import EvaluationHarness, EvaluationScale
from repro.analysis.reuse import reuse_distance_histogram
from repro.core.lossy import LossyCodec

WORKLOADS = ("410.bwaves", "429.mcf", "433.milc", "458.sjeng", "462.libquantum", "470.lbm")
FIGURE_WORKLOADS = ("429.mcf", "458.sjeng")


def reuse_fidelity_section(harness: EvaluationHarness) -> str:
    """Extended check: lossy traces preserve the reuse-distance distribution."""
    lines = ["Reuse-distance fidelity (extension): L1 distance between exact and lossy distributions"]
    codec = LossyCodec(harness.scale.lossy_config())
    for name in FIGURE_WORKLOADS:
        trace = harness.trace(name)
        if len(trace) < 2 * harness.scale.interval_length:
            continue
        approx = codec.decompress(codec.compress(trace.addresses))
        distance = reuse_distance_histogram(trace.addresses).l1_distance(
            reuse_distance_histogram(approx)
        )
        lines.append(f"  {name:<18} {distance:.4f}")
    return "\n".join(lines)


def main() -> None:
    scale = EvaluationScale(references_per_workload=25_000, interval_length=4_000)
    harness = EvaluationHarness(scale, workloads=WORKLOADS)
    report = harness.full_report(figure_workloads=FIGURE_WORKLOADS)
    report = report + "\n\n" + reuse_fidelity_section(harness)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {sys.argv[1]}")
    else:
        print(report)


if __name__ == "__main__":
    main()
