#!/usr/bin/env python
"""Run the complete evaluation as a declarative sweep and write a report.

This example drives :mod:`repro.experiments`, the declarative
experiment-orchestration subsystem: the paper's Table 1 and Table 3 grids
are expressed as :class:`~repro.experiments.spec.SweepSpec` objects (via
:meth:`~repro.analysis.harness.EvaluationHarness.sweep_spec`), executed by
:class:`~repro.experiments.runner.SweepRunner` with an on-disk result
cache.  The cache directory defaults to ``<output-file>.sweep-cache`` (or
``full_evaluation.sweep-cache`` in the working directory when printing to
stdout), so running the script twice serves every table cell from cache
the second time.  The Figure 3 / Figure 5 fidelity studies and the
extended reuse-distance check still come from the
:class:`~repro.analysis.harness.EvaluationHarness` convenience layer,
which shares its per-cell measurements with the sweep runner.

Run with:  python examples/full_evaluation.py [output-file] [cache-dir]
"""

from __future__ import annotations

import sys

from repro.analysis.harness import EvaluationHarness, EvaluationScale
from repro.analysis.reporting import render_table
from repro.analysis.reuse import reuse_distance_histogram
from repro.core.lossy import LossyCodec
from repro.experiments import SweepRunner

WORKLOADS = ("410.bwaves", "429.mcf", "433.milc", "458.sjeng", "462.libquantum", "470.lbm")
FIGURE_WORKLOADS = ("429.mcf", "458.sjeng")


def sweep_section(harness: EvaluationHarness, table: str, title: str, cache_dir) -> str:
    """Run one harness table as a declarative cached sweep and render it."""
    spec = harness.sweep_spec(table)
    # The harness already generated and cached the filtered traces (the
    # length guard and the figure sections need them); hand them to the
    # runner so a cold run never filters a workload twice.
    runner = SweepRunner(
        spec, cache_dir=cache_dir, workers=2, trace_provider=harness.trace_provider()
    )
    result = runner.run()
    # One filter only (the paper's L1), so the sweep aggregates to a single
    # Table 1/3-shaped grid.
    (rows,) = result.tables().values()
    cached = result.cached_count()
    note = f"[{cached}/{len(result.rows)} cells from cache {cache_dir}]"
    return render_table(title, rows, result.codec_labels) + "\n" + note


def reuse_fidelity_section(harness: EvaluationHarness) -> str:
    """Extended check: lossy traces preserve the reuse-distance distribution."""
    lines = ["Reuse-distance fidelity (extension): L1 distance between exact and lossy distributions"]
    codec = LossyCodec(harness.scale.lossy_config())
    for name in FIGURE_WORKLOADS:
        trace = harness.trace(name)
        if len(trace) < 2 * harness.scale.interval_length:
            continue
        approx = codec.decompress(codec.compress(trace.addresses))
        distance = reuse_distance_histogram(trace.addresses).l1_distance(
            reuse_distance_histogram(approx)
        )
        lines.append(f"  {name:<18} {distance:.4f}")
    return "\n".join(lines)


def figure_sections(harness: EvaluationHarness) -> str:
    """The Figure 3 / Figure 5 fidelity studies (harness convenience layer)."""
    sections = []
    for name, result in harness.miss_ratio_fidelity(FIGURE_WORKLOADS).items():
        sections.append(
            f"Figure 3 [{name}]: max miss-ratio error {result.max_miss_ratio_error:.4f}, "
            f"chunks {result.num_chunks}/{result.num_intervals}, "
            f"lossy {result.bits_per_address:.2f} bits/address"
        )
    for name, distance in harness.predictor_fidelity(FIGURE_WORKLOADS).items():
        sections.append(f"Figure 5 [{name}]: C/DC breakdown distance {distance:.4f}")
    return "\n\n".join(sections)


def main() -> None:
    scale = EvaluationScale(references_per_workload=25_000, interval_length=4_000)
    harness = EvaluationHarness(scale, workloads=WORKLOADS)
    if len(sys.argv) > 2:
        cache_dir = sys.argv[2]
    elif len(sys.argv) > 1:
        cache_dir = sys.argv[1] + ".sweep-cache"
    else:
        cache_dir = "full_evaluation.sweep-cache"
    sections = [
        sweep_section(harness, "table1", "Table 1: lossless bits per address", cache_dir),
        sweep_section(harness, "table3", "Table 3: lossless vs lossy bits per address", cache_dir),
        figure_sections(harness),
        reuse_fidelity_section(harness),
    ]
    report = "\n\n".join(sections)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {sys.argv[1]}")
    else:
        print(report)


if __name__ == "__main__":
    main()
