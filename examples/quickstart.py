#!/usr/bin/env python
"""Quickstart: compress a cache-filtered address trace with ATC.

The script walks through the whole paper pipeline on a small scale:

1. generate a SPEC-like synthetic workload and filter it through the
   paper's 32 KB / 4-way / 64-byte-block L1 caches;
2. compress the filtered trace losslessly (bytesort + bzip2) and compare
   against bzip2 alone and the byte-unshuffling baseline;
3. compress it lossily (phase detection + byte translations) and check that
   the miss-ratio curve of the regenerated trace tracks the exact one;
4. demonstrate the bytesort transformation on the worked example of the
   paper's Section 4.1.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LossyConfig, lossless_compress, lossless_decompress, lossy_compress, lossy_decompress
from repro.analysis.metrics import bits_per_address
from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import unshuffled_bits_per_address
from repro.cache.sweep import miss_ratio_sweep
from repro.core.bytesort import bytesort_inverse_window, bytesort_window
from repro.traces.filter import filtered_spec_like_trace


def demonstrate_bytesort() -> None:
    """The Section 4.1 worked example: two interleaved memory regions."""
    print("=== bytesort on the Section 4.1 example ===")
    interleaved = []
    f2_values = list(range(0xF200, 0xF300))
    a1_values = list(range(0xA100, 0xA180))
    while f2_values or a1_values:
        interleaved.extend(f2_values[:2])
        del f2_values[:2]
        if a1_values:
            interleaved.append(a1_values.pop(0))
    addresses = np.array(interleaved, dtype=np.uint64)
    transformed = bytesort_window(addresses)
    recovered = bytesort_inverse_window(transformed)
    low_block = transformed[-len(addresses) :]
    print(f"input addresses            : {len(addresses)} (two interleaved regions)")
    print(f"low-order byte block starts: {low_block[:8].hex(' ')} ...")
    print(f"reversible                 : {bool(np.array_equal(recovered, addresses))}")
    print()


def compare_lossless_methods(trace) -> None:
    print("=== lossless compression (Table 1 style) ===")
    addresses = trace.addresses
    plain = raw_bits_per_address(addresses)
    unshuffled = unshuffled_bits_per_address(addresses, buffer_addresses=len(addresses))
    payload = lossless_compress(addresses, buffer_addresses=len(addresses))
    bytesorted = bits_per_address(len(payload), len(addresses))
    assert np.array_equal(lossless_decompress(payload), addresses)
    print(f"trace                 : {trace.name}, {len(trace)} filtered addresses")
    print(f"bzip2 alone           : {plain:6.2f} bits/address")
    print(f"byte-unshuffle + bzip2: {unshuffled:6.2f} bits/address")
    print(f"bytesort + bzip2      : {bytesorted:6.2f} bits/address (lossless, exact roundtrip)")
    print()


def compare_lossy_fidelity(trace) -> None:
    print("=== lossy compression (Table 3 / Figure 3 style) ===")
    addresses = trace.addresses
    config = LossyConfig(interval_length=max(len(addresses) // 8, 1_000))
    compressed = lossy_compress(addresses, config)
    approx = lossy_decompress(compressed)
    print(f"intervals             : {compressed.num_intervals}")
    print(f"chunks stored         : {compressed.num_chunks}")
    print(f"lossy bits/address    : {compressed.bits_per_address():6.2f}")
    exact_curve = miss_ratio_sweep(addresses, set_counts=[256])
    lossy_curve = miss_ratio_sweep(approx, set_counts=[256])
    print("miss ratio (256 sets) :  assoc   exact   lossy")
    for associativity in (1, 4, 16):
        print(
            f"                         {associativity:>5}"
            f"   {exact_curve.miss_ratio(256, associativity):5.3f}"
            f"   {lossy_curve.miss_ratio(256, associativity):5.3f}"
        )
    print()


def main() -> None:
    demonstrate_bytesort()
    trace = filtered_spec_like_trace("429.mcf", 40_000, seed=0)
    compare_lossless_methods(trace)
    compare_lossy_fidelity(trace)
    print("done.")


if __name__ == "__main__":
    main()
