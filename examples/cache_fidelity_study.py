#!/usr/bin/env python
"""Figure 3 / Figure 4 style study: do lossy traces preserve miss ratios?

For a few SPEC-like workloads this script compresses the cache-filtered
trace with the lossy codec, regenerates the approximate trace and compares
miss-ratio-vs-associativity curves for several cache sizes.  It then repeats
the Figure 4 ablation on a phased workload: with byte translation disabled,
the apparent working set shrinks and the miss-ratio curve is badly distorted.

Run with:  python examples/cache_fidelity_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import compare_miss_ratio_surfaces
from repro.analysis.reporting import render_series
from repro.cache.sweep import miss_ratio_sweep
from repro.core.lossy import LossyCodec, LossyConfig
from repro.traces.filter import filtered_spec_like_trace

WORKLOADS = ["429.mcf", "458.sjeng", "470.lbm"]
SET_COUNTS = [64, 256, 1024]
ASSOCIATIVITIES = [1, 2, 4, 8, 16, 32]


def fidelity_study() -> None:
    for name in WORKLOADS:
        trace = filtered_spec_like_trace(name, 40_000, seed=0)
        if len(trace) < 4_000:
            continue
        config = LossyConfig(interval_length=max(len(trace) // 8, 2_000))
        result = compare_miss_ratio_surfaces(
            trace.addresses, set_counts=SET_COUNTS, config=config, trace_name=name
        )
        series = {}
        for sets in SET_COUNTS:
            series[f"exact {sets} sets"] = result.exact_surface.series(sets, ASSOCIATIVITIES)
            series[f"lossy {sets} sets"] = result.lossy_surface.series(sets, ASSOCIATIVITIES)
        print(
            render_series(
                f"Miss ratio vs associativity — {name} "
                f"(chunks {result.num_chunks}/{result.num_intervals}, "
                f"lossy {result.bits_per_address:.2f} bits/address, "
                f"max |error| {result.max_miss_ratio_error:.3f})",
                x_label="associativity",
                x_values=ASSOCIATIVITIES,
                series=series,
            )
        )
        print()


def translation_ablation() -> None:
    """Figure 4: disabling byte translation distorts the working set."""
    rng = np.random.default_rng(3)
    phases = [
        rng.integers(0, 4_096, size=20_000, dtype=np.uint64) + np.uint64((index + 1) << 22)
        for index in range(4)
    ]
    trace = np.concatenate(phases)
    exact = miss_ratio_sweep(trace, set_counts=[256])
    series = {"exact": exact.series(256, ASSOCIATIVITIES)}
    for enabled in (True, False):
        codec = LossyCodec(LossyConfig(interval_length=20_000, enable_translation=enabled))
        approx = codec.decompress(codec.compress(trace))
        surface = miss_ratio_sweep(approx, set_counts=[256])
        label = "translation" if enabled else "no translation"
        series[label] = surface.series(256, ASSOCIATIVITIES)
    print(
        render_series(
            "Figure 4 ablation — phased workload, 256 sets",
            x_label="associativity",
            x_values=ASSOCIATIVITIES,
            series=series,
        )
    )


def main() -> None:
    fidelity_study()
    translation_ablation()


if __name__ == "__main__":
    main()
