"""Metrics, comparison pipelines and text reporting for the evaluation."""

from repro.analysis.comparison import (
    LossyFidelityResult,
    compare_cdc_breakdowns,
    compare_miss_ratio_surfaces,
    regenerate_lossy_trace,
)
from repro.analysis.metrics import (
    BpaTableRow,
    arithmetic_mean,
    bits_per_address,
    compression_ratio,
    distinct_address_ratio,
    sequence_length_preserved,
)
from repro.analysis.harness import EvaluationHarness, EvaluationScale
from repro.analysis.reporting import render_breakdown_table, render_series, render_table
from repro.analysis.reuse import (
    ReuseDistanceHistogram,
    footprint_curve,
    reuse_distance_histogram,
    working_set_sizes,
)

__all__ = [
    "EvaluationHarness",
    "EvaluationScale",
    "ReuseDistanceHistogram",
    "reuse_distance_histogram",
    "footprint_curve",
    "working_set_sizes",
    "bits_per_address",
    "compression_ratio",
    "arithmetic_mean",
    "distinct_address_ratio",
    "sequence_length_preserved",
    "BpaTableRow",
    "LossyFidelityResult",
    "regenerate_lossy_trace",
    "compare_miss_ratio_surfaces",
    "compare_cdc_breakdowns",
    "render_table",
    "render_series",
    "render_breakdown_table",
]
