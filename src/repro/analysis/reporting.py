"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints its results in the same shape as the paper's
tables so that paper-vs-measured comparison (recorded in EXPERIMENTS.md) is
a column-by-column read.  Only text output is produced — no plotting
dependency is required or available offline.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.metrics import arithmetic_mean

__all__ = ["render_table", "render_series", "render_breakdown_table"]


def render_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    value_format: str = "{:>10.2f}",
    mean_row: bool = True,
) -> str:
    """Render a Table 1/3-style table: one row per trace, one column per method.

    Args:
        title: Table caption printed above the grid.
        rows: ``{trace_name: {column_name: value}}``.
        columns: Column order.
        value_format: Format applied to every value cell.
        mean_row: Append an arithmetic-mean row like the paper's tables.

    Example:
        >>> print(render_table("Demo", {"mcf": {"bpa": 2.5}}, ["bpa"], mean_row=False))
        Demo
        trace                     bpa
        -----------------------------
        mcf                     2.50
    """
    lines = [title]
    header = f"{'trace':<18}" + "".join(f"{column:>11}" for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for trace_name, values in rows.items():
        cells = "".join(
            value_format.format(values[column]) if column in values else f"{'n/a':>10}"
            for column in columns
        )
        lines.append(f"{trace_name:<18}" + cells)
    if mean_row and rows:
        means = {
            column: arithmetic_mean([values[column] for values in rows.values() if column in values])
            for column in columns
        }
        lines.append("-" * len(header))
        lines.append(
            f"{'arith. mean':<18}" + "".join(value_format.format(means[column]) for column in columns)
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:>9.4f}",
) -> str:
    """Render a Figure 3/4-style family of curves as a text table.

    Each named series becomes a row; the x axis (associativity in Figure 3)
    becomes the columns.
    """
    lines = [title]
    header = f"{x_label:<26}" + "".join(f"{str(x):>10}" for x in x_values)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        cells = "".join(value_format.format(value) for value in values)
        lines.append(f"{name:<26} {cells}")
    return "\n".join(lines)


def render_breakdown_table(
    title: str,
    breakdowns: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] = ("non_predicted", "correct", "incorrect"),
) -> str:
    """Render Figure 5-style outcome breakdowns (fractions per trace)."""
    lines = [title]
    header = f"{'trace / variant':<28}" + "".join(f"{column:>14}" for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name, fractions in breakdowns.items():
        cells = "".join(f"{fractions.get(column, 0.0):>13.1%} " for column in columns)
        lines.append(f"{name:<28}" + cells)
    return "\n".join(lines)
