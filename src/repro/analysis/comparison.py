"""Exact-vs-lossy comparison pipelines (the measurements behind Figures 3-5).

These helpers bundle the repeated experimental pattern of Section 5.3:

1. take an exact cache-filtered trace;
2. compress it with the lossy codec and regenerate the approximate trace;
3. feed both traces to a consumer (cache simulator or address predictor);
4. quantify how far apart the two results are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.metrics import distinct_address_ratio, sequence_length_preserved
from repro.cache.sweep import MissRatioSurface, miss_ratio_sweep
from repro.core.lossy import LossyCodec, LossyConfig
from repro.predictors.cdc import CdcConfig, PredictionBreakdown, simulate_cdc
from repro.traces.trace import AddressTrace, as_address_array

__all__ = [
    "LossyFidelityResult",
    "regenerate_lossy_trace",
    "compare_miss_ratio_surfaces",
    "compare_cdc_breakdowns",
]


@dataclass(frozen=True)
class LossyFidelityResult:
    """Everything the Figure 3/4 benches report for one trace.

    Attributes:
        trace_name: Label of the trace.
        exact_surface: Miss-ratio surface of the exact trace.
        lossy_surface: Miss-ratio surface of the regenerated trace.
        bits_per_address: BPA of the lossy representation.
        num_chunks: Chunks stored by the lossy codec.
        num_intervals: Intervals in the trace.
        distinct_ratio: Approximate/exact distinct-address ratio.
    """

    trace_name: str
    exact_surface: MissRatioSurface
    lossy_surface: MissRatioSurface
    bits_per_address: float
    num_chunks: int
    num_intervals: int
    distinct_ratio: float

    @property
    def max_miss_ratio_error(self) -> float:
        """Worst-case absolute miss-ratio difference over the whole grid."""
        return self.exact_surface.max_absolute_error(self.lossy_surface)

    @property
    def mean_miss_ratio_error(self) -> float:
        """Mean absolute miss-ratio difference over the whole grid."""
        return self.exact_surface.mean_absolute_error(self.lossy_surface)


def regenerate_lossy_trace(
    trace, config: LossyConfig = LossyConfig()
) -> Tuple[np.ndarray, float, int, int]:
    """Compress then decompress a trace with the lossy codec.

    Returns ``(approximate_addresses, bits_per_address, num_chunks,
    num_intervals)``.
    """
    values = trace.addresses if isinstance(trace, AddressTrace) else as_address_array(trace)
    codec = LossyCodec(config)
    compressed = codec.compress(values)
    approximate = codec.decompress(compressed)
    if not sequence_length_preserved(approximate, values):
        raise AssertionError("lossy codec violated the sequence-length invariant")
    return approximate, compressed.bits_per_address(), compressed.num_chunks, compressed.num_intervals


def compare_miss_ratio_surfaces(
    trace,
    set_counts: Sequence[int],
    config: LossyConfig = LossyConfig(),
    max_associativity: int = 32,
    trace_name: str = "",
) -> LossyFidelityResult:
    """Figure 3 pipeline: exact-vs-lossy miss-ratio surfaces for one trace."""
    values = trace.addresses if isinstance(trace, AddressTrace) else as_address_array(trace)
    name = trace_name or getattr(trace, "name", "")
    approximate, bpa, num_chunks, num_intervals = regenerate_lossy_trace(values, config)
    exact_surface = miss_ratio_sweep(values, set_counts, max_associativity, trace_name=name)
    lossy_surface = miss_ratio_sweep(approximate, set_counts, max_associativity, trace_name=name)
    return LossyFidelityResult(
        trace_name=name,
        exact_surface=exact_surface,
        lossy_surface=lossy_surface,
        bits_per_address=bpa,
        num_chunks=num_chunks,
        num_intervals=num_intervals,
        distinct_ratio=distinct_address_ratio(approximate, values),
    )


def compare_cdc_breakdowns(
    trace,
    config: LossyConfig = LossyConfig(),
    cdc_config: CdcConfig = CdcConfig(),
) -> Tuple[PredictionBreakdown, PredictionBreakdown, float]:
    """Figure 5 pipeline: C/DC outcome breakdowns for exact and lossy traces.

    Returns ``(exact_breakdown, lossy_breakdown, l1_distance)``.
    """
    values = trace.addresses if isinstance(trace, AddressTrace) else as_address_array(trace)
    approximate, _, _, _ = regenerate_lossy_trace(values, config)
    exact_breakdown = simulate_cdc(values, cdc_config)
    lossy_breakdown = simulate_cdc(approximate, cdc_config)
    return exact_breakdown, lossy_breakdown, exact_breakdown.distance(lossy_breakdown)
