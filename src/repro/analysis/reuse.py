"""Reuse-distance and footprint analysis of address traces.

The paper's whole premise is that a cache-filtered trace still carries the
"macroscopic" memory behaviour of the application: how large the footprint
is, how quickly it grows, and how reuse is distributed.  This module gives
the library a quantitative handle on those properties.  It is used by the
extended fidelity analysis (``examples/full_evaluation.py``) to verify that
lossy-compressed traces preserve not only miss ratios (Figure 3) but also
the underlying reuse-distance distribution, and it is generally useful when
characterising workloads produced by :mod:`repro.traces`.

Definitions
-----------

* **Reuse distance** of a reference: the number of *distinct* blocks
  referenced since the previous reference to the same block (infinite for
  the first reference).  Under fully-associative LRU, a reference hits in a
  cache of C blocks iff its reuse distance is < C, so the cumulative reuse
  distance distribution *is* the fully-associative miss-ratio curve.
* **Footprint curve**: number of distinct blocks seen in the first k
  references, as a function of k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.trace import as_address_array

__all__ = [
    "ReuseDistanceHistogram",
    "reuse_distance_histogram",
    "footprint_curve",
    "working_set_sizes",
]


class _FenwickTree:
    """Binary indexed tree counting how many tracked positions are set."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions 0..index-1."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


@dataclass(frozen=True)
class ReuseDistanceHistogram:
    """Histogram of reuse distances, bucketed by powers of two.

    Attributes:
        bucket_counts: ``bucket_counts[i]`` counts references with reuse
            distance in ``[2**(i-1), 2**i)`` (bucket 0 is distance 0).
        cold_references: References with no previous use (infinite distance).
        total_references: Total number of references analysed.
    """

    bucket_counts: Dict[int, int]
    cold_references: int
    total_references: int

    def miss_ratio(self, cache_blocks: int) -> float:
        """Fully-associative LRU miss ratio for a cache of ``cache_blocks``.

        A reference misses iff its reuse distance is >= the cache size (or
        it is a cold reference).
        """
        if self.total_references == 0:
            return 0.0
        misses = self.cold_references
        for bucket, count in self.bucket_counts.items():
            lower = 0 if bucket == 0 else 1 << (bucket - 1)
            upper = 1 if bucket == 0 else (1 << bucket) - 1
            if lower >= cache_blocks:
                misses += count
            elif upper >= cache_blocks:
                # The bucket straddles the cache size; apportion uniformly.
                span = upper - lower + 1
                misses += count * (upper - cache_blocks + 1) / span
        return misses / self.total_references

    def distribution(self) -> Dict[str, float]:
        """Bucket fractions keyed by a human-readable range label."""
        if self.total_references == 0:
            return {}
        result: Dict[str, float] = {}
        for bucket in sorted(self.bucket_counts):
            lower = 0 if bucket == 0 else 1 << (bucket - 1)
            upper = 0 if bucket == 0 else (1 << bucket) - 1
            label = "0" if bucket == 0 else f"{lower}-{upper}"
            result[label] = self.bucket_counts[bucket] / self.total_references
        result["cold"] = self.cold_references / self.total_references
        return result

    def l1_distance(self, other: "ReuseDistanceHistogram") -> float:
        """L1 distance between two bucket distributions (0 = identical)."""
        mine = self.distribution()
        theirs = other.distribution()
        keys = set(mine) | set(theirs)
        return sum(abs(mine.get(key, 0.0) - theirs.get(key, 0.0)) for key in keys)


def reuse_distance_histogram(blocks, max_tracked: Optional[int] = None) -> ReuseDistanceHistogram:
    """Compute the LRU reuse-distance histogram of a block-address trace.

    Uses the classic Fenwick-tree algorithm (O(N log N)): each position of
    the trace is marked while its block remains the most recent reference to
    that block; the reuse distance of a new reference is the number of
    marked positions after the block's previous reference.

    Args:
        blocks: Block addresses in reference order.
        max_tracked: Optional cap on the number of references analysed
            (``None`` analyses the whole trace).
    """
    values = as_address_array(blocks)
    if max_tracked is not None:
        if max_tracked < 0:
            raise ConfigurationError("max_tracked must be non-negative")
        values = values[:max_tracked]
    count = int(values.size)
    tree = _FenwickTree(count)
    last_position: Dict[int, int] = {}
    bucket_counts: Dict[int, int] = {}
    cold = 0
    for position, block in enumerate(values.tolist()):
        previous = last_position.get(block)
        if previous is None:
            cold += 1
        else:
            distance = tree.prefix_sum(position) - tree.prefix_sum(previous + 1)
            bucket = 0 if distance == 0 else int(math.floor(math.log2(distance))) + 1
            bucket_counts[bucket] = bucket_counts.get(bucket, 0) + 1
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[block] = position
    return ReuseDistanceHistogram(
        bucket_counts=bucket_counts, cold_references=cold, total_references=count
    )


def footprint_curve(blocks, points: int = 32) -> List[tuple]:
    """Distinct-block footprint as a function of trace prefix length.

    Returns a list of ``(prefix_length, distinct_blocks)`` pairs at
    ``points`` evenly spaced prefix lengths (always including the full
    trace), useful to see how quickly a workload's working set grows.
    """
    values = as_address_array(blocks)
    count = int(values.size)
    if count == 0:
        return [(0, 0)]
    if points < 1:
        raise ConfigurationError("points must be >= 1")
    checkpoints = sorted(set(np.linspace(1, count, min(points, count), dtype=int).tolist()))
    seen = set()
    curve = []
    next_checkpoint = 0
    for position, block in enumerate(values.tolist(), start=1):
        seen.add(block)
        if position == checkpoints[next_checkpoint]:
            curve.append((position, len(seen)))
            next_checkpoint += 1
            if next_checkpoint >= len(checkpoints):
                break
    return curve


def working_set_sizes(blocks, window: int) -> List[int]:
    """Distinct blocks per consecutive window of ``window`` references.

    This is Denning's working-set measure sampled at non-overlapping
    windows; phase changes show up as jumps in the returned series.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    values = as_address_array(blocks)
    sizes = []
    for start in range(0, int(values.size), window):
        segment = values[start : start + window]
        sizes.append(int(np.unique(segment).size))
    return sizes
