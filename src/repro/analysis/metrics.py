"""Evaluation metrics used throughout the benchmark harness.

The paper reports a small set of metrics; this module implements each of
them plus the fidelity metrics needed to make the figure comparisons
numeric:

* **bits per address (BPA)** — compressed size in bits divided by trace
  length; "the smaller the BPA, the higher the compression ratio"
  (Tables 1 and 3);
* **compression ratio** — uncompressed size over compressed size
  (Figure 8's "compression ratio of 10");
* **miss-ratio error** — absolute difference between the miss-ratio curves
  of the exact and the lossy trace (Figure 3, made quantitative);
* **distinct-address ratio** — the footprint of the regenerated trace over
  the footprint of the original, the quantity distorted by the myopic
  interval problem (Section 5, Figure 4);
* **predictor-breakdown distance** — L1 distance between the Figure 5
  outcome distributions of the exact and lossy traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.traces.trace import ADDRESS_BYTES, as_address_array

__all__ = [
    "bits_per_address",
    "compression_ratio",
    "arithmetic_mean",
    "distinct_address_ratio",
    "sequence_length_preserved",
    "BpaTableRow",
]


def bits_per_address(compressed_size_bytes: int, address_count: int) -> float:
    """Compressed bits divided by the number of trace addresses.

    Example:
        >>> bits_per_address(1000, 4000)     # 1000 bytes for 4000 addresses
        2.0
    """
    if address_count <= 0:
        return 0.0
    return 8.0 * compressed_size_bytes / address_count


def compression_ratio(compressed_size_bytes: int, address_count: int) -> float:
    """Uncompressed size (8 bytes per address) over compressed size.

    Example:
        >>> compression_ratio(1000, 4000)    # 32000 raw bytes in 1000
        32.0
    """
    if compressed_size_bytes <= 0:
        return float("inf") if address_count else 0.0
    return (address_count * ADDRESS_BYTES) / compressed_size_bytes


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the aggregation used by Table 1 and Table 3).

    Example:
        >>> arithmetic_mean([1.0, 2.0, 3.0])
        2.0
    """
    values = list(values)
    if not values:
        return 0.0
    return float(np.mean(values))


def distinct_address_ratio(approximate, exact) -> float:
    """Footprint of the approximate trace relative to the exact trace.

    Close to 1.0 means the lossy trace preserves the number of distinct
    addresses; much below 1.0 is the signature of the myopic interval
    problem the byte translations are designed to avoid.
    """
    exact_distinct = int(np.unique(as_address_array(exact)).size)
    approx_distinct = int(np.unique(as_address_array(approximate)).size)
    if exact_distinct == 0:
        return 1.0 if approx_distinct == 0 else float("inf")
    return approx_distinct / exact_distinct


def sequence_length_preserved(approximate, exact) -> bool:
    """Lossy compression must preserve the number of addresses (Section 5)."""
    return int(as_address_array(approximate).size) == int(as_address_array(exact).size)


@dataclass(frozen=True)
class BpaTableRow:
    """One row of a Table 1 / Table 3 style bits-per-address table."""

    trace_name: str
    values: Dict[str, float]

    def formatted(self, columns: Sequence[str]) -> str:
        """Fixed-width text rendering of the row."""
        cells = [f"{self.trace_name:<16}"]
        for column in columns:
            cells.append(f"{self.values.get(column, float('nan')):>10.2f}")
        return " ".join(cells)
