"""Programmatic experiment runner.

The benchmark modules under ``benchmarks/`` regenerate the paper's tables
and figures through pytest.  This module exposes the same experiments as
plain functions returning structured results, so they can be scripted
(``examples/full_evaluation.py``), embedded in notebooks, or re-run at a
different scale without going through the test runner.  Each runner mirrors
one bench module; the bench modules stay the source of truth for the
assertions, the harness is the convenience layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.analysis.comparison import LossyFidelityResult, compare_cdc_breakdowns, compare_miss_ratio_surfaces
from repro.analysis.metrics import arithmetic_mean, bits_per_address
from repro.analysis.reporting import render_table
from repro.baselines.generic import raw_bits_per_address
from repro.baselines.unshuffle import unshuffled_bits_per_address
from repro.core.lossless import lossless_bits_per_address
from repro.core.lossy import LossyCodec, LossyConfig
from repro.predictors.vpc import VpcCodec
from repro.traces.filter import filtered_spec_like_trace
from repro.traces.spec_like import SPEC_LIKE_NAMES
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, AddressTrace

__all__ = ["EvaluationScale", "EvaluationHarness", "LosslessComparison", "LossyComparison"]


@dataclass(frozen=True)
class EvaluationScale:
    """Scale knobs shared by every experiment (see benchmarks/conftest.py).

    Attributes:
        references_per_workload: References generated before cache filtering.
        small_buffer: Bytesort buffer standing in for the paper's 1 M.
        big_buffer: Bytesort buffer standing in for the paper's 10 M.
        interval_length: Lossy interval length standing in for 10 M.
        threshold: Lossy threshold (paper: 0.1).
        set_counts: Cache set counts for the miss-ratio sweeps.
        seed: Workload generation seed.
    """

    references_per_workload: int = 30_000
    small_buffer: int = 4_000
    big_buffer: int = 64_000
    interval_length: int = 5_000
    threshold: float = 0.1
    set_counts: Sequence[int] = (64, 256, 1024)
    seed: int = 0

    def lossy_config(self, enable_translation: bool = True) -> LossyConfig:
        """The lossy configuration implied by the scale."""
        return LossyConfig(
            interval_length=self.interval_length,
            threshold=self.threshold,
            chunk_buffer_addresses=self.small_buffer,
            enable_translation=enable_translation,
        )


@dataclass(frozen=True)
class LosslessComparison:
    """Per-trace Table 1 row plus the rendered table."""

    rows: Dict[str, Dict[str, float]]
    means: Dict[str, float]
    text: str


@dataclass(frozen=True)
class LossyComparison:
    """Per-trace Table 3 row plus the rendered table."""

    rows: Dict[str, Dict[str, float]]
    means: Dict[str, float]
    text: str


class EvaluationHarness:
    """Regenerates the paper's experiments programmatically.

    Traces are generated lazily and cached, so running several experiments
    over the same workload set only pays the filtering cost once.
    """

    def __init__(self, scale: EvaluationScale = EvaluationScale(), workloads: Optional[Sequence[str]] = None) -> None:
        self.scale = scale
        self.workloads = tuple(workloads) if workloads is not None else SPEC_LIKE_NAMES
        self._traces: Dict[str, AddressTrace] = {}

    # -- trace cache ------------------------------------------------------------------
    def trace(self, name: str) -> AddressTrace:
        """The cache-filtered trace of one workload (generated on demand)."""
        if name not in self._traces:
            self._traces[name] = filtered_spec_like_trace(
                name, self.scale.references_per_workload, seed=self.scale.seed
            )
        return self._traces[name]

    def stream_trace(self, name: str, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES):
        """Stream one workload's cache-filtered trace as address chunks.

        The streaming counterpart of :meth:`trace`: the concatenated chunks
        are byte-identical to ``self.trace(name).addresses``, but the
        filter runs chunk by chunk so downstream consumers (ATC encoder,
        hierarchy replay) see chunk-bounded memory.  The result is not
        cached — the point of streaming is not to hold the trace.
        """
        from repro.traces.filter import iter_filtered_spec_like_chunks

        return iter_filtered_spec_like_chunks(
            name,
            self.scale.references_per_workload,
            chunk_addresses=chunk_addresses,
            seed=self.scale.seed,
        )

    def compress_workload(
        self,
        name: str,
        directory,
        mode: str = "c",
        config: Optional[LossyConfig] = None,
        chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
    ):
        """Filter one workload and compress it straight into a container.

        Runs the whole paper pipeline — workload generation -> L1 filter ->
        ATC encoder -> on-disk container — as one streaming chain, so the
        filtered trace is never materialised.  Returns the
        :class:`~repro.core.atc.AtcDecoder` of the written container.  The
        container is byte-identical to compressing ``self.trace(name)`` in
        memory with the same mode and configuration.
        """
        from repro.core.atc import compress_stream

        config = config if config is not None else self.scale.lossy_config()
        return compress_stream(
            self.stream_trace(name, chunk_addresses), directory, mode=mode, config=config
        )

    def traces(self, minimum_length: int = 1_000) -> Dict[str, AddressTrace]:
        """All workload traces at least ``minimum_length`` addresses long."""
        result = {}
        for name in self.workloads:
            trace = self.trace(name)
            if len(trace) >= minimum_length:
                result[name] = trace
        return result

    # -- Table 1 -----------------------------------------------------------------------
    def lossless_comparison(self, include_vpc: bool = True) -> LosslessComparison:
        """Table 1: bits per address of the lossless compressors."""
        columns = ["bz2", "us"] + (["tcg"] if include_vpc else []) + ["bs-small", "bs-big"]
        rows: Dict[str, Dict[str, float]] = {}
        for name, trace in self.traces().items():
            addresses = trace.addresses
            row = {
                "bz2": raw_bits_per_address(addresses),
                "us": unshuffled_bits_per_address(addresses, buffer_addresses=self.scale.small_buffer),
                "bs-small": lossless_bits_per_address(addresses, buffer_addresses=self.scale.small_buffer),
                "bs-big": lossless_bits_per_address(addresses, buffer_addresses=self.scale.big_buffer),
            }
            if include_vpc:
                payload = VpcCodec().compress(addresses)
                row["tcg"] = bits_per_address(len(payload), len(addresses))
            rows[name] = row
        means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in columns}
        text = render_table("Table 1: lossless bits per address", rows, columns)
        return LosslessComparison(rows=rows, means=means, text=text)

    # -- Table 3 -----------------------------------------------------------------------
    def lossy_comparison(self) -> LossyComparison:
        """Table 3: lossless vs lossy bits per address."""
        codec = LossyCodec(self.scale.lossy_config())
        rows: Dict[str, Dict[str, float]] = {}
        for name, trace in self.traces(minimum_length=2 * self.scale.interval_length).items():
            addresses = trace.addresses
            compressed = codec.compress(addresses)
            rows[name] = {
                "lossless": lossless_bits_per_address(addresses, buffer_addresses=self.scale.small_buffer),
                "lossy": compressed.bits_per_address(),
            }
        columns = ["lossless", "lossy"]
        means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in columns}
        text = render_table("Table 3: lossless vs lossy bits per address", rows, columns)
        return LossyComparison(rows=rows, means=means, text=text)

    # -- Figure 3 ----------------------------------------------------------------------
    def miss_ratio_fidelity(self, workloads: Optional[Sequence[str]] = None) -> Dict[str, LossyFidelityResult]:
        """Figure 3: exact-vs-lossy miss-ratio surfaces per trace."""
        config = self.scale.lossy_config()
        selected = workloads if workloads is not None else self.workloads
        results = {}
        for name in selected:
            trace = self.trace(name)
            if len(trace) < 2 * self.scale.interval_length:
                continue
            results[name] = compare_miss_ratio_surfaces(
                trace.addresses, set_counts=self.scale.set_counts, config=config, trace_name=name
            )
        return results

    # -- Figure 5 ----------------------------------------------------------------------
    def predictor_fidelity(self, workloads: Optional[Sequence[str]] = None) -> Dict[str, float]:
        """Figure 5: L1 distance between exact and lossy C/DC breakdowns."""
        config = self.scale.lossy_config()
        selected = workloads if workloads is not None else self.workloads
        distances = {}
        for name in selected:
            trace = self.trace(name)
            if len(trace) < 2 * self.scale.interval_length:
                continue
            _, _, distance = compare_cdc_breakdowns(trace.addresses, config=config)
            distances[name] = distance
        return distances

    # -- report ------------------------------------------------------------------------
    def full_report(self, figure_workloads: Optional[Sequence[str]] = None) -> str:
        """Run every experiment and return one markdown-ish text report."""
        sections: List[str] = []
        lossless = self.lossless_comparison()
        sections.append(lossless.text)
        lossy = self.lossy_comparison()
        sections.append(lossy.text)
        fidelity = self.miss_ratio_fidelity(figure_workloads)
        for name, result in fidelity.items():
            sections.append(
                f"Figure 3 [{name}]: max miss-ratio error {result.max_miss_ratio_error:.4f}, "
                f"chunks {result.num_chunks}/{result.num_intervals}, "
                f"lossy {result.bits_per_address:.2f} bits/address"
            )
        predictor = self.predictor_fidelity(figure_workloads)
        for name, distance in predictor.items():
            sections.append(f"Figure 5 [{name}]: C/DC breakdown distance {distance:.4f}")
        return "\n\n".join(sections)
