"""Programmatic experiment runner.

The benchmark modules under ``benchmarks/`` regenerate the paper's tables
and figures through pytest.  This module exposes the same experiments as
plain functions returning structured results, so they can be scripted
(``examples/full_evaluation.py``), embedded in notebooks, or re-run at a
different scale without going through the test runner.

Since the introduction of :mod:`repro.experiments`, the harness is a thin
convenience layer **over the declarative sweep subsystem**: every table
cell is measured by :func:`repro.experiments.codecs.evaluate_codec` on
:class:`~repro.experiments.spec.CodecSpec` cells, which is exactly what a
``repro sweep run`` evaluates — so the hand-driven tables and a spec-driven
sweep agree number for number, by construction.  :meth:`EvaluationHarness.
sweep_spec` returns the equivalent declarative spec for any table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.comparison import LossyFidelityResult, compare_cdc_breakdowns, compare_miss_ratio_surfaces
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.reporting import render_table
from repro.experiments.codecs import evaluate_codec
from repro.experiments.spec import CodecSpec, EvaluationScale, SweepSpec, WorkloadSpec
from repro.traces.filter import filtered_spec_like_trace
from repro.traces.spec_like import SPEC_LIKE_NAMES
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, AddressTrace

__all__ = ["EvaluationScale", "EvaluationHarness", "LosslessComparison", "LossyComparison"]


def _table1_codecs(scale: EvaluationScale, include_vpc: bool = True) -> Tuple[CodecSpec, ...]:
    """The Table 1 codec cells, in column order."""
    codecs = [
        CodecSpec(kind="raw", label="bz2"),
        CodecSpec(kind="unshuffle", label="us", buffer_addresses=scale.small_buffer),
    ]
    if include_vpc:
        codecs.append(CodecSpec(kind="vpc", label="tcg"))
    codecs.append(CodecSpec(kind="lossless", label="bs-small", buffer_addresses=scale.small_buffer))
    codecs.append(CodecSpec(kind="lossless", label="bs-big", buffer_addresses=scale.big_buffer))
    return tuple(codecs)


def _table3_codecs(scale: EvaluationScale) -> Tuple[CodecSpec, ...]:
    """The Table 3 codec cells (lossless vs lossy), in column order."""
    return (
        CodecSpec(kind="lossless", label="lossless", buffer_addresses=scale.small_buffer),
        CodecSpec(kind="lossy", label="lossy"),
    )


@dataclass(frozen=True)
class LosslessComparison:
    """Per-trace Table 1 row plus the rendered table."""

    rows: Dict[str, Dict[str, float]]
    means: Dict[str, float]
    text: str


@dataclass(frozen=True)
class LossyComparison:
    """Per-trace Table 3 row plus the rendered table."""

    rows: Dict[str, Dict[str, float]]
    means: Dict[str, float]
    text: str


class EvaluationHarness:
    """Regenerates the paper's experiments programmatically.

    Traces are generated lazily and cached, so running several experiments
    over the same workload set only pays the filtering cost once.  Table
    cells are measured through :func:`repro.experiments.codecs.
    evaluate_codec`, the same code path as a declarative ``repro sweep``.
    """

    def __init__(self, scale: EvaluationScale = EvaluationScale(), workloads: Optional[Sequence[str]] = None) -> None:
        self.scale = scale
        self.workloads = tuple(workloads) if workloads is not None else SPEC_LIKE_NAMES
        self._traces: Dict[str, AddressTrace] = {}

    # -- trace cache ------------------------------------------------------------------
    def trace(self, name: str) -> AddressTrace:
        """The cache-filtered trace of one workload (generated on demand)."""
        if name not in self._traces:
            self._traces[name] = filtered_spec_like_trace(
                name, self.scale.references_per_workload, seed=self.scale.seed
            )
        return self._traces[name]

    def stream_trace(self, name: str, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES):
        """Stream one workload's cache-filtered trace as address chunks.

        The streaming counterpart of :meth:`trace`: the concatenated chunks
        are byte-identical to ``self.trace(name).addresses``, but the
        filter runs chunk by chunk so downstream consumers (ATC encoder,
        hierarchy replay) see chunk-bounded memory.  The result is not
        cached — the point of streaming is not to hold the trace.
        """
        from repro.traces.filter import iter_filtered_spec_like_chunks

        return iter_filtered_spec_like_chunks(
            name,
            self.scale.references_per_workload,
            chunk_addresses=chunk_addresses,
            seed=self.scale.seed,
        )

    def compress_workload(
        self,
        name: str,
        directory,
        mode: str = "c",
        config=None,
        chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
    ):
        """Filter one workload and compress it straight into a container.

        Runs the whole paper pipeline — workload generation -> L1 filter ->
        ATC encoder -> on-disk container — as one streaming chain, so the
        filtered trace is never materialised.  Returns the
        :class:`~repro.core.atc.AtcDecoder` of the written container.  The
        container is byte-identical to compressing ``self.trace(name)`` in
        memory with the same mode and configuration.
        """
        from repro.core.atc import compress_stream

        config = config if config is not None else self.scale.lossy_config()
        return compress_stream(
            self.stream_trace(name, chunk_addresses), directory, mode=mode, config=config
        )

    def traces(self, minimum_length: int = 1_000) -> Dict[str, AddressTrace]:
        """All workload traces at least ``minimum_length`` addresses long."""
        result = {}
        for name in self.workloads:
            trace = self.trace(name)
            if len(trace) >= minimum_length:
                result[name] = trace
        return result

    # -- declarative bridge ------------------------------------------------------------
    def sweep_spec(self, table: str = "table1", name: str = "", apply_length_guard: bool = True) -> SweepSpec:
        """The declarative :class:`~repro.experiments.spec.SweepSpec`
        equivalent to one of the harness tables.

        Args:
            table: ``"table1"`` (lossless comparison columns) or
                ``"table3"`` (lossless vs lossy).
            name: Sweep name; defaults to ``harness-<table>``.
            apply_length_guard: Restrict the workload axis to traces long
                enough for the table, exactly like the comparison methods
                do (Table 1 skips traces under 1 000 addresses, Table 3
                traces under two lossy intervals).  This generates the
                filtered traces (cached on the harness); pass ``False`` to
                build the spec without touching traces and keep every
                workload.

        Running the returned spec through
        :class:`~repro.experiments.runner.SweepRunner` reproduces the same
        bits-per-address grid — same rows, same columns, same numbers — as
        the corresponding comparison method.
        """
        from repro.errors import ConfigurationError

        if table == "table1":
            codecs = _table1_codecs(self.scale)
            minimum_length = 1_000
        elif table == "table3":
            codecs = _table3_codecs(self.scale)
            minimum_length = 2 * self.scale.interval_length
        else:
            raise ConfigurationError(f"unknown harness table {table!r} (use 'table1' or 'table3')")
        workloads = tuple(self.traces(minimum_length)) if apply_length_guard else self.workloads
        if not workloads:
            raise ConfigurationError(
                f"no workload trace is long enough for {table} at this scale "
                f"(minimum {minimum_length} filtered addresses)"
            )
        return SweepSpec(
            name=name or f"harness-{table}",
            workloads=tuple(WorkloadSpec(name=w) for w in workloads),
            codecs=codecs,
            scale=self.scale,
        )

    def trace_provider(self):
        """A ``SweepRunner`` trace provider backed by this harness's cache.

        Pass the returned callable as
        :class:`~repro.experiments.runner.SweepRunner`'s ``trace_provider``
        when running a spec built by :meth:`sweep_spec`: cells that use the
        paper's L1 geometry at the harness scale are served from the
        harness's per-workload trace cache instead of regenerating and
        re-filtering the workload.  Any other cell returns ``None`` and the
        runner generates as usual.
        """
        from repro.traces.filter import PAPER_L1_CONFIG

        def provide(workload: WorkloadSpec, filter_spec):
            config = filter_spec.cache_config()
            same_geometry = (
                config.num_sets == PAPER_L1_CONFIG.num_sets
                and config.associativity == PAPER_L1_CONFIG.associativity
                and config.block_bytes == PAPER_L1_CONFIG.block_bytes
                and config.policy == PAPER_L1_CONFIG.policy
            )
            same_scale = (
                workload.references == self.scale.references_per_workload
                and workload.seed == self.scale.seed
            )
            if not (same_geometry and same_scale) or workload.name not in self.workloads:
                return None
            return self.trace(workload.name).addresses

        return provide

    def _comparison_rows(
        self, codecs: Sequence[CodecSpec], minimum_length: int
    ) -> Dict[str, Dict[str, float]]:
        """One bits-per-address row per (long enough) workload trace."""
        rows: Dict[str, Dict[str, float]] = {}
        for name, trace in self.traces(minimum_length).items():
            addresses = trace.addresses
            rows[name] = {
                codec.name: evaluate_codec(codec, addresses, self.scale)["bits_per_address"]
                for codec in codecs
            }
        return rows

    # -- Table 1 -----------------------------------------------------------------------
    def lossless_comparison(self, include_vpc: bool = True) -> LosslessComparison:
        """Table 1: bits per address of the lossless compressors."""
        codecs = _table1_codecs(self.scale, include_vpc)
        columns = [codec.name for codec in codecs]
        rows = self._comparison_rows(codecs, minimum_length=1_000)
        means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in columns}
        text = render_table("Table 1: lossless bits per address", rows, columns)
        return LosslessComparison(rows=rows, means=means, text=text)

    # -- Table 3 -----------------------------------------------------------------------
    def lossy_comparison(self) -> LossyComparison:
        """Table 3: lossless vs lossy bits per address."""
        codecs = _table3_codecs(self.scale)
        columns = [codec.name for codec in codecs]
        rows = self._comparison_rows(codecs, minimum_length=2 * self.scale.interval_length)
        means = {column: arithmetic_mean([row[column] for row in rows.values()]) for column in columns}
        text = render_table("Table 3: lossless vs lossy bits per address", rows, columns)
        return LossyComparison(rows=rows, means=means, text=text)

    # -- Figure 3 ----------------------------------------------------------------------
    def miss_ratio_fidelity(self, workloads: Optional[Sequence[str]] = None) -> Dict[str, LossyFidelityResult]:
        """Figure 3: exact-vs-lossy miss-ratio surfaces per trace."""
        config = self.scale.lossy_config()
        selected = workloads if workloads is not None else self.workloads
        results = {}
        for name in selected:
            trace = self.trace(name)
            if len(trace) < 2 * self.scale.interval_length:
                continue
            results[name] = compare_miss_ratio_surfaces(
                trace.addresses, set_counts=self.scale.set_counts, config=config, trace_name=name
            )
        return results

    # -- Figure 5 ----------------------------------------------------------------------
    def predictor_fidelity(self, workloads: Optional[Sequence[str]] = None) -> Dict[str, float]:
        """Figure 5: L1 distance between exact and lossy C/DC breakdowns."""
        config = self.scale.lossy_config()
        selected = workloads if workloads is not None else self.workloads
        distances = {}
        for name in selected:
            trace = self.trace(name)
            if len(trace) < 2 * self.scale.interval_length:
                continue
            _, _, distance = compare_cdc_breakdowns(trace.addresses, config=config)
            distances[name] = distance
        return distances

    # -- report ------------------------------------------------------------------------
    def full_report(self, figure_workloads: Optional[Sequence[str]] = None) -> str:
        """Run every experiment and return one markdown-ish text report."""
        sections: List[str] = []
        lossless = self.lossless_comparison()
        sections.append(lossless.text)
        lossy = self.lossy_comparison()
        sections.append(lossy.text)
        fidelity = self.miss_ratio_fidelity(figure_workloads)
        for name, result in fidelity.items():
            sections.append(
                f"Figure 3 [{name}]: max miss-ratio error {result.max_miss_ratio_error:.4f}, "
                f"chunks {result.num_chunks}/{result.num_intervals}, "
                f"lossy {result.bits_per_address:.2f} bits/address"
            )
        predictor = self.predictor_fidelity(figure_workloads)
        for name, distance in predictor.items():
            sections.append(f"Figure 5 [{name}]: C/DC breakdown distance {distance:.4f}")
        return "\n\n".join(sections)
