"""Command-line tools mirroring the paper's example programs.

The paper demonstrates ATC with two tiny C programs (Figures 6-8):
``bin2atc`` reads raw 64-bit values from standard input and writes a
compressed container directory, and ``atc2bin`` does the reverse.  The same
pair is provided here (plus ``atc-inspect`` to print container metadata),
installed as console scripts by the package:

.. code-block:: console

    $ head -c 800000000 /dev/urandom | bin2atc foobar
    $ atc2bin foobar | wc -c
    800000000

``bin2atc`` defaults to lossy mode (the paper's ``'k'``); pass
``--lossless`` for the safe lossless mode.

Beyond the paper's tools, the ``repro`` umbrella script exposes the
declarative experiment-orchestration subsystem as ``repro sweep``
(``run`` / ``status`` / ``report``) — see :mod:`repro.experiments` and
``docs/experiments.md`` — and the continuous-benchmarking runner as
``repro bench`` (normalized ``BENCH_*.json`` reports plus the baseline
comparison the CI regression gate runs) — see :mod:`repro.bench` and
``docs/performance.md``.  Every parallel subcommand takes ``--executor
{serial,thread,process}`` (default: the ``REPRO_EXECUTOR`` environment
variable, else auto), selecting the engine behind ``--jobs``.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import List, Optional

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig
from repro.errors import ContainerError, ReproError, TraceFormatError
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, iter_raw_chunks

__all__ = [
    "bin2atc_main",
    "atc2bin_main",
    "inspect_main",
    "fsck_main",
    "convert_main",
    "zoo_main",
    "sweep_main",
    "bench_main",
    "main",
]

_READ_CHUNK_ADDRESSES = DEFAULT_CHUNK_ADDRESSES


def _silence_stdout() -> None:
    """Point stdout at devnull after a broken pipe.

    Redirecting the file descriptor *before* anything flushes again is the
    documented recipe: closing or flushing a broken pipe would raise a
    second ``BrokenPipeError`` from the interpreter's exit flush.  Under
    test harnesses stdout may be a pipe-less fake without a usable
    ``fileno``; fall back to swapping the object.
    """
    try:
        devnull_fd = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull_fd, sys.stdout.fileno())
        os.close(devnull_fd)
    except (OSError, ValueError, AttributeError):
        sys.stdout = open(os.devnull, "w")


def _exit_quietly_on_broken_pipe(entry):
    """Wrap a CLI entry point so ``tool | head`` and Ctrl-C never traceback.

    Every console script in ``pyproject.toml`` points at a wrapped main, so
    the standalone tools and the ``repro`` umbrella behave identically:

    * a reader closing the pipe early (``repro zoo | head``) is the normal
      end of output, not a failure — silence stdout (so the interpreter's
      exit flush cannot raise a second ``BrokenPipeError``), flush stderr
      and exit **0**, the convention of well-behaved Unix filters;
    * an interrupt (Ctrl-C) flushes stderr and exits **130**
      (``128 + SIGINT``), the shell's conventional interrupt status,
      instead of escaping ``main()`` as a ``KeyboardInterrupt`` traceback.
    """

    @functools.wraps(entry)
    def wrapper(argv: Optional[List[str]] = None) -> int:
        try:
            return entry(argv)
        except BrokenPipeError:
            _silence_stdout()
            try:
                sys.stderr.flush()
            except OSError:
                pass
            return 0
        except KeyboardInterrupt:
            try:
                sys.stderr.flush()
            except OSError:
                pass
            return 130

    return wrapper


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--executor`` strategy knob to a subcommand parser."""
    parser.add_argument(
        "--executor",
        default=None,
        choices=("auto", "serial", "thread", "process"),
        help="execution strategy for parallel work: serial (inline), thread "
        "(GIL-releasing codecs), process (true multi-core with shared-memory "
        "chunk transport); default: the REPRO_EXECUTOR environment variable, "
        "else auto (serial for 1 job, threads otherwise)",
    )


def _executor_spec(args) -> Optional[str]:
    """Map the parsed ``--executor`` value to the library's spec form."""
    value = getattr(args, "executor", None)
    return None if value in (None, "auto") else value


def _build_bin2atc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bin2atc",
        description="Compress a raw 64-bit value stream (stdin) into an ATC container directory.",
    )
    parser.add_argument("directory", help="container directory to create")
    parser.add_argument(
        "--lossless",
        action="store_true",
        help="use lossless mode ('c') instead of the default lossy mode ('k')",
    )
    parser.add_argument(
        "--interval-length",
        type=int,
        default=10_000_000,
        help="lossy interval length L in addresses (default: 10M, the paper's value)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="lossy interval-distance threshold epsilon (default: 0.1)",
    )
    parser.add_argument(
        "--buffer-addresses",
        type=int,
        default=1_000_000,
        help="bytesort buffer size in addresses (default: 1M)",
    )
    parser.add_argument(
        "--backend",
        default="bz2",
        help="byte-level compression backend: bz2, zlib, lzma, store (default: bz2)",
    )
    parser.add_argument(
        "--no-translation",
        action="store_true",
        help="disable byte translation when imitating intervals (Figure 4 ablation)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="compress up to N chunks concurrently (0 = one per CPU; default: 1, serial; "
        "output is byte-identical for any value)",
    )
    _add_executor_argument(parser)
    parser.add_argument("--input", default=None, help="read raw trace from this file instead of stdin")
    return parser


@_exit_quietly_on_broken_pipe
def bin2atc_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``bin2atc`` console script."""
    args = _build_bin2atc_parser().parse_args(argv)
    try:
        config = LossyConfig(
            interval_length=args.interval_length,
            threshold=args.threshold,
            chunk_buffer_addresses=args.buffer_addresses,
            backend=args.backend,
            enable_translation=not args.no_translation,
            workers=args.jobs,
            executor=_executor_spec(args),
        )
    except ReproError as error:
        print(f"bin2atc: error: {error}", file=sys.stderr)
        return 1
    mode = MODE_LOSSLESS if args.lossless else MODE_LOSSY
    try:
        stream = open(args.input, "rb") if args.input else sys.stdin.buffer
    except OSError as error:
        print(f"bin2atc: error: cannot open input: {error}", file=sys.stderr)
        return 1
    try:
        # Streaming pipeline: the raw input is read one fixed-size chunk at
        # a time and fed straight to the encoder, so memory stays bounded
        # by the chunk size (plus the encoder's interval buffer) no matter
        # how long the trace is.
        chunks = iter_raw_chunks(stream, _READ_CHUNK_ADDRESSES)
        with AtcEncoder(args.directory, mode=mode, config=config) as encoder:
            try:
                encoder.encode_stream(chunks)
            except TraceFormatError:
                # All complete records were already coded; only the final
                # partial record is dropped, like the paper's fread loop.
                print("warning: dropped a trailing partial record", file=sys.stderr)
            coded = encoder.addresses_coded
        print(f"coded {coded} addresses into {args.directory}", file=sys.stderr)
        return 0
    except ReproError as error:
        print(f"bin2atc: error: {error}", file=sys.stderr)
        return 1
    finally:
        if args.input:
            stream.close()


def _build_atc2bin_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atc2bin",
        description="Decompress an ATC container directory to raw 64-bit values on stdout.",
    )
    parser.add_argument("directory", help="container directory to read")
    parser.add_argument("--output", default=None, help="write to this file instead of stdout")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="prefetch and decompress up to N chunks concurrently (0 = one per CPU; default: 1)",
    )
    _add_executor_argument(parser)
    return parser


@_exit_quietly_on_broken_pipe
def atc2bin_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``atc2bin`` console script.

    Exit codes: 0 success; 2 when the directory cannot be opened as an ATC
    container (missing, truncated or corrupt INFO); 1 for any other error,
    including integrity damage detected mid-decode.
    """
    args = _build_atc2bin_parser().parse_args(argv)
    try:
        decoder = AtcDecoder(args.directory, workers=args.jobs, executor=_executor_spec(args))
    except ContainerError as error:
        print(f"atc2bin: error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"atc2bin: error: {error}", file=sys.stderr)
        return 1
    try:
        sink = open(args.output, "wb") if args.output else sys.stdout.buffer
    except OSError as error:
        print(f"atc2bin: error: cannot open output: {error}", file=sys.stderr)
        return 1
    try:
        # Streaming pipeline: decoded intervals are re-chunked to a fixed
        # output chunk size, so writes are bounded-memory regardless of the
        # container's interval length or total trace length.
        for chunk in decoder.iter_chunks(_READ_CHUNK_ADDRESSES):
            sink.write(chunk.astype("<u8", copy=False).tobytes())
        return 0
    except ReproError as error:
        print(f"atc2bin: error: {error}", file=sys.stderr)
        return 1
    finally:
        if args.output:
            sink.close()


def _build_inspect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atc-inspect",
        description="Print the metadata and interval-trace summary of an ATC container.",
    )
    parser.add_argument("directory", help="container directory to inspect")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also check every chunk against its recorded digest (format v2) or by "
        "decompression (v1) without decoding the trace; exit 1 with a chunk-level "
        "damage table on mismatch",
    )
    return parser


def _print_damage_table(scrub, stream) -> None:
    """Render one container scrub as a chunk-level damage table."""
    if scrub.info_status != "ok":
        print(f"INFO             : {scrub.info_status} ({scrub.info_detail})", file=stream)
    for chunk in scrub.chunks:
        line = f"{chunk.file:<17}: {chunk.status}"
        if chunk.detail:
            line += f" ({chunk.detail})"
        print(line, file=stream)


@_exit_quietly_on_broken_pipe
def inspect_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``atc-inspect`` console script.

    Exit codes: 0 success; with ``--verify``, 1 when any chunk fails its
    integrity check; 2 when the directory is not an ATC container.
    """
    args = _build_inspect_parser().parse_args(argv)
    try:
        decoder = AtcDecoder(args.directory)
    except ContainerError as error:
        print(f"atc-inspect: error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"atc-inspect: error: {error}", file=sys.stderr)
        return 1
    metadata = decoder.metadata
    records = decoder.records
    imitations = sum(1 for record in records if record.kind == "imitate")
    print(f"container        : {args.directory}")
    for key in sorted(metadata):
        if key == "chunk_digests":
            # The digest table is per-chunk noise here; --verify checks it.
            print(f"{key:<17}: {len(metadata[key])} chunks digested")
            continue
        print(f"{key:<17}: {metadata[key]}")
    print(f"intervals        : {len(records)} ({imitations} imitated)")
    print(f"on-disk bytes    : {decoder.compressed_bytes()}")
    print(f"bits per address : {decoder.bits_per_address():.3f}")
    if args.verify:
        from repro.core.fsck import scrub_container

        scrub = scrub_container(args.directory)
        if not scrub.ok:
            print("verify           : FAILED", file=sys.stderr)
            _print_damage_table(scrub, sys.stderr)
            return 1
        print(f"verify           : ok ({len(scrub.chunks)} chunks checked)")
    return 0


def _build_fsck_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fsck",
        description=(
            "Scrub on-disk ATC storage for corruption: a container directory, a sweep "
            "ResultStore, or a service cache root.  Damage is localized to chunk (or "
            "store-entry) granularity; --repair salvages every intact chunk of a "
            "damaged container into a new, valid partial container.  See "
            "docs/robustness.md."
        ),
    )
    parser.add_argument("path", help="container, result-store or cache directory to scrub")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="salvage a damaged container's intact chunks into a valid partial "
        "container (default destination: <path>.salvaged)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="DIR",
        help="destination directory for --repair (default: <path>.salvaged)",
    )
    parser.add_argument(
        "--format",
        "-f",
        default="text",
        choices=("text", "json"),
        help="report format (default: text)",
    )
    return parser


@_exit_quietly_on_broken_pipe
def fsck_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro fsck`` subcommand.

    Exit codes: 0 when everything scrubbed clean; 1 when damage was found
    (even if --repair salvaged a partial container); 2 when the path is
    not scannable at all (not a container/store/cache directory).
    """
    args = _build_fsck_parser().parse_args(argv)
    from repro.core.fsck import repair_container, scrub_path

    try:
        report = scrub_path(args.path)
    except ContainerError as error:
        print(f"repro fsck: error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"repro fsck: error: {error}", file=sys.stderr)
        return 1

    repair = None
    repair_error = None
    if args.repair and not report.ok:
        damaged = [c for c in report.containers if not c.ok]
        if len(report.containers) == 1 and report.kind == "container" and damaged:
            destination = args.output if args.output else f"{args.path.rstrip('/')}.salvaged"
            try:
                repair = repair_container(args.path, destination)
            except ReproError as error:
                repair_error = str(error)
        elif damaged:
            repair_error = (
                "--repair salvages a single container; run it on each damaged "
                "container directory reported below"
            )

    if args.format == "json":
        import json

        document = report.to_json()
        if repair is not None:
            document["repair"] = repair.to_json()
        if repair_error is not None:
            document["repair_error"] = repair_error
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"path             : {report.path}")
        print(f"kind             : {report.kind}")
        for scrub in report.containers:
            verdict = "clean" if scrub.ok else "DAMAGED"
            print(f"container        : {scrub.path} ({verdict})")
            if not scrub.ok:
                _print_damage_table(scrub, sys.stdout)
        for store in report.stores:
            verdict = "clean" if store.ok else "DAMAGED"
            print(f"store            : {store.path} ({len(store.entries)} entries, {verdict})")
            for entry in store.damaged_entries:
                line = f"  {entry.file:<15}: {entry.status}"
                if entry.detail:
                    line += f" ({entry.detail})"
                print(line)
        if repair is not None:
            print(
                f"repair           : salvaged {len(repair.salvaged_chunks)} chunks "
                f"({repair.salvaged_addresses}/{repair.original_addresses} addresses) "
                f"into {repair.destination}"
            )
            print(f"dropped chunks   : {repair.dropped_chunks}")
        if repair_error is not None:
            print(f"repro fsck: repair failed: {repair_error}", file=sys.stderr)
        print(f"verdict          : {'clean' if report.ok else 'damage found'}")
    return 0 if report.ok else 1


def _build_convert_parser() -> argparse.ArgumentParser:
    from repro.traces.formats import format_names

    names = sorted(format_names())
    parser = argparse.ArgumentParser(
        prog="repro convert",
        description=(
            "Convert trace files between real simulator formats (DRAMSim2 k6/mase text, "
            "fixed-record binary dumps, raw 64-bit traces; .gz transparent) and ATC "
            "containers, streaming file-to-file at flat memory.  An existing container "
            "directory as SOURCE exports back out; any other SOURCE converts into a new "
            "container at DESTINATION.  See docs/trace-formats.md for the format specs."
        ),
    )
    parser.add_argument("source", help="input trace file, or an ATC container directory to export")
    parser.add_argument("destination", help="output container directory, or the trace file to write")
    parser.add_argument(
        "--from",
        dest="from_format",
        default=None,
        choices=names,
        help="input trace format (default: detect from the filename)",
    )
    parser.add_argument(
        "--to",
        dest="to_format",
        default=None,
        choices=names,
        help="output trace format when exporting (default: detect from the filename)",
    )
    parser.add_argument(
        "--lossy",
        action="store_true",
        help="encode the container in lossy mode 'k' (addresses approximated per the "
        "paper's codec; the command/cycle sidecar stays exact); default: lossless 'c'",
    )
    parser.add_argument(
        "--no-sidecar",
        action="store_true",
        help="do not store the command/cycle sidecar; exports then synthesize "
        "read commands and --cycle-gap spaced cycles",
    )
    parser.add_argument(
        "--interval-length",
        type=int,
        default=10_000_000,
        help="lossy interval length L in addresses (default: 10M, the paper's value)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="lossy interval-distance threshold epsilon (default: 0.1)",
    )
    parser.add_argument(
        "--buffer-addresses",
        type=int,
        default=1_000_000,
        help="bytesort buffer size in addresses (default: 1M)",
    )
    parser.add_argument(
        "--backend",
        default="bz2",
        help="byte-level compression backend: bz2, zlib, lzma, store (default: bz2)",
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=DEFAULT_CHUNK_ADDRESSES,
        help="streaming chunk size in records (bounds peak memory; default: 65536)",
    )
    parser.add_argument(
        "--cycle-gap",
        type=int,
        default=1,
        help="cycle spacing synthesized when exporting a container without a sidecar "
        "(default: 1)",
    )
    parser.add_argument(
        "--record-bytes",
        type=int,
        default=8,
        help="bin format: total bytes per record (default: 8)",
    )
    parser.add_argument(
        "--address-offset",
        type=int,
        default=0,
        help="bin format: byte offset of the address field (default: 0)",
    )
    parser.add_argument(
        "--address-bytes",
        type=int,
        default=8,
        help="bin format: width of the address field in bytes, 1..8 (default: 8)",
    )
    parser.add_argument(
        "--big-endian",
        action="store_true",
        help="bin format: address field is big-endian (default: little-endian)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="compress/decompress up to N chunks concurrently (0 = one per CPU; default: 1)",
    )
    _add_executor_argument(parser)
    return parser


@_exit_quietly_on_broken_pipe
def convert_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro convert`` subcommand (file <-> ATC)."""
    args = _build_convert_parser().parse_args(argv)
    from repro.traces.formats import (
        BinaryLayout,
        convert_to_atc,
        export_from_atc,
        get_format,
        is_atc_container,
    )

    try:
        layout = BinaryLayout(
            record_bytes=args.record_bytes,
            address_offset=args.address_offset,
            address_bytes=args.address_bytes,
            byteorder="big" if args.big_endian else "little",
        )
    except ReproError as error:
        print(f"repro convert: error: {error}", file=sys.stderr)
        return 1

    def options(format_name: Optional[str]) -> dict:
        # The layout knobs only apply to fixed-record formats ('raw' is the
        # fixed 8-byte little-endian special case and takes no overrides).
        return {"layout": layout} if format_name == "bin" else {}

    try:
        if is_atc_container(args.source):
            fmt = get_format(args.to_format) if args.to_format else None
            summary = export_from_atc(
                args.source,
                args.destination,
                format=fmt.name if fmt else None,
                chunk_addresses=args.chunk_records,
                cycle_gap=args.cycle_gap,
                workers=args.jobs,
                executor=_executor_spec(args),
                **options(fmt.name if fmt else args.to_format or _detected(args.destination)),
            )
            print(
                f"exported {summary['records']} records to {args.destination} "
                f"({summary['format']})",
                file=sys.stderr,
            )
            return 0
        config = LossyConfig(
            interval_length=args.interval_length,
            threshold=args.threshold,
            chunk_buffer_addresses=args.buffer_addresses,
            backend=args.backend,
            workers=args.jobs,
            executor=_executor_spec(args),
        )
        mode = MODE_LOSSY if args.lossy else MODE_LOSSLESS
        from_format = args.from_format or _detected(args.source)
        summary = convert_to_atc(
            args.source,
            args.destination,
            format=args.from_format,
            mode=mode,
            config=config,
            chunk_records=args.chunk_records,
            write_sidecar=not args.no_sidecar,
            **options(from_format),
        )
        print(
            f"coded {summary['addresses']} addresses from {args.source} "
            f"({summary['format']}) into {args.destination}",
            file=sys.stderr,
        )
        return 0
    except (ReproError, OSError) as error:
        print(f"repro convert: error: {error}", file=sys.stderr)
        return 1


def _detected(path: str) -> Optional[str]:
    from repro.traces.formats import detect_format

    return detect_format(path)


def _build_zoo_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro zoo",
        description=(
            "List the registered workload zoo (repro.traces.zoo): mix1-mix7 multi-core "
            "SPEC-2017-like mixes, GAP-like graph traversals and STREAM-like kernels.  "
            "Every name works as a sweep/bench workload; see docs/workloads.md."
        ),
    )
    parser.add_argument(
        "--family",
        default=None,
        choices=("mix", "gap", "stream"),
        help="only list one pattern family",
    )
    parser.add_argument(
        "--format",
        "-f",
        default="text",
        choices=("text", "json"),
        help="output format (default: text)",
    )
    return parser


@_exit_quietly_on_broken_pipe
def zoo_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro zoo`` subcommand (workload catalog)."""
    args = _build_zoo_parser().parse_args(argv)
    from repro.traces.zoo import zoo_suite

    entries = [e for e in zoo_suite() if args.family in (None, e.family)]
    if args.format == "json":
        import json

        print(
            json.dumps(
                [
                    {
                        "name": entry.name,
                        "family": entry.family,
                        "cores": entry.cores,
                        "components": list(entry.components),
                        "description": entry.description,
                    }
                    for entry in entries
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(entry.name) for entry in entries)
    for entry in entries:
        print(f"{entry.name:<{width}}  {entry.family:<6}  {entry.cores} core(s)  {entry.description}")
    return 0


def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run declarative experiment sweeps (repro.experiments): a TOML/JSON spec "
            "declares a workloads x filters x codecs grid; completed cells are cached "
            "on disk, so re-runs and resumed sweeps skip finished work."
        ),
    )
    actions = parser.add_subparsers(dest="action", metavar="{run,status,report,merge}")

    def add_common(sub) -> None:
        sub.add_argument("spec", help="sweep spec file (.toml, or JSON)")
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="result-cache directory (default: <spec>.sweep-cache next to the spec)",
        )

    run = actions.add_parser("run", help="run (or resume) the sweep, then print the report")
    add_common(run)
    run.add_argument("--no-cache", action="store_true", help="recompute every cell, store nothing")
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="evaluate up to N (workload, filter) groups concurrently (0 = one per CPU)",
    )
    _add_executor_argument(run)
    run.add_argument(
        "--format",
        "-f",
        default="text",
        choices=("text", "markdown", "csv", "json"),
        help="report format (default: text)",
    )
    run.add_argument("--output", "-o", default=None, help="write the report to this file")
    run.add_argument(
        "--shard",
        default=None,
        metavar="i/N",
        help=(
            "run as distributed worker i of N (1-based): evaluate only the cells whose "
            "content hash falls in this shard; every worker sharing the cache directory "
            "computes the same partition (see docs/distributed-sweeps.md)"
        ),
    )
    run.add_argument(
        "--steal",
        action="store_true",
        help=(
            "after draining the own shard (or instead of one, without --shard), claim "
            "pending cells of other shards — including cells whose lease went stale "
            "because their worker crashed"
        ),
    )
    run.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="distributed lease lifetime (default: 600)",
    )
    run.add_argument(
        "--owner",
        default=None,
        help="lease identity of this worker (default: host:pid:token)",
    )

    status = actions.add_parser("status", help="show how many grid cells are already cached")
    add_common(status)
    status.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="also show per-shard progress under an N-way partition, plus lease counts",
    )

    merge = actions.add_parser(
        "merge",
        help=(
            "assemble the report from whatever the cache holds (possibly written by many "
            "workers), reporting missing cells instead of computing them"
        ),
    )
    add_common(merge)
    merge.add_argument(
        "--format",
        "-f",
        default="text",
        choices=("text", "markdown", "csv", "json"),
        help="report format (default: text)",
    )
    merge.add_argument("--output", "-o", default=None, help="write the report to this file")
    merge.add_argument(
        "--allow-partial",
        action="store_true",
        help="emit the partial report with exit status 0 even when cells are missing",
    )

    report = actions.add_parser("report", help="render the report from cached cells only")
    add_common(report)
    report.add_argument(
        "--format",
        "-f",
        default="text",
        choices=("text", "markdown", "csv", "json"),
        help="report format (default: text)",
    )
    report.add_argument("--output", "-o", default=None, help="write the report to this file")
    return parser


def _default_sweep_cache_dir(spec_path: str) -> str:
    from pathlib import Path

    path = Path(spec_path)
    return str(path.with_name(path.stem + ".sweep-cache"))


def _emit_report(report: str, output: Optional[str]) -> int:
    if output is None:
        print(report)
        return 0
    try:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(report if report.endswith("\n") else report + "\n")
    except OSError as error:
        print(f"repro sweep: error: cannot write report: {error}", file=sys.stderr)
        return 1
    print(f"report written to {output}", file=sys.stderr)
    return 0


def _sweep_run_distributed(args, spec, cache_dir: str) -> int:
    """``repro sweep run --shard i/N [--steal]``: one cooperative worker."""
    from repro.experiments import DEFAULT_LEASE_TTL, DistributedSweepRunner

    runner = DistributedSweepRunner(
        spec,
        cache_dir,
        shard=args.shard,
        steal=args.steal,
        lease_ttl=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
        owner=args.owner,
        workers=getattr(args, "jobs", 1),
        executor=_executor_spec(args),
    )
    report = runner.run_worker()
    shard = f"{report.shard[0]}/{report.shard[1]}" if report.shard else "none"
    print(f"worker           : {report.owner}", file=sys.stderr)
    print(f"shard            : {shard} ({report.shard_units} cells)", file=sys.stderr)
    print(
        f"evaluated        : {report.evaluated} "
        f"({report.stolen} stolen, {report.reclaimed} leases reclaimed)",
        file=sys.stderr,
    )
    if report.skipped_leased:
        print(f"skipped (leased) : {report.skipped_leased}", file=sys.stderr)
    if report.integrity_evictions:
        print(
            f"quarantined      : {report.integrity_evictions} corrupt "
            f"store entr{'y' if report.integrity_evictions == 1 else 'ies'} (re-run)",
            file=sys.stderr,
        )
    print(
        f"sweep            : {report.total_units - report.remaining}/{report.total_units} "
        f"cells complete",
        file=sys.stderr,
    )
    if report.is_sweep_complete:
        print(
            f"assemble the report with: repro sweep merge {args.spec}"
            + (f" --cache-dir {args.cache_dir}" if args.cache_dir else ""),
            file=sys.stderr,
        )
    return 0


def _sweep_merge(args, spec, cache_dir: str) -> int:
    """``repro sweep merge``: report from the store, never computing."""
    from repro.experiments import ResultStore, merge_sweep

    merged = merge_sweep(spec, ResultStore(cache_dir))
    print(
        f"sweep {merged.result.name}: {merged.completed_units}/{merged.total_units} "
        f"cells merged from {cache_dir}",
        file=sys.stderr,
    )
    if not merged.is_complete:
        for label in merged.missing:
            print(f"missing          : {label}", file=sys.stderr)
        if not args.allow_partial:
            print(
                f"repro sweep: error: {len(merged.missing)} of {merged.total_units} cells "
                f"have no stored result; finish the workers or pass --allow-partial",
                file=sys.stderr,
            )
            return 1
    return _emit_report(merged.result.render(args.format), args.output)


@_exit_quietly_on_broken_pipe
def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro sweep`` subcommand (run/status/report/merge)."""
    parser = _build_sweep_parser()
    args = parser.parse_args(argv)
    if args.action is None:
        parser.print_usage(sys.stderr)
        print(
            "repro sweep: error: an action is required (run, status, report or merge)",
            file=sys.stderr,
        )
        return 2
    from repro.experiments import SweepRunner, load_sweep_spec

    try:
        spec = load_sweep_spec(args.spec)
    except ReproError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 1
    cache_dir = args.cache_dir if args.cache_dir is not None else _default_sweep_cache_dir(args.spec)
    distributed = args.action == "run" and (args.shard is not None or args.steal)
    if args.action == "run" and getattr(args, "no_cache", False):
        if distributed:
            print(
                "repro sweep: error: --no-cache is incompatible with --shard/--steal "
                "(the result cache is what distributed workers coordinate through)",
                file=sys.stderr,
            )
            return 2
        cache_dir = None
    try:
        if distributed:
            return _sweep_run_distributed(args, spec, cache_dir)
        if args.action == "merge":
            return _sweep_merge(args, spec, cache_dir)
        runner = SweepRunner(
            spec,
            cache_dir=cache_dir,
            workers=getattr(args, "jobs", 1),
            executor=_executor_spec(args),
        )
        if args.action == "status":
            status = runner.status()
            print(f"sweep            : {status.name}")
            print(f"cache directory  : {cache_dir}")
            print(f"cells            : {status.completed_units}/{status.total_units} cached")
            if args.shards is not None:
                from repro.experiments import ResultStore, lease_census, shard_progress

                for shard in shard_progress(spec, ResultStore(cache_dir), args.shards):
                    print(
                        f"shard {shard.index}/{shard.count}      : "
                        f"{shard.completed_units}/{shard.total_units} cached"
                    )
                census = lease_census(cache_dir)
                print(f"leases           : {census.active} active, {census.stale} stale")
            for label in status.pending:
                print(f"pending          : {label}")
            return 0
        if args.action == "report":
            status = runner.status()
            if not status.is_complete:
                print(
                    f"repro sweep: error: {len(status.pending)} of {status.total_units} cells "
                    f"have no cached result; run 'repro sweep run {args.spec}' first",
                    file=sys.stderr,
                )
                return 1
        result = runner.run()
        print(
            f"sweep {result.name}: {len(result.rows)} cells, "
            f"{result.cached_count()} from cache",
            file=sys.stderr,
        )
        return _emit_report(result.render(args.format), args.output)
    except ReproError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 1


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the operational benchmark suite (repro.bench) and emit a normalized "
            "machine-readable report; optionally compare it against a committed "
            "baseline with a tolerance band (the CI regression gate)."
        ),
    )
    parser.add_argument(
        "--refs",
        type=int,
        default=30_000,
        help="data references generated before cache filtering (default: 30000, the CI scale)",
    )
    parser.add_argument(
        "--workload", default="429.mcf", help="spec-like workload to measure (default: 429.mcf)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker count for the parallel benchmark cases (0 = one per CPU; default: 1)",
    )
    _add_executor_argument(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON on stdout instead of the text table",
    )
    parser.add_argument(
        "--output", "-o", default=None, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="compare against this baseline report; exit 1 on any regression "
        "(e.g. benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.25,
        help="wall-time tolerance band for --baseline (default: 1.25 = fail beyond +25%%)",
    )
    def _positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return parsed

    parser.add_argument(
        "--profile",
        type=_positive_int,
        nargs="?",
        const=15,
        default=None,
        metavar="N",
        help="also profile every case under cProfile and print its top-N "
        "cumulative-time table on stderr (default N: 15); profiled times "
        "are for locating hot paths, not for comparison",
    )
    return parser


@_exit_quietly_on_broken_pipe
def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro bench`` subcommand (run + optional gate)."""
    args = _build_bench_parser().parse_args(argv)
    from repro.bench import (
        BenchScale,
        build_report,
        compare_reports,
        load_report,
        render_report_text,
        resolved_executor_name,
        run_suite,
        save_report,
    )
    from repro.core.parallel import resolve_workers

    spec = _executor_spec(args)
    try:
        workers = resolve_workers(args.jobs)
        scale = BenchScale(references=args.refs, workload=args.workload)
        results = run_suite(scale, executor=spec, workers=workers)
        report = build_report(results, scale, resolved_executor_name(spec, workers), workers)
        if args.output is not None:
            save_report(report, args.output)
            print(f"benchmark report written to {args.output}", file=sys.stderr)
        if args.json:
            save_report(report, None)
        else:
            print(render_report_text(report))
        if args.profile is not None:
            from repro.bench import run_profile

            # stderr, like the gate verdicts: --json owns stdout
            tables = run_profile(scale, executor=spec, workers=workers, top=args.profile)
            for name, table in tables.items():
                print(
                    f"\n=== profile: {name} (top {args.profile} by cumulative time) ===",
                    file=sys.stderr,
                )
                print(table.rstrip(), file=sys.stderr)
        if args.baseline is None:
            return 0
        comparison = compare_reports(
            report, load_report(args.baseline), max_slowdown=args.max_slowdown
        )
        print(comparison.render(), file=sys.stderr)
        return 0 if comparison.ok else 1
    except ReproError as error:
        print(f"repro bench: error: {error}", file=sys.stderr)
        return 1


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the ATC compression service: an HTTP server exposing "
            "/v1/compress, /v1/decompress, /v1/inspect, /v1/sweep, /v1/healthz "
            "and /v1/metrics with bounded memory, connection backpressure and "
            "graceful SIGTERM drain."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback only)")
    parser.add_argument(
        "--port", type=int, default=8742, help="TCP port; 0 picks an ephemeral port (default: 8742)"
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=8,
        metavar="N",
        help="connection-gate capacity; excess connections get 429 + Retry-After (default: 8)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker count for the shared codec executor (default: 1)",
    )
    _add_executor_argument(parser)
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-request processing budget; exceeding it answers 504 (default: 300)",
    )
    parser.add_argument(
        "--max-body-bytes",
        type=int,
        default=1 << 30,
        metavar="BYTES",
        help="cap on any request body; larger uploads answer 413 (default: 1 GiB)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="dedup-cache directory shared across restarts; default: a private "
        "temporary directory removed at shutdown",
    )
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro serve`` subcommand."""
    args = _build_serve_parser().parse_args(argv)
    from repro.service import AtcService, ServiceConfig

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            max_connections=args.max_connections,
            workers=args.workers,
            executor=_executor_spec(args),
            request_timeout=args.request_timeout if args.request_timeout > 0 else None,
            max_body_bytes=args.max_body_bytes,
            cache_dir=args.cache_dir,
        )
        service = AtcService(config)
    except ReproError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 1

    def announce() -> None:
        print(f"repro serve: listening on http://{config.host}:{service.port}", file=sys.stderr)
        sys.stderr.flush()

    try:
        return service.run(ready=announce)
    except ReproError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 1


#: ``repro`` subcommands: name -> (entry point, one-line help).  The usage
#: text below is generated from this registry, so adding a subcommand here
#: is all it takes for it to appear in ``repro --help``.
_SUBCOMMANDS = {
    "compress": (bin2atc_main, "raw 64-bit value stream -> ATC container (bin2atc)"),
    "decompress": (atc2bin_main, "ATC container -> raw 64-bit value stream (atc2bin)"),
    "inspect": (inspect_main, "print container metadata and sizes (atc-inspect)"),
    "fsck": (fsck_main, "scrub containers/stores/caches for corruption; --repair salvages"),
    "convert": (convert_main, "convert k6/mase/binary trace files to and from ATC containers"),
    "zoo": (zoo_main, "list the registered workload zoo (mixes, GAP-like, STREAM-like)"),
    "sweep": (sweep_main, "run declarative experiment sweeps (run, status, report)"),
    "bench": (bench_main, "run the benchmark suite; emit/compare BENCH JSON reports"),
    "serve": (serve_main, "run the ATC compression service (HTTP, backpressure, metrics)"),
}


def _print_repro_usage(stream) -> None:
    """Render the umbrella usage from the subcommand registry."""
    names = "|".join(_SUBCOMMANDS)
    width = max(len(name) for name in _SUBCOMMANDS)
    print(f"usage: repro {{{names}}} [options]", file=stream)
    print("", file=stream)
    print("subcommands:", file=stream)
    for name, (_, help_line) in _SUBCOMMANDS.items():
        print(f"  {name:<{width}}  {help_line}", file=stream)
    print("", file=stream)
    print("run 'repro <subcommand> --help' for the subcommand's options", file=stream)


@_exit_quietly_on_broken_pipe
def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the umbrella ``repro`` console script.

    Dispatches ``repro compress`` / ``repro decompress`` / ``repro inspect``
    / ``repro sweep`` to the corresponding tool main, so a single installed
    script exposes the whole pipeline — compression (with its ``--jobs``
    parallelism knob), container inspection, and the declarative
    experiment-sweep subsystem.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        _print_repro_usage(sys.stdout if argv else sys.stderr)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    entry = _SUBCOMMANDS.get(command)
    if entry is None:
        print(f"repro: error: unknown subcommand {command!r}", file=sys.stderr)
        _print_repro_usage(sys.stderr)
        return 2
    handler, _ = entry
    return handler(rest)


if __name__ == "__main__":  # pragma: no cover - exercised via console scripts
    sys.exit(main())
