"""Command-line tools mirroring the paper's example programs.

The paper demonstrates ATC with two tiny C programs (Figures 6-8):
``bin2atc`` reads raw 64-bit values from standard input and writes a
compressed container directory, and ``atc2bin`` does the reverse.  The same
pair is provided here (plus ``atc-inspect`` to print container metadata),
installed as console scripts by the package:

.. code-block:: console

    $ head -c 800000000 /dev/urandom | bin2atc foobar
    $ atc2bin foobar | wc -c
    800000000

``bin2atc`` defaults to lossy mode (the paper's ``'k'``); pass
``--lossless`` for the safe lossless mode.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.lossy import LossyConfig
from repro.errors import ReproError, TraceFormatError
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, iter_raw_chunks

__all__ = ["bin2atc_main", "atc2bin_main", "inspect_main", "main"]

_READ_CHUNK_ADDRESSES = DEFAULT_CHUNK_ADDRESSES


def _build_bin2atc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bin2atc",
        description="Compress a raw 64-bit value stream (stdin) into an ATC container directory.",
    )
    parser.add_argument("directory", help="container directory to create")
    parser.add_argument(
        "--lossless",
        action="store_true",
        help="use lossless mode ('c') instead of the default lossy mode ('k')",
    )
    parser.add_argument(
        "--interval-length",
        type=int,
        default=10_000_000,
        help="lossy interval length L in addresses (default: 10M, the paper's value)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="lossy interval-distance threshold epsilon (default: 0.1)",
    )
    parser.add_argument(
        "--buffer-addresses",
        type=int,
        default=1_000_000,
        help="bytesort buffer size in addresses (default: 1M)",
    )
    parser.add_argument(
        "--backend",
        default="bz2",
        help="byte-level compression backend: bz2, zlib, lzma, store (default: bz2)",
    )
    parser.add_argument(
        "--no-translation",
        action="store_true",
        help="disable byte translation when imitating intervals (Figure 4 ablation)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="compress up to N chunks concurrently (0 = one per CPU; default: 1, serial; "
        "output is byte-identical for any value)",
    )
    parser.add_argument("--input", default=None, help="read raw trace from this file instead of stdin")
    return parser


def bin2atc_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``bin2atc`` console script."""
    args = _build_bin2atc_parser().parse_args(argv)
    try:
        config = LossyConfig(
            interval_length=args.interval_length,
            threshold=args.threshold,
            chunk_buffer_addresses=args.buffer_addresses,
            backend=args.backend,
            enable_translation=not args.no_translation,
            workers=args.jobs,
        )
    except ReproError as error:
        print(f"bin2atc: error: {error}", file=sys.stderr)
        return 1
    mode = MODE_LOSSLESS if args.lossless else MODE_LOSSY
    try:
        stream = open(args.input, "rb") if args.input else sys.stdin.buffer
    except OSError as error:
        print(f"bin2atc: error: cannot open input: {error}", file=sys.stderr)
        return 1
    try:
        # Streaming pipeline: the raw input is read one fixed-size chunk at
        # a time and fed straight to the encoder, so memory stays bounded
        # by the chunk size (plus the encoder's interval buffer) no matter
        # how long the trace is.
        chunks = iter_raw_chunks(stream, _READ_CHUNK_ADDRESSES)
        with AtcEncoder(args.directory, mode=mode, config=config) as encoder:
            try:
                encoder.encode_stream(chunks)
            except TraceFormatError:
                # All complete records were already coded; only the final
                # partial record is dropped, like the paper's fread loop.
                print("warning: dropped a trailing partial record", file=sys.stderr)
            coded = encoder.addresses_coded
        print(f"coded {coded} addresses into {args.directory}", file=sys.stderr)
        return 0
    except ReproError as error:
        print(f"bin2atc: error: {error}", file=sys.stderr)
        return 1
    finally:
        if args.input:
            stream.close()


def _build_atc2bin_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atc2bin",
        description="Decompress an ATC container directory to raw 64-bit values on stdout.",
    )
    parser.add_argument("directory", help="container directory to read")
    parser.add_argument("--output", default=None, help="write to this file instead of stdout")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="prefetch and decompress up to N chunks concurrently (0 = one per CPU; default: 1)",
    )
    return parser


def atc2bin_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``atc2bin`` console script."""
    args = _build_atc2bin_parser().parse_args(argv)
    try:
        decoder = AtcDecoder(args.directory, workers=args.jobs)
    except ReproError as error:
        print(f"atc2bin: error: {error}", file=sys.stderr)
        return 1
    try:
        sink = open(args.output, "wb") if args.output else sys.stdout.buffer
    except OSError as error:
        print(f"atc2bin: error: cannot open output: {error}", file=sys.stderr)
        return 1
    try:
        # Streaming pipeline: decoded intervals are re-chunked to a fixed
        # output chunk size, so writes are bounded-memory regardless of the
        # container's interval length or total trace length.
        for chunk in decoder.iter_chunks(_READ_CHUNK_ADDRESSES):
            sink.write(chunk.astype("<u8", copy=False).tobytes())
        return 0
    finally:
        if args.output:
            sink.close()


def _build_inspect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atc-inspect",
        description="Print the metadata and interval-trace summary of an ATC container.",
    )
    parser.add_argument("directory", help="container directory to inspect")
    return parser


def inspect_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``atc-inspect`` console script."""
    args = _build_inspect_parser().parse_args(argv)
    try:
        decoder = AtcDecoder(args.directory)
    except ReproError as error:
        print(f"atc-inspect: error: {error}", file=sys.stderr)
        return 1
    metadata = decoder.metadata
    records = decoder.records
    imitations = sum(1 for record in records if record.kind == "imitate")
    print(f"container        : {args.directory}")
    for key in sorted(metadata):
        print(f"{key:<17}: {metadata[key]}")
    print(f"intervals        : {len(records)} ({imitations} imitated)")
    print(f"on-disk bytes    : {decoder.compressed_bytes()}")
    print(f"bits per address : {decoder.bits_per_address():.3f}")
    return 0


#: ``repro`` subcommands and the per-tool mains they delegate to.
_SUBCOMMANDS = {
    "compress": bin2atc_main,
    "decompress": atc2bin_main,
    "inspect": inspect_main,
}


def _print_repro_usage(stream) -> None:
    print("usage: repro {compress|decompress|inspect} [options]", file=stream)
    print("", file=stream)
    print("subcommands:", file=stream)
    print("  compress    raw 64-bit value stream -> ATC container (bin2atc)", file=stream)
    print("  decompress  ATC container -> raw 64-bit value stream (atc2bin)", file=stream)
    print("  inspect     print container metadata and sizes (atc-inspect)", file=stream)
    print("", file=stream)
    print("run 'repro <subcommand> --help' for the subcommand's options", file=stream)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the umbrella ``repro`` console script.

    Dispatches ``repro compress`` / ``repro decompress`` / ``repro inspect``
    to the corresponding tool main, so a single installed script exposes the
    whole pipeline (including the ``--jobs`` parallelism knob of the
    compression subcommands).
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        _print_repro_usage(sys.stdout if argv else sys.stderr)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    handler = _SUBCOMMANDS.get(command)
    if handler is None:
        print(f"repro: error: unknown subcommand {command!r}", file=sys.stderr)
        _print_repro_usage(sys.stderr)
        return 2
    return handler(rest)
