"""Normalized machine-readable benchmark reports (``BENCH_*.json``).

One report format, one schema version, one validator — shared by the
``repro bench`` CLI that emits reports, the CI gate that compares them, and
the per-PR trajectory files (``BENCH_PR4.json`` and successors) future
sessions consume.  The schema is deliberately flat and dependency-free (no
``jsonschema``): :func:`validate_report` is a hand-rolled structural check
that raises :class:`~repro.errors.BenchmarkError` with a path-qualified
message on the first violation.

Report layout (schema ``repro-bench-report/1``)::

    {
      "schema": "repro-bench-report/1",
      "package_version": "1.3.0",
      "scale": {"references": 30000, "workload": "429.mcf", ...},
      "executor": "serial",
      "workers": 1,
      "machine": {"python": "3.12.1", "platform": "Linux-...", "cpus": 4},
      "benchmarks": [
        {"name": "filter", "seconds": 0.41, "addresses": 1379,
         "payload_bytes": null, "bits_per_address": null,
         "peak_memory_bytes": 1048576, "addresses_per_second": 3363.4},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Dict, List, Optional

from repro.bench.suite import BenchResult, BenchScale
from repro.errors import BenchmarkError

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "validate_report",
    "render_report_text",
    "load_report",
    "save_report",
]

#: Schema identifier stamped into (and required of) every report.
REPORT_SCHEMA = "repro-bench-report/1"

_BENCH_REQUIRED = {
    "name": str,
    "seconds": (int, float),
    "addresses": int,
    "peak_memory_bytes": int,
    "addresses_per_second": (int, float),
}

_BENCH_OPTIONAL_NUMERIC = ("payload_bytes", "bits_per_address")


def build_report(
    results: List[BenchResult],
    scale: BenchScale,
    executor: str,
    workers: int,
) -> Dict:
    """Assemble the normalized report dict from executed suite results."""
    import repro

    return {
        "schema": REPORT_SCHEMA,
        "package_version": repro.__version__,
        "scale": scale.to_dict(),
        "executor": str(executor),
        "workers": int(workers),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": _cpu_count(),
        },
        "benchmarks": [result.to_dict() for result in results],
    }


def _cpu_count() -> int:
    import os

    return os.cpu_count() or 1


def _fail(path: str, message: str) -> None:
    raise BenchmarkError(f"invalid benchmark report: {path}: {message}")


def validate_report(report) -> Dict:
    """Structurally validate a report dict; returns it when sound.

    Checks the schema tag, the presence and types of every top-level field,
    and every benchmark entry's metrics (wall time non-negative, addresses
    non-negative, optional codec metrics numeric-or-null).  Raises
    :class:`~repro.errors.BenchmarkError` naming the offending path.
    """
    if not isinstance(report, dict):
        _fail("$", f"expected an object, got {type(report).__name__}")
    if report.get("schema") != REPORT_SCHEMA:
        _fail("schema", f"expected {REPORT_SCHEMA!r}, got {report.get('schema')!r}")
    for key, kind in (
        ("package_version", str),
        ("scale", dict),
        ("executor", str),
        ("workers", int),
        ("machine", dict),
        ("benchmarks", list),
    ):
        if key not in report:
            _fail(key, "missing")
        if not isinstance(report[key], kind):
            _fail(key, f"expected {kind.__name__}, got {type(report[key]).__name__}")
    if "references" not in report["scale"]:
        _fail("scale.references", "missing")
    if not report["benchmarks"]:
        _fail("benchmarks", "must contain at least one entry")
    seen = set()
    for index, entry in enumerate(report["benchmarks"]):
        path = f"benchmarks[{index}]"
        if not isinstance(entry, dict):
            _fail(path, f"expected an object, got {type(entry).__name__}")
        for key, kind in _BENCH_REQUIRED.items():
            if key not in entry:
                _fail(f"{path}.{key}", "missing")
            if not isinstance(entry[key], kind) or isinstance(entry[key], bool):
                _fail(f"{path}.{key}", f"expected a number, got {entry[key]!r}")
        for key in _BENCH_OPTIONAL_NUMERIC:
            value = entry.get(key)
            if value is not None and (isinstance(value, bool) or not isinstance(value, (int, float))):
                _fail(f"{path}.{key}", f"expected a number or null, got {value!r}")
        if entry["seconds"] < 0 or entry["addresses"] < 0:
            _fail(path, "seconds and addresses must be non-negative")
        if entry["name"] in seen:
            _fail(f"{path}.name", f"duplicate benchmark name {entry['name']!r}")
        seen.add(entry["name"])
    return report


def render_report_text(report: Dict) -> str:
    """Human-readable table of a validated report (the CLI's default view)."""
    lines = [
        f"repro bench — {report['scale']['references']} references, "
        f"executor={report['executor']}, workers={report['workers']}",
        f"{'benchmark':<18} {'seconds':>9} {'addr/s':>12} {'bits/addr':>10} {'peak MB':>9}",
    ]
    for entry in report["benchmarks"]:
        bpa = entry.get("bits_per_address")
        lines.append(
            f"{entry['name']:<18} {entry['seconds']:>9.3f} "
            f"{entry['addresses_per_second']:>12.0f} "
            f"{(f'{bpa:.3f}' if bpa is not None else '-'):>10} "
            f"{entry['peak_memory_bytes'] / 1e6:>9.1f}"
        )
    return "\n".join(lines)


def load_report(path) -> Dict:
    """Read and validate a report file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as error:
        raise BenchmarkError(f"cannot read benchmark report {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise BenchmarkError(f"benchmark report {path} is not valid JSON: {error}") from None
    return validate_report(report)


def save_report(report: Dict, path: Optional[str] = None) -> None:
    """Validate and write a report as pretty-printed JSON (stdout if no path)."""
    validate_report(report)
    text = json.dumps(report, indent=2, sort_keys=False) + "\n"
    if path is None:
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
