"""The benchmark suite the ``repro bench`` runner executes programmatically.

Where ``benchmarks/`` holds the pytest-benchmark harness that regenerates
the paper's tables and figures, this module is the *operational* suite: a
small, fixed set of end-to-end measurements — trace generation + cache
filtering, lossless/lossy encode, decode — that the continuous-benchmarking
gate in CI runs on every push and compares against the committed
``benchmarks/baseline.json``.  Each case reports wall time, peak traced
memory and (for codec cases) payload bytes and bits per address, so the
gate catches both performance regressions and fidelity drift.

Determinism contract: for a fixed :class:`BenchScale` the synthetic
workload, the filtered trace and every container byte are identical on
every run, platform and executor — wall time and memory are the only
quantities allowed to vary, which is what makes the bytes-per-address
comparison an exact drift detector.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import BenchmarkError

__all__ = [
    "BenchScale",
    "BenchResult",
    "SUITE_BENCHES",
    "SUITE_BENCHES_NAMES",
    "run_suite",
    "run_profile",
    "resolved_executor_name",
]


@dataclass(frozen=True)
class BenchScale:
    """The knobs that define one reproducible benchmark run.

    Attributes:
        references: Data references generated before cache filtering (the
            CI gate uses 30 000, the smallest scale at which every bench
            has real work).
        workload: Spec-like workload the suite measures.
        seed: Workload RNG seed.
        interval_length: Lossy interval length ``L`` (scaled down like the
            ``benchmarks/`` harness).
        buffer_addresses: Bytesort buffer / chunk size in addresses.
        backend: Byte-level compression back-end.
    """

    references: int = 30_000
    workload: str = "429.mcf"
    seed: int = 0
    interval_length: int = 5_000
    buffer_addresses: int = 4_000
    backend: str = "bz2"

    def to_dict(self) -> Dict:
        """Plain-data form stored in the report (and compared by the gate)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchScale":
        """Rebuild a scale from its report form, ignoring unknown keys."""
        known = {key: data[key] for key in cls.__dataclass_fields__ if key in data}
        return cls(**known)


@dataclass(frozen=True)
class BenchResult:
    """One executed benchmark case.

    Attributes:
        name: Case name (stable across runs; the comparison key).
        seconds: Wall-clock time of the measured section.
        addresses: Addresses processed by the case.
        payload_bytes: Compressed size, for codec cases (``None`` otherwise).
        bits_per_address: Compressed bits per input address (``None`` for
            non-codec cases); exact for a fixed scale, so any change is
            format/fidelity drift.
        peak_memory_bytes: Peak traced allocation during the case
            (:mod:`tracemalloc`, parent process).
        addresses_per_second: Throughput (``addresses / seconds``).
    """

    name: str
    seconds: float
    addresses: int
    payload_bytes: Optional[int]
    bits_per_address: Optional[float]
    peak_memory_bytes: int
    addresses_per_second: float

    def to_dict(self) -> Dict:
        """Plain-data form embedded in the report."""
        return asdict(self)


@dataclass
class _SuiteContext:
    """Mutable state threaded through the suite's cases, in order."""

    scale: BenchScale
    executor: Optional[str]
    workers: int
    root: Path
    stream: Optional[object] = None
    trace: Optional[np.ndarray] = None
    containers: Dict[str, Path] = field(default_factory=dict)

    def config(self):
        from repro.core.lossy import LossyConfig

        return LossyConfig(
            interval_length=self.scale.interval_length,
            chunk_buffer_addresses=self.scale.buffer_addresses,
            backend=self.scale.backend,
            workers=self.workers,
            executor=self.executor,
        )

    def require_trace(self) -> np.ndarray:
        if self.trace is None:
            raise BenchmarkError("benchmark ordering bug: the 'filter' case must run first")
        return self.trace

    def require_stream(self):
        if self.stream is None:
            raise BenchmarkError("benchmark ordering bug: the 'filter' case must run first")
        return self.stream


def _bench_filter(ctx: _SuiteContext) -> Tuple[int, Optional[int], Optional[float]]:
    from repro.traces.filter import filter_reference_stream
    from repro.traces.spec_like import generate_reference_stream

    stream = generate_reference_stream(
        ctx.scale.workload, ctx.scale.references, seed=ctx.scale.seed
    )
    ctx.stream = stream
    trace = filter_reference_stream(stream).trace
    ctx.trace = trace.addresses
    return int(trace.addresses.size), None, None


def _bench_filter_assoc(ctx: _SuiteContext) -> Tuple[int, Optional[int], Optional[float]]:
    """Pure-filtering case: the paper's stream through an 8-way L1 pair.

    Unlike ``filter`` (whose wall time includes generating the synthetic
    stream), this measures only the cache simulation, which is what the
    set-parallel kernel accelerates — the gate's guard on the kernel's
    associative fast path.
    """
    from repro.cache.cache import CacheConfig
    from repro.traces.filter import CacheFilter

    config = CacheConfig.from_capacity(
        64 * 1024, associativity=8, policy="lru", name="L1-8way"
    )
    cache_filter = CacheFilter(config, config, workers=ctx.workers, executor=ctx.executor)
    result = cache_filter.filter(ctx.require_stream())
    return int(result.trace.addresses.size), None, None


def _bench_stackdist_curve(ctx: _SuiteContext) -> Tuple[int, Optional[int], Optional[float]]:
    """Miss-ratio-curve case: one stack-distance pass over the trace.

    Simulates the cache-filtered trace through the single-pass Mattson
    simulator (128 sets, associativities 1..32 — one Figure 3 column),
    gating the kernel's stack-distance path.
    """
    from repro.cache.stackdist import simulate_miss_curve

    trace = ctx.require_trace()
    curve = simulate_miss_curve(trace, num_sets=128, max_associativity=32)
    if curve.accesses != int(trace.size):
        raise BenchmarkError("stack-distance pass lost references")
    return int(trace.size), None, None


def _bench_encode(ctx: _SuiteContext, mode: str, label: str):
    from repro.core.atc import compress_trace

    directory = ctx.root / label
    decoder = compress_trace(ctx.require_trace(), directory, mode=mode, config=ctx.config())
    ctx.containers[label] = directory
    return int(ctx.require_trace().size), int(decoder.compressed_bytes()), float(decoder.bits_per_address())


def _bench_encode_lossless(ctx: _SuiteContext):
    return _bench_encode(ctx, "c", "lossless")


def _bench_encode_lossy(ctx: _SuiteContext):
    return _bench_encode(ctx, "k", "lossy")


def _bench_decode(ctx: _SuiteContext, label: str):
    from repro.core.atc import AtcDecoder

    directory = ctx.containers.get(label)
    if directory is None:
        raise BenchmarkError(f"benchmark ordering bug: encode_{label} must run before decode_{label}")
    decoder = AtcDecoder(directory, workers=ctx.workers, executor=ctx.executor)
    decoded = decoder.read_all()
    return int(decoded.size), int(decoder.compressed_bytes()), float(decoder.bits_per_address())


def _bench_decode_lossless(ctx: _SuiteContext):
    return _bench_decode(ctx, "lossless")


def _bench_decode_lossy(ctx: _SuiteContext):
    return _bench_decode(ctx, "lossy")


def _bench_export_k6(ctx: _SuiteContext):
    """Adapter case: export the lossless container as a k6 text trace.

    Gates the ``atc -> k6`` path of :mod:`repro.traces.formats` — decoder
    re-chunking, sidecar synthesis (the container has none) and the text
    writer — end to end, file to file.
    """
    from repro.traces.formats.convert import export_from_atc

    directory = ctx.containers.get("lossless")
    if directory is None:
        raise BenchmarkError("benchmark ordering bug: encode_lossless must run before export_k6")
    destination = ctx.root / "k6_export.trc.gz"
    summary = export_from_atc(directory, destination, format="k6")
    ctx.containers["k6_export"] = destination
    return int(summary["records"]), None, None


def _bench_convert_k6(ctx: _SuiteContext):
    """Adapter case: convert the exported k6 trace back into an ATC container.

    Gates the ``k6 -> atc`` path — gz-transparent text parsing, the
    command/cycle sidecar writer and the streaming encoder — the
    convert-throughput number the CI trajectory tracks.  Payload bytes
    include the sidecar, so sidecar-format drift shows up as a
    bits-per-address change.
    """
    from repro.core.atc import AtcDecoder
    from repro.traces.formats.convert import convert_to_atc

    source = ctx.containers.get("k6_export")
    if source is None:
        raise BenchmarkError("benchmark ordering bug: export_k6 must run before convert_k6")
    directory = ctx.root / "k6_roundtrip"
    summary = convert_to_atc(source, directory, format="k6", config=ctx.config())
    decoder = AtcDecoder(directory)
    return int(summary["addresses"]), int(decoder.compressed_bytes()), float(decoder.bits_per_address())


def _bench_sweep_sched(ctx: _SuiteContext):
    """Distributed-sweep scheduler case: lease/steal/merge over a small grid.

    Drives one distributed worker (lease claim + evaluate + release per
    cell) through a six-cell codec grid on the suite's filtered trace, then
    a second, fully-cached stealing pass and a merge — the pure scheduling
    half of :mod:`repro.experiments.distributed`.  Reported payload bytes
    sum over the grid, so scheduler bugs that change *what* is computed
    (or codec drift) move ``bits_per_address`` exactly, while lease/merge
    overhead lands in the gated wall time.
    """
    from repro.experiments import (
        DistributedSweepRunner,
        ResultStore,
        merge_sweep,
        sweep_spec_from_dict,
    )

    trace = ctx.require_trace()
    spec = sweep_spec_from_dict(
        {
            "name": "bench-sweep-sched",
            "workloads": [
                {
                    "name": ctx.scale.workload,
                    "references": ctx.scale.references,
                    "seed": ctx.scale.seed,
                }
            ],
            "codecs": [
                {"kind": "raw"},
                {"kind": "delta"},
                {"kind": "unshuffle"},
                {"kind": "raw", "backend": "zlib"},
                {"kind": "delta", "backend": "zlib"},
                {"kind": "unshuffle", "backend": "zlib"},
            ],
            "scale": {
                "small_buffer": ctx.scale.buffer_addresses,
                "interval_length": ctx.scale.interval_length,
            },
        }
    )
    cache_dir = ctx.root / "sweep-sched"
    # The suite's trace is the same (workload, seed, paper-default filter)
    # the spec would generate; sharing it keeps the case about scheduling
    # and codec work, not trace generation (already gated by 'filter').
    provider = lambda workload, filter_spec: trace  # noqa: E731
    first = DistributedSweepRunner(
        spec, cache_dir, shard="1/1", trace_provider=provider
    ).run_worker()
    if first.remaining:
        raise BenchmarkError("sweep_sched: worker left units unfinished")
    cached_pass = DistributedSweepRunner(
        spec, cache_dir, steal=True, trace_provider=provider
    ).run_worker()
    if cached_pass.evaluated:
        raise BenchmarkError("sweep_sched: fully-cached pass recomputed a unit")
    merged = merge_sweep(spec, ResultStore(cache_dir))
    if not merged.is_complete:
        raise BenchmarkError(f"sweep_sched: merge missing {len(merged.missing)} units")
    addresses = sum(row.addresses for row in merged.result.rows)
    payload_bytes = sum(row.payload_bytes for row in merged.result.rows)
    bits = (8.0 * payload_bytes / addresses) if addresses else 0.0
    return int(addresses), int(payload_bytes), float(bits)


def _bench_serve_roundtrip(ctx: _SuiteContext):
    """Service case: compress + cached re-compress + decompress over HTTP.

    Boots a :class:`~repro.service.BackgroundServer` on an ephemeral port,
    POSTs the suite's filtered trace to ``/v1/compress`` twice (the second
    must be a dedup-cache hit, verified through ``/v1/metrics``), round
    trips the served container through ``/v1/decompress`` and requires the
    decoded bytes to equal the input exactly.  The reported payload is the
    packed-container size, so the case gates HTTP/service overhead on wall
    time while its ``bits_per_address`` pins the wire format — tar framing
    drift is a fidelity failure, not just a slowdown.
    """
    import http.client
    import json as _json

    from repro.service import BackgroundServer, ServiceConfig

    trace = ctx.require_trace()
    raw = trace.tobytes()
    config = ServiceConfig(
        port=0,
        max_connections=4,
        workers=ctx.workers,
        executor=ctx.executor,
        request_timeout=600.0,
        cache_dir=None,  # fresh private cache: every repetition sees miss -> hit
    )

    def request(server, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    query = (
        f"/v1/compress?mode=c&backend={ctx.scale.backend}"
        f"&chunk_buffer_addresses={ctx.scale.buffer_addresses}"
    )
    with BackgroundServer(config) as server:
        status, headers, container = request(server, "POST", query, raw)
        if status != 200 or headers.get("X-Atc-Cache") != "miss":
            raise BenchmarkError(f"serve_roundtrip: first compress got {status} "
                                 f"(cache={headers.get('X-Atc-Cache')!r})")
        status, headers, cached = request(server, "POST", query, raw)
        if status != 200 or headers.get("X-Atc-Cache") != "hit" or cached != container:
            raise BenchmarkError("serve_roundtrip: repeated request missed the dedup cache")
        status, _, decoded = request(server, "POST", "/v1/decompress", container)
        if status != 200 or decoded != raw:
            raise BenchmarkError("serve_roundtrip: decompressed bytes differ from the input trace")
        _, _, metrics_body = request(server, "GET", "/v1/metrics")
        hit_rate = _json.loads(metrics_body)["cache"]["hit_rate"]
        if not hit_rate > 0:
            raise BenchmarkError("serve_roundtrip: metrics cache hit rate is 0 "
                                 "on the repeated-request phase")
    if server.exit_code != 0:
        raise BenchmarkError(f"serve_roundtrip: server drain exited {server.exit_code}")
    return int(trace.size), int(len(container)), float(8.0 * len(container) / trace.size)


#: The suite, in execution order (later cases consume earlier artefacts).
SUITE_BENCHES: Tuple[Tuple[str, Callable[[_SuiteContext], Tuple[int, Optional[int], Optional[float]]]], ...] = (
    ("filter", _bench_filter),
    ("filter_assoc", _bench_filter_assoc),
    ("stackdist_curve", _bench_stackdist_curve),
    ("encode_lossless", _bench_encode_lossless),
    ("encode_lossy", _bench_encode_lossy),
    ("decode_lossless", _bench_decode_lossless),
    ("decode_lossy", _bench_decode_lossy),
    ("export_k6", _bench_export_k6),
    ("convert_k6", _bench_convert_k6),
    ("sweep_sched", _bench_sweep_sched),
    ("serve_roundtrip", _bench_serve_roundtrip),
)

#: Stable case names, in execution order.
SUITE_BENCHES_NAMES: Tuple[str, ...] = tuple(name for name, _ in SUITE_BENCHES)


def resolved_executor_name(executor, workers: int) -> str:
    """The concrete strategy a spec resolves to at a given worker count.

    Reports must record what actually ran, so this delegates to
    :func:`repro.core.executors.resolved_kind` — the single home of the
    ``auto`` rule — instead of re-implementing it.
    """
    from repro.core.executors import resolved_kind

    return resolved_kind(executor, workers)


def run_suite(
    scale: BenchScale = BenchScale(),
    executor: Optional[str] = None,
    workers: int = 1,
    names=None,
    work_dir=None,
    repetitions: int = 3,
) -> List[BenchResult]:
    """Execute the suite and return one :class:`BenchResult` per case.

    Args:
        scale: The run's reproducible scale knobs.
        executor: Execution strategy for the parallel cases (name or live
            executor; ``None`` = ``REPRO_EXECUTOR``/auto).
        workers: Pool size for the parallel cases.
        names: Optional subset of case names to run; dependencies must be
            included (``decode_*`` needs its ``encode_*``, everything needs
            ``filter``), which is validated by the ordering checks.
        work_dir: Directory for the run's containers; a temporary directory
            (removed afterwards) when omitted.
        repetitions: Timing passes per run; the reported wall time is the
            per-case minimum, which is far more stable against scheduler
            jitter than a single shot (the regression gate compares
            ratios, so stability matters more than averages).

    Example:
        >>> results = run_suite(BenchScale(references=2000))
        >>> [result.name for result in results][:2]
        ['filter', 'filter_assoc']
        >>> all(result.seconds > 0 for result in results)
        True
    """
    import tempfile

    from repro.core.executors import resolve_workers

    selected = set(SUITE_BENCHES_NAMES if names is None else names)
    unknown = selected - set(SUITE_BENCHES_NAMES)
    if unknown:
        raise BenchmarkError(f"unknown benchmark case(s): {sorted(unknown)}")
    cleanup = None
    if work_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-")
        work_dir = cleanup.name
    try:
        count = resolve_workers(workers)
        if repetitions < 1:
            raise BenchmarkError(f"repetitions must be >= 1, got {repetitions}")
        # Timing passes run untraced (the gated seconds and the published
        # throughput must not include tracemalloc's per-allocation
        # overhead, which is substantial for the allocation-heavy
        # pure-Python cases) and repeatedly, keeping the per-case minimum;
        # the *memory* pass then re-runs once under tracemalloc in a fresh
        # directory.
        timed = _execute_cases(scale, executor, count, selected, Path(work_dir) / "t0", False)
        for rep in range(1, repetitions):
            again = _execute_cases(
                scale, executor, count, selected, Path(work_dir) / f"t{rep}", False
            )
            for name, measurement in again.items():
                if measurement[0] < timed[name][0]:
                    timed[name] = measurement
        traced = _execute_cases(scale, executor, count, selected, Path(work_dir) / "m", True)
        results: List[BenchResult] = []
        for name, _ in SUITE_BENCHES:
            if name not in selected:
                continue
            seconds, addresses, payload_bytes, bits_per_address, _ = timed[name]
            peak = traced[name][4]
            results.append(
                BenchResult(
                    name=name,
                    seconds=float(seconds),
                    addresses=int(addresses),
                    payload_bytes=payload_bytes,
                    bits_per_address=bits_per_address,
                    peak_memory_bytes=int(peak),
                    addresses_per_second=float(addresses / seconds) if seconds > 0 else 0.0,
                )
            )
        return results
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def run_profile(
    scale: BenchScale = BenchScale(),
    executor: Optional[str] = None,
    workers: int = 1,
    names=None,
    work_dir=None,
    top: int = 15,
) -> Dict[str, str]:
    """Profile every selected case and return one hot-path table per case.

    Runs the suite once with each case under :mod:`cProfile` and formats
    the ``top`` functions by cumulative time, so a perf PR can locate a
    stage's hot paths straight from ``repro bench --profile`` instead of
    ad-hoc scripts.  Profiled wall times are *not* comparable to
    :func:`run_suite` numbers (profiling adds per-call overhead); use them
    for *where*, not *how fast*.

    Example:
        >>> tables = run_profile(BenchScale(references=2000), names=["filter"])
        >>> sorted(tables)
        ['filter']
        >>> "cumulative" in tables["filter"]
        True
    """
    import cProfile
    import io
    import pstats
    import tempfile

    from repro.core.executors import resolve_workers

    selected = set(SUITE_BENCHES_NAMES if names is None else names)
    unknown = selected - set(SUITE_BENCHES_NAMES)
    if unknown:
        raise BenchmarkError(f"unknown benchmark case(s): {sorted(unknown)}")
    if top < 1:
        raise BenchmarkError(f"profile table length must be >= 1, got {top}")
    cleanup = None
    if work_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-profile-")
        work_dir = cleanup.name
    try:
        ctx = _SuiteContext(
            scale=scale,
            executor=executor,
            workers=resolve_workers(workers),
            root=Path(work_dir) / "profile",
        )
        tables: Dict[str, str] = {}
        for name, case in SUITE_BENCHES:
            if name not in selected:
                continue
            profiler = cProfile.Profile()
            profiler.enable()
            case(ctx)
            profiler.disable()
            sink = io.StringIO()
            stats = pstats.Stats(profiler, stream=sink)
            stats.sort_stats("cumulative").print_stats(top)
            tables[name] = sink.getvalue()
        return tables
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _execute_cases(
    scale: BenchScale,
    executor: Optional[str],
    workers: int,
    selected,
    root: Path,
    trace_memory: bool,
) -> Dict[str, Tuple[float, int, Optional[int], Optional[float], int]]:
    """One pass over the selected cases; returns per-case measurements.

    With ``trace_memory`` the pass runs under :mod:`tracemalloc` and the
    peak is meaningful (wall time is not, and vice versa) — see
    :func:`run_suite` for why the two are measured in separate passes.
    """
    ctx = _SuiteContext(scale=scale, executor=executor, workers=workers, root=root)
    measurements: Dict[str, Tuple[float, int, Optional[int], Optional[float], int]] = {}
    for name, case in SUITE_BENCHES:
        if name not in selected:
            continue
        tracing_already = tracemalloc.is_tracing()
        if trace_memory:
            if tracing_already:
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
        started = time.perf_counter()
        addresses, payload_bytes, bits_per_address = case(ctx)
        seconds = time.perf_counter() - started
        peak = 0
        if trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            if not tracing_already:
                tracemalloc.stop()
        measurements[name] = (seconds, int(addresses), payload_bytes, bits_per_address, int(peak))
    return measurements
