"""Continuous benchmarking: programmatic suite runs, reports and the gate.

The paper's headline claims are throughput claims, so this package makes
speed a *guarded* quantity instead of a measured-and-forgotten one:

* :mod:`repro.bench.suite` — the operational benchmark suite (trace
  generation + cache filtering, lossless/lossy encode, decode), executed
  programmatically at a reproducible :class:`~repro.bench.suite.BenchScale`
  with a selectable executor;
* :mod:`repro.bench.report` — the normalized machine-readable report
  format (``BENCH_*.json``), with a dependency-free schema validator;
* :mod:`repro.bench.compare` — the regression gate's decision logic:
  wall-time tolerance band, exact bits-per-address drift detection, and
  coverage checks against the committed ``benchmarks/baseline.json``.

The ``repro bench`` CLI subcommand glues the three together; CI runs it on
every push and fails the build on a regression (see ``docs/performance.md``
for the selection guide and the baseline-refresh procedure).

Example:
    >>> from repro.bench import BenchScale, run_suite, build_report, validate_report
    >>> results = run_suite(BenchScale(references=2000))
    >>> report = validate_report(build_report(results, BenchScale(references=2000), "serial", 1))
    >>> report["schema"]
    'repro-bench-report/1'
"""

from repro.bench.compare import BenchCheck, BenchComparison, compare_reports
from repro.bench.report import (
    REPORT_SCHEMA,
    build_report,
    load_report,
    render_report_text,
    save_report,
    validate_report,
)
from repro.bench.suite import (
    SUITE_BENCHES,
    SUITE_BENCHES_NAMES,
    BenchResult,
    BenchScale,
    resolved_executor_name,
    run_profile,
    run_suite,
)

__all__ = [
    "BenchScale",
    "BenchResult",
    "SUITE_BENCHES",
    "SUITE_BENCHES_NAMES",
    "run_suite",
    "run_profile",
    "resolved_executor_name",
    "REPORT_SCHEMA",
    "build_report",
    "validate_report",
    "render_report_text",
    "load_report",
    "save_report",
    "BenchCheck",
    "BenchComparison",
    "compare_reports",
]
