"""Benchmark-report comparison: the CI regression gate's decision logic.

:func:`compare_reports` takes the report a fresh run just produced and the
committed ``benchmarks/baseline.json``, and renders a verdict per benchmark
and metric:

* **wall time** — fails when the current run is more than ``max_slowdown``
  times the baseline (default 1.25, the gate's ">25% regression" band).
  Baselines below the *noise floor* are floored before the band applies:
  sub-floor timings are scheduler noise, and a raw ratio over noise only
  produces flaky gates — but a case that jumps well past the floored band
  still fails.  The floor is **scale-aware**: the larger of a small
  absolute floor (``min_seconds``, default 5 ms) and a fixed fraction of
  the *baseline suite's total wall time* (``noise_fraction``, default
  4%).  A flat floor sized for one era of the suite goes blind as cases
  get faster — when the fastest case beats the floor, its regressions
  are invisible — whereas a fraction of the suite total shrinks with
  every speed-up and keeps the fast cases gated.  The *suite total*
  (summed over the cases both reports share) is gated by the same band
  as a second aggregate guard.
* **bits per address** — fails on *any* drift beyond float round-off
  (default tolerance ``1e-9`` relative).  The synthetic workloads are
  seeded and the containers byte-identical across executors, so for a
  fixed scale this metric is exact; a change means the on-disk format or a
  codec decision changed, which must never ride in under a perf PR.
* **coverage** — a benchmark present in the baseline but missing from the
  current run fails (a silently skipped case is not a passing case); new
  benchmarks in the current run pass with a note (the baseline needs a
  refresh, not a red build).

Regressions are *results*, not exceptions: the comparison object carries
every check so callers (CLI, CI logs, tests) can render the full table
before deciding the exit code.  Only structurally broken input — invalid
reports, mismatched scales — raises :class:`~repro.errors.BenchmarkError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.report import validate_report
from repro.errors import BenchmarkError

__all__ = ["BenchCheck", "BenchComparison", "compare_reports"]

#: Default tolerance band: fail beyond a 25% wall-time regression.
DEFAULT_MAX_SLOWDOWN = 1.25

#: Absolute noise-floor component: baselines below the effective floor are
#: floored before the band applies (see ``DEFAULT_NOISE_FRACTION``).
DEFAULT_MIN_SECONDS = 0.005

#: Scale-aware noise-floor component: fraction of the baseline suite's
#: total wall time.  The effective floor is
#: ``max(min_seconds, noise_fraction * baseline_total)``.
DEFAULT_NOISE_FRACTION = 0.04

#: Relative tolerance for the bits-per-address drift check (round-off only).
DEFAULT_BPA_TOLERANCE = 1e-9


@dataclass(frozen=True)
class BenchCheck:
    """One (benchmark, metric) verdict.

    Attributes:
        bench: Benchmark case name.
        metric: ``"seconds"``, ``"bits_per_address"`` or ``"coverage"``.
        ok: Whether the check passed.
        message: Human-readable verdict line.
        current: The current run's value (``None`` when missing).
        baseline: The baseline's value (``None`` when missing).
    """

    bench: str
    metric: str
    ok: bool
    message: str
    current: Optional[float] = None
    baseline: Optional[float] = None


@dataclass(frozen=True)
class BenchComparison:
    """Every check of one report-vs-baseline comparison.

    Example:
        >>> good = BenchComparison(checks=(BenchCheck("filter", "seconds", True, "ok"),))
        >>> good.ok, len(good.failures)
        (True, 0)
    """

    checks: Tuple[BenchCheck, ...]

    @property
    def ok(self) -> bool:
        """True when every check passed (the gate's exit criterion)."""
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> Tuple[BenchCheck, ...]:
        """The failed checks, in report order."""
        return tuple(check for check in self.checks if not check.ok)

    def render(self) -> str:
        """Multi-line verdict table (one line per check, failures marked)."""
        lines = []
        for check in self.checks:
            marker = "ok  " if check.ok else "FAIL"
            lines.append(f"[{marker}] {check.bench}/{check.metric}: {check.message}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.failures)} regression(s))"
        lines.append(f"benchmark gate: {verdict}")
        return "\n".join(lines)


def _indexed(report: Dict) -> Dict[str, Dict]:
    return {entry["name"]: entry for entry in report["benchmarks"]}


def compare_reports(
    current: Dict,
    baseline: Dict,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    bpa_tolerance: float = DEFAULT_BPA_TOLERANCE,
    noise_fraction: float = DEFAULT_NOISE_FRACTION,
) -> BenchComparison:
    """Compare a fresh report against the committed baseline.

    Both reports are schema-validated first, and must have been run at the
    same scale (same ``references`` / workload / codec knobs) — comparing
    different scales is meaningless and raises
    :class:`~repro.errors.BenchmarkError` rather than producing a
    vacuous verdict.

    Args:
        current: The fresh run's report dict.
        baseline: The committed baseline report dict.
        max_slowdown: Wall-time tolerance band (1.25 = fail beyond +25%).
        min_seconds: Absolute component of the noise floor.
        bpa_tolerance: Relative bits-per-address tolerance (round-off only).
        noise_fraction: Scale-aware component of the noise floor, as a
            fraction of the baseline suite's total wall time over the
            shared cases; the effective floor is
            ``max(min_seconds, noise_fraction * baseline_total)``.

    Returns:
        A :class:`BenchComparison`; inspect ``.ok`` for the gate verdict.
    """
    validate_report(current)
    validate_report(baseline)
    if max_slowdown < 1.0:
        raise BenchmarkError(f"max_slowdown must be >= 1.0, got {max_slowdown}")
    if not 0.0 <= noise_fraction < 1.0:
        raise BenchmarkError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
    if current["scale"] != baseline["scale"]:
        raise BenchmarkError(
            "benchmark reports were run at different scales and cannot be compared: "
            f"current {current['scale']!r} vs baseline {baseline['scale']!r}"
        )
    current_by_name = _indexed(current)
    baseline_by_name = _indexed(baseline)
    shared = [name for name in baseline_by_name if name in current_by_name]
    baseline_total = sum(float(baseline_by_name[n]["seconds"]) for n in shared)
    floor = max(min_seconds, noise_fraction * baseline_total)
    checks: List[BenchCheck] = []
    for name, base in baseline_by_name.items():
        entry = current_by_name.get(name)
        if entry is None:
            checks.append(
                BenchCheck(name, "coverage", False, "present in baseline but missing from this run")
            )
            continue
        checks.append(_check_seconds(name, entry, base, max_slowdown, floor))
        bpa_check = _check_bits_per_address(name, entry, base, bpa_tolerance)
        if bpa_check is not None:
            checks.append(bpa_check)
    if shared:
        # Aggregate band: per-case noise floors must not let a gross
        # regression in a fast case ride in — summed over the shared cases
        # the same tolerance applies unconditionally.
        total_entry = {"seconds": sum(float(current_by_name[n]["seconds"]) for n in shared)}
        total_base = {"seconds": baseline_total}
        checks.append(
            _check_seconds("suite-total", total_entry, total_base, max_slowdown, floor)
        )
    for name in current_by_name:
        if name not in baseline_by_name:
            checks.append(
                BenchCheck(name, "coverage", True, "new benchmark (refresh the baseline to gate it)")
            )
    return BenchComparison(checks=tuple(checks))


def _check_seconds(
    name: str, entry: Dict, base: Dict, max_slowdown: float, floor: float
) -> BenchCheck:
    current_s, base_s = float(entry["seconds"]), float(base["seconds"])
    # Sub-floor baselines are scheduler noise: flooring (instead of
    # skipping) keeps jitter green while a gross regression that climbs
    # past floor * max_slowdown still fails.  The caller computes the
    # scale-aware floor once per comparison from the baseline suite total.
    effective = max(base_s, floor)
    ok = current_s <= effective * max_slowdown
    floored = " (baseline floored at the noise level)" if base_s < floor else ""
    ratio = current_s / effective if effective > 0 else float("inf")
    comparison = (
        f"{current_s:.3f}s vs baseline {base_s:.3f}s "
        f"({ratio:.2f}x, tolerance {max_slowdown:.2f}x{floored})"
    )
    return BenchCheck(name, "seconds", ok, comparison, current=current_s, baseline=base_s)


def _check_bits_per_address(
    name: str, entry: Dict, base: Dict, tolerance: float
) -> Optional[BenchCheck]:
    current_bpa, base_bpa = entry.get("bits_per_address"), base.get("bits_per_address")
    if base_bpa is None and current_bpa is None:
        return None
    if (base_bpa is None) != (current_bpa is None):
        return BenchCheck(
            name,
            "bits_per_address",
            False,
            f"metric presence changed ({base_bpa!r} -> {current_bpa!r})",
            current=current_bpa,
            baseline=base_bpa,
        )
    drift = abs(float(current_bpa) - float(base_bpa))
    limit = tolerance * max(1.0, abs(float(base_bpa)))
    ok = drift <= limit
    message = (
        f"{current_bpa:.6f} vs baseline {base_bpa:.6f}"
        + ("" if ok else f" — fidelity drift {drift:.3e} exceeds {limit:.3e}")
    )
    return BenchCheck(name, "bits_per_address", ok, message, current=current_bpa, baseline=base_bpa)
