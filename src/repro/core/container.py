"""On-disk ATC container: a directory of compressed chunks plus INFO.

The paper's compressor stores a trace as a directory (Figure 8)::

    foobar/1.bz2        first chunk, bytesorted then bzip2-compressed
    foobar/2.bz2        second chunk (if any)
    ...
    foobar/INFO.bz2     metadata + the interval trace (byte translations)

This module reproduces that layout.  ``INFO`` holds a small JSON header
(mode, configuration, original trace length) followed by the binary
*interval trace*: one record per interval saying either "this interval is
chunk ``k``" or "imitate chunk ``k`` with these byte translations".  Both
parts are compressed together with the same back-end as the chunks.

Binary interval-record layout (little endian)::

    kind      u8      0 = chunk, 1 = imitate
    chunk_id  u32
    length    u32     number of addresses in the interval
    [imitate only]
    active    u8      bit j set = byte order j is translated
    t[0..7]   8*256 bytes   byte translation tables (always all 8 rows,
                            "translations are completely described with
                            8 x 256 bytes" — paper, Section 5.2)
"""

from __future__ import annotations

import json
import re
import struct
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backend import CompressionBackend, get_backend
from repro.core.integrity import FOOTER_BYTES, footer_digest, verify_chunk_payload
from repro.core.intervals import IntervalRecord
from repro.errors import CodecError, ContainerError, IntegrityError

__all__ = [
    "FORMAT_VERSION",
    "AtcContainer",
    "serialize_interval_trace",
    "deserialize_interval_trace",
]

_RECORD_FIXED = struct.Struct("<BII")
_TRANSLATION_BYTES = 8 * 256
_INFO_MAGIC_V1 = b"ATCINFO1"
_INFO_MAGIC_V2 = b"ATCINFO2"
_INFO_MAGIC = _INFO_MAGIC_V1  # historical name, kept for external readers

#: Container format version written by default (v2 = per-chunk digests +
#: INFO footer digest; v1 = the original unchecked layout, still readable
#: and writable via ``AtcEncoder(format_version=1)``).
FORMAT_VERSION = 2


def serialize_interval_trace(records: List[IntervalRecord]) -> bytes:
    """Serialise interval records to the binary layout described above."""
    out = bytearray()
    for record in records:
        kind_code = 0 if record.kind == "chunk" else 1
        out.extend(_RECORD_FIXED.pack(kind_code, record.chunk_id, record.length))
        if kind_code == 1:
            active = 0
            active_bytes = np.asarray(record.active_bytes, dtype=bool)
            for j in range(8):
                if active_bytes[j]:
                    active |= 1 << j
            out.append(active)
            translations = np.asarray(record.translations, dtype=np.uint8)
            if translations.shape != (8, 256):
                raise ContainerError("translations must be an (8, 256) byte table")
            out.extend(translations.tobytes())
    return bytes(out)


def deserialize_interval_trace(payload: bytes) -> List[IntervalRecord]:
    """Invert :func:`serialize_interval_trace`."""
    records: List[IntervalRecord] = []
    offset = 0
    total = len(payload)
    while offset < total:
        if offset + _RECORD_FIXED.size > total:
            raise ContainerError("interval trace is truncated (incomplete record header)")
        kind_code, chunk_id, length = _RECORD_FIXED.unpack_from(payload, offset)
        offset += _RECORD_FIXED.size
        if kind_code == 0:
            records.append(IntervalRecord(kind="chunk", chunk_id=chunk_id, length=length))
            continue
        if kind_code != 1:
            raise ContainerError(f"invalid interval record kind byte {kind_code}")
        if offset + 1 + _TRANSLATION_BYTES > total:
            raise ContainerError("interval trace is truncated (incomplete imitation record)")
        active_bits = payload[offset]
        offset += 1
        active = np.array([(active_bits >> j) & 1 == 1 for j in range(8)], dtype=bool)
        translations = (
            np.frombuffer(payload[offset : offset + _TRANSLATION_BYTES], dtype=np.uint8)
            .reshape(8, 256)
            .copy()
        )
        offset += _TRANSLATION_BYTES
        records.append(
            IntervalRecord(
                kind="imitate",
                chunk_id=chunk_id,
                length=length,
                active_bytes=active,
                translations=translations,
            )
        )
    return records


class AtcContainer:
    """Reader/writer for the on-disk chunk-directory format.

    Args:
        path: Directory that holds (or will hold) the compressed trace.
        backend: Byte-level back-end used for the INFO stream; chunk payloads
            are written verbatim (they are already compressed by the chunk
            codec), the back-end name only determines the file suffix.
        suffix: File suffix for chunk files (defaults to the back-end name,
            like the paper's ``1.bz2``).
        create: Create the directory (must not already contain a container).
    """

    INFO_BASENAME = "INFO"

    def __init__(self, path, backend="bz2", suffix: Optional[str] = None, create: bool = False) -> None:
        self.path = Path(path)
        self.backend: CompressionBackend = get_backend(backend)
        self.suffix = suffix if suffix is not None else self.backend.name
        if create:
            self.path.mkdir(parents=True, exist_ok=True)
            if self._info_path().exists():
                raise ContainerError(f"{self.path} already contains an ATC container")
        elif not self.path.is_dir():
            raise ContainerError(
                f"{self.path} is not an ATC container (not a directory of chunks)"
            )

    @classmethod
    def detect_suffix(cls, path) -> Optional[str]:
        """Return the chunk-file suffix of an existing container, if any.

        Looks for the ``INFO.<suffix>`` stream; returns ``None`` when the
        directory does not contain one (not a container, or not written yet).
        """
        directory = Path(path)
        if not directory.is_dir():
            return None
        for entry in directory.iterdir():
            if entry.is_file() and entry.name.startswith(f"{cls.INFO_BASENAME}."):
                return entry.name[len(cls.INFO_BASENAME) + 1 :]
        return None

    # -- paths --------------------------------------------------------------------------
    def _info_path(self) -> Path:
        return self.path / f"{self.INFO_BASENAME}.{self.suffix}"

    def _chunk_path(self, chunk_id: int) -> Path:
        # Chunk files are 1-indexed on disk, like the paper's foobar/1.bz2.
        return self.path / f"{chunk_id + 1}.{self.suffix}"

    # -- chunks --------------------------------------------------------------------------
    def write_chunk(self, chunk_id: int, payload: bytes) -> Path:
        """Write one chunk payload; returns the file path."""
        if chunk_id < 0:
            raise ContainerError("chunk ids must be non-negative")
        target = self._chunk_path(chunk_id)
        target.write_bytes(payload)
        return target

    def read_chunk(self, chunk_id: int, expected_digest: Optional[str] = None) -> bytes:
        """Read one chunk payload, verifying its recorded digest if given.

        With ``expected_digest`` (from a format-v2 ``chunk_digests`` table)
        the raw file bytes are checked before they reach any decompressor,
        so corruption raises :class:`~repro.errors.IntegrityError` instead
        of surfacing as a codec failure — or worse, decoding silently.
        """
        target = self._chunk_path(chunk_id)
        if not target.exists():
            raise ContainerError(f"missing chunk file {target}")
        try:
            payload = target.read_bytes()
        except OSError as exc:
            raise IntegrityError(
                f"{target}: I/O error reading chunk {chunk_id + 1}: {exc}",
                path=target,
                chunk_id=chunk_id,
            ) from exc
        return verify_chunk_payload(payload, expected_digest, path=target, chunk_id=chunk_id)

    def chunk_ids(self) -> List[int]:
        """Chunk ids present on disk, sorted."""
        pattern = re.compile(rf"^(\d+)\.{re.escape(self.suffix)}$")
        ids = []
        for entry in self.path.iterdir():
            match = pattern.match(entry.name)
            if match:
                ids.append(int(match.group(1)) - 1)
        return sorted(ids)

    # -- INFO ----------------------------------------------------------------------------
    def write_info(self, metadata: Dict, records: List[IntervalRecord]) -> Path:
        """Write the INFO stream (JSON metadata + binary interval trace).

        The format version comes from ``metadata["format_version"]`` (v1
        when absent): v1 bodies start with ``ATCINFO1`` and end after the
        interval trace; v2 bodies start with ``ATCINFO2`` and append the
        32-byte SHA-256 of every preceding body byte as a footer, all
        inside the compressed stream.
        """
        version = int(metadata.get("format_version", 1))
        if version not in (1, 2):
            raise ContainerError(f"unsupported container format version {version}")
        header = json.dumps(metadata, sort_keys=True).encode("utf-8")
        interval_payload = serialize_interval_trace(records)
        body = (
            (_INFO_MAGIC_V2 if version == 2 else _INFO_MAGIC_V1)
            + struct.pack("<I", len(header))
            + header
            + struct.pack("<I", len(interval_payload))
            + interval_payload
        )
        if version == 2:
            body += footer_digest(body)
        target = self._info_path()
        target.write_bytes(self.backend.compress(body))
        return target

    def read_info(self) -> Tuple[Dict, List[IntervalRecord]]:
        """Read the INFO stream; returns ``(metadata, interval_records)``.

        Reads both format versions.  For v2 the footer digest is verified
        before anything is parsed, so a corrupted INFO raises
        :class:`~repro.errors.IntegrityError`; a stream that is not an ATC
        INFO at all (bad magic, truncated header) raises a plain
        :class:`~repro.errors.ContainerError` naming the file.
        """
        target = self._info_path()
        if not target.exists():
            raise ContainerError(f"{self.path} has no {target.name}; not an ATC container?")
        try:
            raw = target.read_bytes()
        except OSError as exc:
            raise IntegrityError(f"{target}: I/O error reading INFO: {exc}", path=target) from exc
        try:
            body = self.backend.decompress(raw)
        except CodecError as exc:
            raise IntegrityError(
                f"{target}: INFO stream fails to decompress "
                f"(corrupt, or not an ATC container): {exc}",
                path=target,
            ) from exc
        if body.startswith(_INFO_MAGIC_V2):
            if len(body) < len(_INFO_MAGIC_V2) + FOOTER_BYTES:
                raise IntegrityError(
                    f"{target}: INFO stream is truncated (no footer digest)",
                    path=target,
                    offset=len(body),
                )
            payload, footer = body[:-FOOTER_BYTES], body[-FOOTER_BYTES:]
            if footer_digest(payload) != footer:
                raise IntegrityError(
                    f"{target}: INFO footer digest mismatch (metadata is corrupt)",
                    path=target,
                )
            return self._parse_info_body(payload, len(_INFO_MAGIC_V2), target)
        if body.startswith(_INFO_MAGIC_V1):
            return self._parse_info_body(body, len(_INFO_MAGIC_V1), target)
        raise ContainerError(f"{target}: INFO stream has an unknown magic; not an ATC container")

    def _parse_info_body(self, body: bytes, offset: int, target: Path) -> Tuple[Dict, List[IntervalRecord]]:
        """Parse the header + interval trace of a decompressed INFO body.

        Every length field is bounds-checked so a truncated body raises
        :class:`~repro.errors.ContainerError` naming the file, never a raw
        ``struct.error`` or ``json.JSONDecodeError``.
        """
        try:
            (header_length,) = struct.unpack_from("<I", body, offset)
            offset += 4
            if offset + header_length > len(body):
                raise ContainerError(
                    f"{target}: INFO stream is truncated mid-header; not an ATC container"
                )
            metadata = json.loads(body[offset : offset + header_length].decode("utf-8"))
            offset += header_length
            (interval_length,) = struct.unpack_from("<I", body, offset)
            offset += 4
            if offset + interval_length > len(body):
                raise ContainerError(
                    f"{target}: INFO interval trace is truncated; not an ATC container"
                )
            records = deserialize_interval_trace(body[offset : offset + interval_length])
        except ContainerError:
            raise
        except (struct.error, ValueError, UnicodeDecodeError) as exc:
            # json.JSONDecodeError is a ValueError; struct.error covers the
            # two fixed-width length fields when the body ends early.
            raise ContainerError(
                f"{target}: INFO stream is truncated or malformed "
                f"({exc}); not an ATC container"
            ) from exc
        if not isinstance(metadata, dict):
            raise ContainerError(f"{target}: INFO metadata is not a JSON object")
        return metadata, records

    # -- sizes ----------------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total on-disk size of the container (chunks + INFO)."""
        total = 0
        for entry in self.path.iterdir():
            if entry.is_file():
                total += entry.stat().st_size
        return total

    def exists(self) -> bool:
        """True when the directory contains an INFO stream."""
        return self._info_path().exists()
