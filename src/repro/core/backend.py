"""Byte-level compression back-ends used by the trace codecs.

The ATC program in the paper pipes bytesorted blocks through an external
``bzip2 -c`` process.  This reproduction uses the equivalent in-process
codecs from the Python standard library (``bz2``, ``zlib``, ``lzma``) plus a
"store" back-end that performs no compression at all (useful for testing and
for measuring the size of a transformation before entropy coding).

A back-end is a tiny object with two methods::

    compress(data: bytes) -> bytes
    decompress(data: bytes) -> bytes

Back-ends are looked up by name through :func:`get_backend` so that codec
constructors and the CLI can accept a plain string (``"bz2"``, ``"zlib"``,
``"lzma"``, ``"store"``), mirroring the paper's command-string argument to
``atc_open``.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from repro.errors import CodecError, ConfigurationError

__all__ = [
    "CompressionBackend",
    "get_backend",
    "canonical_backend_name",
    "available_backends",
    "backend_aliases",
    "register_backend",
    "register_alias",
]


@dataclass(frozen=True)
class CompressionBackend:
    """A named pair of ``compress``/``decompress`` functions.

    Attributes:
        name: Identifier used for lookup and for chunk-file suffixes
            (e.g. chunks written with the ``bz2`` back-end are stored as
            ``<n>.bz2`` like in the paper's container format).
        compress: Function mapping raw bytes to compressed bytes.
        decompress: Inverse of ``compress``.
    """

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]

    def roundtrip(self, data: bytes) -> bytes:
        """Compress then decompress ``data`` (used by self-checks/tests)."""
        return self.decompress(self.compress(data))


def _store_compress(data: bytes) -> bytes:
    return bytes(data)


def _store_decompress(data: bytes) -> bytes:
    return bytes(data)


_BACKENDS: Dict[str, CompressionBackend] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(backend: CompressionBackend, aliases: Iterable[str] = ()) -> None:
    """Register ``backend`` so :func:`get_backend` can find it by name.

    Registering a name twice replaces the previous back-end; this lets test
    code substitute instrumented back-ends.  ``aliases`` registers extra
    lookup names resolving to the same back-end object (no duplicate
    compress/decompress functions).
    """
    # A real back-end takes over its name: registering under a name that
    # currently is an alias (e.g. an instrumented "gz") drops the alias, so
    # substitution keeps working like it did when gz/xz were full back-ends.
    _ALIASES.pop(backend.name, None)
    _BACKENDS[backend.name] = backend
    for alias in aliases:
        register_alias(alias, backend.name)


def register_alias(alias: str, target: str) -> None:
    """Make ``alias`` resolve to the back-end registered as ``target``.

    Aliases are resolved at lookup time, so replacing the target back-end
    later also redirects its aliases.  An alias may not shadow a registered
    back-end name.
    """
    if target not in _BACKENDS:
        raise ConfigurationError(f"cannot alias {alias!r} to unknown backend {target!r}")
    if alias in _BACKENDS:
        raise ConfigurationError(f"alias {alias!r} collides with a registered backend name")
    _ALIASES[alias] = target


def available_backends() -> tuple:
    """Return the sorted tuple of all accepted back-end names.

    Aliases are included (they are valid configuration values), so the
    output is a deterministic, sorted union of canonical names and aliases.

    Example:
        >>> set(("bz2", "gz", "zlib", "xz", "lzma", "store")) <= set(available_backends())
        True
    """
    return tuple(sorted(set(_BACKENDS) | set(_ALIASES)))


def backend_aliases() -> Dict[str, str]:
    """Return the ``{alias: canonical_name}`` mapping, sorted by alias."""
    return dict(sorted(_ALIASES.items()))


def canonical_backend_name(name: str) -> str:
    """Resolve a back-end name or alias to its canonical (on-disk) name.

    The chunk-file suffix of a container *is* a canonical back-end name
    (``INFO.bz2``, ``INFO.zlib``, ...), so tools that open existing
    containers (``repro fsck``, the decoder probe) use this to turn a
    detected suffix back into a back-end.

    Example:
        >>> canonical_backend_name("gz")
        'zlib'
        >>> canonical_backend_name("bz2")
        'bz2'
    """
    return get_backend(name).name


def get_backend(name_or_backend) -> CompressionBackend:
    """Resolve a back-end from a name, an alias, or pass an instance through.

    Args:
        name_or_backend: Either a registered back-end name (``"bz2"``,
            ``"zlib"``, ``"lzma"``, ``"store"``), an alias (``"gz"`` for
            zlib, ``"xz"`` for lzma) or an already constructed
            :class:`CompressionBackend`.

    Raises:
        ConfigurationError: If the name is unknown.

    Example:
        >>> get_backend("gz").name                  # aliases resolve to canonical names
        'zlib'
        >>> get_backend("store").roundtrip(b"abc")
        b'abc'
    """
    if isinstance(name_or_backend, CompressionBackend):
        return name_or_backend
    # Registered names win over aliases, so a back-end registered under a
    # (former) alias name is found, not shadowed.
    backend = _BACKENDS.get(name_or_backend)
    if backend is not None:
        return backend
    try:
        return _BACKENDS[_ALIASES[name_or_backend]]
    except KeyError:
        known = ", ".join(available_backends())
        raise ConfigurationError(
            f"unknown compression backend {name_or_backend!r}; known backends: {known}"
        ) from None


def _checked_decompress(name: str, decompress: Callable[[bytes], bytes]) -> Callable[[bytes], bytes]:
    """Translate a stdlib decompressor's raw errors into :class:`CodecError`.

    The stdlib codecs raise an inconsistent zoo on corrupt or truncated
    input (``OSError`` from bz2, ``zlib.error``, ``lzma.LZMAError``,
    ``EOFError``); callers up to and including the HTTP service rely on
    every deliberate library failure being a :class:`~repro.errors.ReproError`,
    so bad compressed bytes must surface as a codec error, not as what
    looks like a programming bug or an I/O failure.
    """

    def checked(data: bytes) -> bytes:
        try:
            return decompress(data)
        except (OSError, EOFError, ValueError, zlib.error, lzma.LZMAError) as error:
            raise CodecError(f"corrupt or truncated {name} data: {error}") from None

    return checked


register_backend(
    CompressionBackend(
        name="bz2",
        compress=lambda data: bz2.compress(data, compresslevel=9),
        decompress=_checked_decompress("bz2", bz2.decompress),
    )
)
# "gz" accepts the paper's gzip-style name; "xz" the modern lzma name.
register_backend(
    CompressionBackend(
        name="zlib",
        compress=lambda data: zlib.compress(data, 9),
        decompress=_checked_decompress("zlib", zlib.decompress),
    ),
    aliases=("gz",),
)
register_backend(
    CompressionBackend(
        name="lzma",
        compress=lambda data: lzma.compress(data, preset=6),
        decompress=_checked_decompress("lzma", lzma.decompress),
    ),
    aliases=("xz",),
)
register_backend(
    CompressionBackend(name="store", compress=_store_compress, decompress=_store_decompress)
)
