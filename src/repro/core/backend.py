"""Byte-level compression back-ends used by the trace codecs.

The ATC program in the paper pipes bytesorted blocks through an external
``bzip2 -c`` process.  This reproduction uses the equivalent in-process
codecs from the Python standard library (``bz2``, ``zlib``, ``lzma``) plus a
"store" back-end that performs no compression at all (useful for testing and
for measuring the size of a transformation before entropy coding).

A back-end is a tiny object with two methods::

    compress(data: bytes) -> bytes
    decompress(data: bytes) -> bytes

Back-ends are looked up by name through :func:`get_backend` so that codec
constructors and the CLI can accept a plain string (``"bz2"``, ``"zlib"``,
``"lzma"``, ``"store"``), mirroring the paper's command-string argument to
``atc_open``.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ConfigurationError

__all__ = [
    "CompressionBackend",
    "get_backend",
    "available_backends",
    "register_backend",
]


@dataclass(frozen=True)
class CompressionBackend:
    """A named pair of ``compress``/``decompress`` functions.

    Attributes:
        name: Identifier used for lookup and for chunk-file suffixes
            (e.g. chunks written with the ``bz2`` back-end are stored as
            ``<n>.bz2`` like in the paper's container format).
        compress: Function mapping raw bytes to compressed bytes.
        decompress: Inverse of ``compress``.
    """

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]

    def roundtrip(self, data: bytes) -> bytes:
        """Compress then decompress ``data`` (used by self-checks/tests)."""
        return self.decompress(self.compress(data))


def _store_compress(data: bytes) -> bytes:
    return bytes(data)


def _store_decompress(data: bytes) -> bytes:
    return bytes(data)


_BACKENDS: Dict[str, CompressionBackend] = {}


def register_backend(backend: CompressionBackend) -> None:
    """Register ``backend`` so :func:`get_backend` can find it by name.

    Registering a name twice replaces the previous back-end; this lets test
    code substitute instrumented back-ends.
    """
    _BACKENDS[backend.name] = backend


def available_backends() -> tuple:
    """Return the sorted tuple of registered back-end names."""
    return tuple(sorted(_BACKENDS))


def get_backend(name_or_backend) -> CompressionBackend:
    """Resolve a back-end from a name or pass an instance through.

    Args:
        name_or_backend: Either a registered back-end name (``"bz2"``,
            ``"gz"``/``"zlib"``, ``"xz"``/``"lzma"``, ``"store"``) or an
            already constructed :class:`CompressionBackend`.

    Raises:
        ConfigurationError: If the name is unknown.
    """
    if isinstance(name_or_backend, CompressionBackend):
        return name_or_backend
    try:
        return _BACKENDS[name_or_backend]
    except KeyError:
        known = ", ".join(available_backends())
        raise ConfigurationError(
            f"unknown compression backend {name_or_backend!r}; known backends: {known}"
        ) from None


register_backend(
    CompressionBackend(
        name="bz2",
        compress=lambda data: bz2.compress(data, compresslevel=9),
        decompress=bz2.decompress,
    )
)
register_backend(
    CompressionBackend(
        name="zlib",
        compress=lambda data: zlib.compress(data, 9),
        decompress=zlib.decompress,
    )
)
# "gz" is an alias for zlib so the CLI accepts the paper's gzip-style name.
register_backend(
    CompressionBackend(
        name="gz",
        compress=lambda data: zlib.compress(data, 9),
        decompress=zlib.decompress,
    )
)
register_backend(
    CompressionBackend(
        name="lzma",
        compress=lambda data: lzma.compress(data, preset=6),
        decompress=lzma.decompress,
    )
)
register_backend(
    CompressionBackend(
        name="xz",
        compress=lambda data: lzma.compress(data, preset=6),
        decompress=lzma.decompress,
    )
)
register_backend(
    CompressionBackend(name="store", compress=_store_compress, decompress=_store_decompress)
)
