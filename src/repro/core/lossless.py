"""Lossless ATC compression: bytesort + byte-level entropy coder.

This codec is the in-memory form of the paper's lossless mode: the trace is
bytesorted with a finite buffer of ``B`` addresses (Section 4.1) and the
transformed byte stream is handed to a byte-level compressor (bzip2 by
default).  The payload carries a small self-describing header so that the
decompressor recovers the buffer size and address count without a side
channel.

The two buffer sizes evaluated in Table 1 — 1 M addresses ("small
bytesort", ``bs1``) and 10 M addresses ("big bytesort", ``bs10``) — are just
two values of ``buffer_addresses``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.backend import get_backend
from repro.core.bytesort import bytesort_inverse, bytesort_transform
from repro.errors import CodecError
from repro.traces.trace import as_address_array

__all__ = ["LosslessCodec", "lossless_compress", "lossless_decompress", "lossless_bits_per_address"]

_MAGIC = b"ATCL"
_HEADER = struct.Struct("<4sB Q Q")  # magic, version, address count, buffer size


@dataclass(frozen=True)
class LosslessCodec:
    """Bytesort-based lossless codec.

    Attributes:
        buffer_addresses: Bytesort buffer size ``B`` in addresses.
        backend: Name or instance of the byte-level compression back-end.
    """

    buffer_addresses: int = 1_000_000
    backend: object = "bz2"

    def __post_init__(self) -> None:
        if self.buffer_addresses <= 0:
            raise CodecError("buffer_addresses must be positive")
        # Resolve eagerly so configuration errors surface at construction.
        get_backend(self.backend)

    def compress(self, addresses) -> bytes:
        """Compress an address sequence into a self-describing byte string."""
        values = as_address_array(addresses)
        transformed = bytesort_transform(values, self.buffer_addresses)
        payload = get_backend(self.backend).compress(transformed)
        header = _HEADER.pack(_MAGIC, 1, int(values.size), int(self.buffer_addresses))
        return header + payload

    def compress_many(self, intervals, workers: int = 1, executor=None) -> list:
        """Compress several address sequences, preserving input order.

        The bulk entry point of the parallel chunk pipeline: with
        ``workers > 1`` (or an explicit ``executor``) the intervals are
        compressed concurrently — on threads (the stdlib byte-level codecs
        release the GIL) or, with the process executor, on other cores with
        the interval arrays and compressed payloads moved through shared
        memory.  ``intervals`` may be any iterable, including a lazy
        generator: it is consumed through a bounded submission window
        (``2 * workers`` tasks in flight), never materialised up front, so
        the streaming pipeline's bounded-memory guarantee holds for
        arbitrarily long interval streams.  The result is byte-identical
        to ``[self.compress(i) for i in intervals]`` for every strategy.
        """
        from repro.core.parallel import imap_ordered

        return list(imap_ordered(self.compress, intervals, workers=workers, executor=executor))

    def decompress_many(self, payloads, workers: int = 1, executor=None) -> list:
        """Decompress several payloads, preserving input order (see above)."""
        from repro.core.parallel import imap_ordered

        return list(imap_ordered(self.decompress, payloads, workers=workers, executor=executor))

    def decompress(self, payload: bytes) -> np.ndarray:
        """Invert :meth:`compress`."""
        if len(payload) < _HEADER.size:
            raise CodecError("truncated lossless ATC stream: missing header")
        magic, version, count, buffer_addresses = _HEADER.unpack(payload[: _HEADER.size])
        if magic != _MAGIC:
            raise CodecError("not a lossless ATC stream (bad magic)")
        if version != 1:
            raise CodecError(f"unsupported lossless ATC stream version {version}")
        transformed = get_backend(self.backend).decompress(payload[_HEADER.size :])
        values = bytesort_inverse(transformed, int(buffer_addresses))
        if int(values.size) != count:
            raise CodecError(
                f"lossless ATC stream is corrupt: expected {count} addresses, got {values.size}"
            )
        return values

    def bits_per_address(self, addresses) -> float:
        """Compressed size in bits divided by the number of addresses."""
        values = as_address_array(addresses)
        if values.size == 0:
            return 0.0
        return 8.0 * len(self.compress(values)) / values.size


def lossless_compress(addresses, buffer_addresses: int = 1_000_000, backend="bz2") -> bytes:
    """One-shot lossless ATC compression.

    Example:
        >>> import numpy as np
        >>> trace = np.arange(5000, dtype=np.uint64) % 700
        >>> payload = lossless_compress(trace, buffer_addresses=1000)
        >>> len(payload) < trace.nbytes
        True
        >>> bool(np.array_equal(lossless_decompress(payload), trace))
        True
    """
    return LosslessCodec(buffer_addresses, backend).compress(addresses)


def lossless_decompress(payload: bytes, backend="bz2") -> np.ndarray:
    """One-shot lossless ATC decompression (buffer size read from the header).

    See :func:`lossless_compress` for a round-trip example.
    """
    return LosslessCodec(backend=backend).decompress(payload)


def lossless_bits_per_address(addresses, buffer_addresses: int = 1_000_000, backend="bz2") -> float:
    """Bits per address of the bytesort/bzip2 lossless compressor."""
    return LosslessCodec(buffer_addresses, backend).bits_per_address(addresses)
