"""The paper's contribution: bytesort, the lossy phase codec and ATC itself."""

from repro.core.atc import (
    AtcDecoder,
    AtcEncoder,
    atc_open,
    compress_stream,
    compress_trace,
    decompress_stream,
    decompress_trace,
)
from repro.core.backend import CompressionBackend, available_backends, get_backend
from repro.core.bytesort import (
    bytesort_inverse,
    bytesort_inverse_window,
    bytesort_transform,
    bytesort_window,
)
from repro.core.container import AtcContainer
from repro.core.fsck import repair_container, scrub_container, scrub_path
from repro.core.integrity import chunk_digest, json_digest
from repro.core.inspect import LossyTraceReport, analyze_container, analyze_lossy
from repro.core.histograms import (
    IntervalSummary,
    apply_translation,
    byte_histograms,
    byte_translation,
    interval_distance,
    sort_histograms,
)
from repro.core.intervals import ChunkTable, IntervalRecord
from repro.core.lossless import LosslessCodec, lossless_compress, lossless_decompress
from repro.core.parallel import (
    EXECUTOR_NAMES,
    Executor,
    OrderedChunkWriter,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_scope,
    map_ordered,
    resolve_executor,
    resolve_workers,
)
from repro.core.kernels import KernelBatchResult, simulate_batch
from repro.core.stream import (
    DEFAULT_CHUNK_ADDRESSES,
    chunk_array,
    concat_chunks,
    count_addresses,
    map_chunks,
    rechunk,
)
from repro.core.lossy import (
    LossyCodec,
    LossyCompressed,
    LossyConfig,
    LossyIntervalEncoder,
    lossy_compress,
    lossy_decompress,
)

__all__ = [
    "AtcEncoder",
    "AtcDecoder",
    "atc_open",
    "compress_trace",
    "decompress_trace",
    "compress_stream",
    "decompress_stream",
    "DEFAULT_CHUNK_ADDRESSES",
    "chunk_array",
    "map_chunks",
    "rechunk",
    "concat_chunks",
    "count_addresses",
    "KernelBatchResult",
    "simulate_batch",
    "AtcContainer",
    "scrub_container",
    "repair_container",
    "scrub_path",
    "chunk_digest",
    "json_digest",
    "LossyTraceReport",
    "analyze_lossy",
    "analyze_container",
    "CompressionBackend",
    "get_backend",
    "available_backends",
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "OrderedChunkWriter",
    "executor_scope",
    "map_ordered",
    "resolve_executor",
    "resolve_workers",
    "bytesort_window",
    "bytesort_inverse_window",
    "bytesort_transform",
    "bytesort_inverse",
    "byte_histograms",
    "sort_histograms",
    "interval_distance",
    "byte_translation",
    "apply_translation",
    "IntervalSummary",
    "ChunkTable",
    "IntervalRecord",
    "LosslessCodec",
    "lossless_compress",
    "lossless_decompress",
    "LossyCodec",
    "LossyConfig",
    "LossyCompressed",
    "LossyIntervalEncoder",
    "lossy_compress",
    "lossy_decompress",
]
