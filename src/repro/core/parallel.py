"""Ordered parallel primitives of the chunk pipeline, on the executor engine.

The paper's ATC tool overlaps compression with trace generation by piping
bytesorted blocks through an external ``bzip2 -c`` process; the operating
system runs the compressor on another core.  This module reproduces that
overlap in-process on top of the pluggable executor engine
(:mod:`repro.core.executors`): work can run inline (``serial``), on a
thread pool (``thread`` — the stdlib codecs release the GIL), or on a
process pool with shared-memory chunk transport (``process`` — true
multi-core for the pure-Python hot loops).

Two primitives are provided on top of the engine:

* :func:`map_ordered` — a bounded ``map`` that preserves input order (used
  for bulk chunk compression, decoder prefetch, sweep cells).
* :class:`OrderedChunkWriter` — a streaming pipeline stage: submit
  ``(chunk_id, fn, args)`` triples as chunk boundaries are reached;
  completed payloads are written back strictly in submission order, and at
  most ``max_pending`` chunks are in flight so memory stays bounded.

Both degrade to plain synchronous execution on the serial executor, which
keeps the default path free of pool overhead and makes the byte-identity
invariant (parallel output == serial output) easy to test.  The executor
is selected per call site (``executor=`` accepts a strategy name or a live
:class:`~repro.core.executors.Executor` to share), falling back to the
``REPRO_EXECUTOR`` environment variable and the worker-count heuristic —
see :func:`~repro.core.executors.resolve_executor`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple, TypeVar

from repro.core.executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskHandle,
    ThreadExecutor,
    default_mp_context,
    executor_kind,
    executor_scope,
    resolve_executor,
    resolve_workers,
)
from repro.errors import ConfigurationError

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskHandle",
    "resolve_workers",
    "resolve_executor",
    "executor_scope",
    "executor_kind",
    "default_mp_context",
    "map_ordered",
    "imap_ordered",
    "OrderedChunkWriter",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def map_ordered(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int = 1,
    executor=None,
) -> List[_R]:
    """Apply ``fn`` to every item, in parallel, preserving input order.

    With one worker (or fewer than two items) and no explicit executor this
    is a plain list comprehension; otherwise the work runs on the resolved
    executor — threads by default, processes when selected via ``executor``
    or ``REPRO_EXECUTOR`` (in which case ``fn`` and the items must be
    picklable; bulk arrays and byte strings ride shared memory).

    Args:
        fn: The per-item function.
        items: The inputs, fully materialised.
        workers: Pool size for executors created here (``0``/``None`` = one
            per CPU).
        executor: Strategy name, :class:`Executor` instance to borrow, or
            ``None`` for the environment/auto default.
    """
    items = list(items)
    if len(items) <= 1:
        return [fn(item) for item in items]
    # Inline only when nothing asked for parallelism: no explicit executor,
    # one worker, and no REPRO_EXECUTOR override (executor_kind consults the
    # environment for a None spec) — so the env knob flips this site too.
    if executor is None and resolve_workers(workers) <= 1 and executor_kind(None) == "auto":
        return [fn(item) for item in items]
    with executor_scope(executor, workers) as engine:
        return engine.map_ordered(fn, items)


def imap_ordered(
    fn: Callable[[_T], _R],
    items,
    workers: int = 1,
    executor=None,
    lookahead: Optional[int] = None,
):
    """Lazily apply ``fn`` to an item stream, yielding results in order.

    The streaming form of :func:`map_ordered`: ``items`` may be any
    iterable (including an unbounded generator) and is consumed only as
    results are yielded, with at most ``lookahead`` tasks (default
    ``2 * workers``) in flight ahead of the consumer — so both the input
    items and the pending results stay bounded regardless of stream
    length.  Results are byte-identical to ``map(fn, items)`` for every
    strategy; on the serial path items are processed one at a time with
    no window at all.

    Args:
        fn: The per-item function.
        items: The inputs; consumed lazily.
        workers: Pool size for executors created here (``0``/``None`` =
            one per CPU).
        executor: Strategy name, :class:`Executor` instance to borrow, or
            ``None`` for the environment/auto default.
        lookahead: In-flight window override (defaults to ``2 * workers``).

    Example:
        >>> list(imap_ordered(lambda value: value * 2, iter([1, 2, 3])))
        [2, 4, 6]
    """
    if executor is None and resolve_workers(workers) <= 1 and executor_kind(None) == "auto":
        for item in items:
            yield fn(item)
        return
    with executor_scope(executor, workers) as engine:
        for result in engine.imap_ordered(fn, items, lookahead=lookahead):
            yield result


class OrderedChunkWriter:
    """Run chunk tasks on an executor, writing results in submission order.

    Args:
        write: Callback ``write(chunk_id, payload)`` invoked on the caller's
            thread, strictly in the order chunks were submitted.
        workers: Pool size when the writer creates its own executor; ``1``
            (with no explicit ``executor``) selects inline serial execution,
            the reference behaviour.
        max_pending: Maximum number of chunks in flight before :meth:`submit`
            blocks on the oldest one (defaults to ``2 * workers``), bounding
            the memory held by buffered intervals and finished payloads.
        executor: Strategy name or live :class:`Executor` to run tasks on; a
            borrowed instance is left open on close, an executor created
            here is shut down with the writer.
    """

    def __init__(
        self,
        write: Callable[[int, bytes], object],
        workers: int = 1,
        max_pending: Optional[int] = None,
        executor=None,
    ) -> None:
        if isinstance(workers, int) and workers < 1 and executor is None:
            raise ConfigurationError("OrderedChunkWriter needs at least one worker")
        self._write = write
        self._owns_executor = not isinstance(executor, Executor)
        self._executor = resolve_executor(executor, workers)
        self.workers = self._executor.workers if self._executor.is_async else 1
        self._max_pending = max_pending if max_pending is not None else 2 * max(1, self.workers)
        self._pending: Deque[Tuple[int, TaskHandle]] = deque()
        self._closed = False

    @property
    def is_async(self) -> bool:
        """True when tasks may still be running after :meth:`submit` returns.

        Callers must hand such writers owned arguments (the encoder copies
        interval views before submitting); on the inline serial path buffer
        reuse is safe.
        """
        return self._executor.is_async

    def decouples_at_submit(self, nbytes: int) -> bool:
        """Whether an ``nbytes`` array is safe to reuse after :meth:`submit`
        (see :meth:`repro.core.executors.Executor.decouples_at_submit`)."""
        return self._executor.decouples_at_submit(nbytes)

    def submit(self, chunk_id: int, task: Callable[..., bytes], *args) -> None:
        """Queue one chunk; ``task(*args)`` produces its compressed payload.

        On the process executor ``task`` and ``args`` must be picklable;
        bulk arrays among ``args`` are parked in shared memory before this
        returns (see :meth:`repro.core.executors.ProcessExecutor.submit`).
        """
        if self._closed:
            raise ConfigurationError("cannot submit chunks to a closed OrderedChunkWriter")
        if not self._executor.is_async:
            self._write(chunk_id, task(*args))
            return
        self._pending.append((chunk_id, self._executor.submit(task, *args)))
        while len(self._pending) > self._max_pending:
            self._drain_one()

    def _drain_one(self) -> None:
        chunk_id, handle = self._pending.popleft()
        self._write(chunk_id, handle.result())

    def close(self) -> None:
        """Drain every in-flight chunk (in order) and shut the pool down."""
        if self._closed:
            return
        self._closed = True
        try:
            while self._pending:
                self._drain_one()
        finally:
            if self._owns_executor:
                self._executor.close()

    def cancel(self) -> None:
        """Drop all in-flight chunks without writing them (error path).

        Queued-but-unstarted tasks are cancelled; finished results are
        discarded (including their shared-memory segments); the pool is
        reaped.  A borrowed executor is left open but its pending handles
        are cancelled.
        """
        self._closed = True
        for _, handle in self._pending:
            handle.cancel()
        self._pending.clear()
        if self._owns_executor:
            self._executor.close(cancel=True)

    def __enter__(self) -> "OrderedChunkWriter":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is None:
            self.close()
        else:
            self.cancel()
