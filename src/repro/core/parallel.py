"""Ordered parallel execution helpers for the chunk-compression pipeline.

The paper's ATC tool overlaps compression with trace generation by piping
bytesorted blocks through an external ``bzip2 -c`` process; the operating
system runs the compressor on another core.  This module reproduces that
overlap in-process: the standard-library codecs (``bz2``, ``zlib``,
``lzma``) all release the GIL while (de)compressing, so a small thread pool
compresses several chunks concurrently while the encoder keeps consuming
addresses.

Two primitives are provided:

* :func:`map_ordered` — a bounded ``map`` over a thread pool that preserves
  input order (used for bulk chunk compression and decoder prefetch).
* :class:`OrderedChunkWriter` — a streaming pipeline stage: submit
  ``(chunk_id, task)`` pairs as chunk boundaries are reached; completed
  payloads are written back strictly in submission order, and at most
  ``max_pending`` chunks are in flight so memory stays bounded.

Both degrade to plain synchronous execution when ``workers <= 1``, which
keeps the serial path free of thread-pool overhead and makes the
byte-identity invariant (parallel output == serial output) easy to test.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Deque, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError

__all__ = ["resolve_workers", "map_ordered", "OrderedChunkWriter"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob to a concrete positive integer.

    ``None`` and ``0`` mean "one worker per available CPU"; any positive
    integer is taken literally; negative values are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if not isinstance(workers, int) or workers < 0:
        raise ConfigurationError(f"workers must be a non-negative integer or None, got {workers!r}")
    return workers


def map_ordered(fn: Callable[[_T], _R], items: Sequence[_T], workers: int = 1) -> List[_R]:
    """Apply ``fn`` to every item, in parallel, preserving input order.

    With ``workers <= 1`` (or fewer than two items) this is a plain list
    comprehension; otherwise a thread pool of ``workers`` threads is used
    and the results come back in input order, like ``Executor.map``.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


class OrderedChunkWriter:
    """Compress chunks on a thread pool, writing results in submission order.

    Args:
        write: Callback ``write(chunk_id, payload)`` invoked on the caller's
            thread, strictly in the order chunks were submitted.
        workers: Number of compression threads; ``1`` disables threading and
            runs every task synchronously (the serial reference behaviour).
        max_pending: Maximum number of chunks in flight before :meth:`submit`
            blocks on the oldest one (defaults to ``2 * workers``), bounding
            the memory held by buffered intervals and finished payloads.
    """

    def __init__(
        self,
        write: Callable[[int, bytes], object],
        workers: int = 1,
        max_pending: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("OrderedChunkWriter needs at least one worker")
        self._write = write
        self.workers = workers
        self._max_pending = max_pending if max_pending is not None else 2 * workers
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
        )
        self._pending: Deque[Tuple[int, "Future[bytes]"]] = deque()
        self._closed = False

    def submit(self, chunk_id: int, task: Callable[[], bytes]) -> None:
        """Queue one chunk; ``task()`` produces its compressed payload."""
        if self._closed:
            raise ConfigurationError("cannot submit chunks to a closed OrderedChunkWriter")
        if self._executor is None:
            self._write(chunk_id, task())
            return
        self._pending.append((chunk_id, self._executor.submit(task)))
        while len(self._pending) > self._max_pending:
            self._drain_one()

    def _drain_one(self) -> None:
        chunk_id, future = self._pending.popleft()
        self._write(chunk_id, future.result())

    def close(self) -> None:
        """Drain every in-flight chunk (in order) and shut the pool down."""
        if self._closed:
            return
        self._closed = True
        try:
            while self._pending:
                self._drain_one()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def cancel(self) -> None:
        """Drop all in-flight chunks without writing them (error path)."""
        self._closed = True
        self._pending.clear()
        if self._executor is not None:
            # cancel_futures keeps queued-but-unstarted compressions from
            # running to completion just to be discarded (Python >= 3.9).
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "OrderedChunkWriter":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is None:
            self.close()
        else:
            self.cancel()
