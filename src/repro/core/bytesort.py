"""The bytesort reversible transformation (paper, Section 4).

Bytesort takes a finite window of 64-bit addresses and emits eight blocks of
bytes, one per byte position, from the most significant byte to the least
significant byte:

1. emit the current most-significant byte of every address, in the current
   address order ("byte unshuffling");
2. stably sort the addresses by that byte;
3. repeat with the next byte position.

Because the sort is *stable*, the permutation applied at each step is fully
determined by the byte block that was just emitted (a counting sort of its
values), so the transformation is reversible: the decompressor replays the
same sorts from the emitted blocks.  The effect of the successive sorts is
that addresses from the same memory region are progressively grouped
together, which exposes repeated access patterns to a downstream byte-level
compressor (bzip2 in the paper).

The transformation is linear in time and space in the window size, matching
the complexity the paper claims for the C implementation of Figure 2.

This module provides the window transform, its inverse and the streaming
variant that processes a long trace with a finite buffer of ``B`` addresses
(the paper's "small bytesort" uses B = 1 M and "big bytesort" B = 10 M).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.kernel_backends import compiled_bytesort
from repro.errors import CodecError
from repro.traces.trace import ADDRESS_BYTES, as_address_array

__all__ = [
    "bytesort_window",
    "bytesort_inverse_window",
    "bytesort_transform",
    "bytesort_inverse",
    "iter_windows",
]


def iter_windows(addresses: np.ndarray, buffer_addresses: int) -> Iterable[np.ndarray]:
    """Yield consecutive windows of at most ``buffer_addresses`` addresses."""
    if buffer_addresses <= 0:
        raise CodecError("buffer_addresses must be positive")
    for start in range(0, addresses.size, buffer_addresses):
        yield addresses[start : start + buffer_addresses]


def bytesort_window(addresses) -> bytes:
    """Apply the bytesort transformation to one window of addresses.

    Returns the eight concatenated byte blocks (most significant byte block
    first), ``8 * len(addresses)`` bytes in total.  The transform does not
    shrink the data; it only reorders bytes so that a byte-level compressor
    can exploit the exposed regularity.

    Example:
        >>> payload = bytesort_window([1, 2, 3])
        >>> len(payload)
        24
        >>> bytesort_inverse_window(payload).tolist()
        [1, 2, 3]
    """
    values = as_address_array(addresses)
    count = int(values.size)
    if count == 0:
        return b""
    # columns[k, j] is byte of order j of address k (j = 0 is the LSB).
    columns = values.view(np.uint8).reshape(count, ADDRESS_BYTES)
    # one preallocated output matrix, one row per emitted block: a single
    # final tobytes() replaces eight intermediate byte strings plus a join
    out = np.empty((ADDRESS_BYTES, count), dtype=np.uint8)
    compiled = compiled_bytesort()
    if compiled is not None:
        compiled[0](np.ascontiguousarray(columns), out)
        return out.tobytes()
    order = np.arange(count)
    for block_index in range(ADDRESS_BYTES):
        position = ADDRESS_BYTES - 1 - block_index
        column = columns[order, position]
        out[block_index] = column
        if position:  # no need to sort after the last (least significant) block
            order = order[np.argsort(column, kind="stable")]
    return out.tobytes()


def bytesort_inverse_window(payload: bytes) -> np.ndarray:
    """Invert :func:`bytesort_window`.

    The inverse replays the forward pass: the first block gives the most
    significant byte of every address in original order; a stable counting
    sort of that block reproduces the permutation the encoder applied before
    emitting the second block, and so on.
    """
    if len(payload) % ADDRESS_BYTES:
        raise CodecError(
            f"bytesorted window length {len(payload)} is not a multiple of {ADDRESS_BYTES}"
        )
    count = len(payload) // ADDRESS_BYTES
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    blocks = np.frombuffer(payload, dtype=np.uint8).reshape(ADDRESS_BYTES, count)
    columns = np.empty((count, ADDRESS_BYTES), dtype=np.uint8)
    compiled = compiled_bytesort()
    if compiled is not None:
        compiled[1](np.ascontiguousarray(blocks), columns)
        return columns.view("<u8").reshape(count).copy()
    order = np.arange(count)
    for block_index in range(ADDRESS_BYTES):
        position = ADDRESS_BYTES - 1 - block_index  # byte order j, MSB first
        block = blocks[block_index]
        # block[k] is the byte of the address currently at position k of the
        # encoder's working order; map it back to the original address index.
        columns[order, position] = block
        if position:
            order = order[np.argsort(block, kind="stable")]
    return columns.view("<u8").reshape(count).copy()


def bytesort_transform(addresses, buffer_addresses: int = 1_000_000) -> bytes:
    """Bytesort a whole trace window by window with a finite buffer.

    This is the streaming formulation of Section 4.1: "For long address
    traces, we use a finite size buffer of B x 8 bytes, and we output the
    eight blocks every B addresses."  A bigger buffer exposes longer-range
    regularity and therefore compresses better (Table 1's bs1 vs bs10).

    Example:
        >>> import numpy as np
        >>> trace = np.arange(10, dtype=np.uint64)
        >>> payload = bytesort_transform(trace, buffer_addresses=4)
        >>> bool(np.array_equal(bytesort_inverse(payload, buffer_addresses=4), trace))
        True
    """
    values = as_address_array(addresses)
    return b"".join(bytesort_window(window) for window in iter_windows(values, buffer_addresses))


def bytesort_inverse(payload: bytes, buffer_addresses: int = 1_000_000) -> np.ndarray:
    """Invert :func:`bytesort_transform` (must use the same buffer size)."""
    if buffer_addresses <= 0:
        raise CodecError("buffer_addresses must be positive")
    window_bytes = buffer_addresses * ADDRESS_BYTES
    if len(payload) % ADDRESS_BYTES:
        raise CodecError("bytesorted payload length is not a multiple of 8")
    windows = [
        bytesort_inverse_window(payload[start : start + window_bytes])
        for start in range(0, len(payload), window_bytes)
    ]
    if not windows:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(windows)
