"""Shared-memory transport for the process executor's bulk payloads.

The process executor (:mod:`repro.core.executors`) moves work between
interpreters, and the work of this library is dominated by two bulk types:
``uint64`` address chunks (NumPy arrays) and compressed chunk payloads
(``bytes``).  Pickling either through the multiprocessing pipe copies the
data twice (serialise + deserialise) and funnels it through a byte stream;
for multi-megabyte chunks that overhead erases most of the multi-core win.

This module implements the zero-pickle-copy alternative on top of
:mod:`multiprocessing.shared_memory`:

* :func:`export_value` walks a value (recursing through lists, tuples and
  dicts), lifts every large ``numpy.ndarray`` / ``bytes`` object into a
  fresh shared-memory segment, and replaces it with a tiny picklable
  *handle* (:class:`ShmArrayHandle` / :class:`ShmBytesHandle`) naming the
  segment.  Only the handles travel through the pickle pipe.
* :func:`import_value` is the inverse: it attaches to each named segment,
  copies the payload back out into a regular array / bytes object, closes
  the mapping, and (on the final consumer's side) unlinks the segment.

Lifecycle contract — the key to "no leaked segments":

1. the **sender** creates the segments (``export_value``) and is
   responsible for unlinking them if the transfer is abandoned
   (:func:`release_segments`);
2. the **receiver** attaches, copies, closes, and — when ``unlink=True`` —
   unlinks, ending the segment's life;
3. exactly one side unlinks each segment, and every mapping is closed as
   soon as the copy is done, so no segment outlives the task that shipped
   it.

Payloads smaller than :data:`SHM_MIN_BYTES` are left in place and travel
through the ordinary pickle path: a shared-memory segment costs a few
system calls, which dwarfs the pickle cost of a small object.  The
threshold is overridable through the ``REPRO_SHM_MIN_BYTES`` environment
variable (``0`` forces every array and byte string through shared memory,
which the tests use to exercise the transport).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Tuple

import numpy as np

__all__ = [
    "SHM_MIN_BYTES",
    "ShmArrayHandle",
    "ShmBytesHandle",
    "shm_min_bytes",
    "export_value",
    "import_value",
    "release_segments",
    "discard_exported",
]

#: Default minimum payload size (in bytes) moved through shared memory;
#: smaller objects ride the ordinary pickle pipe.
SHM_MIN_BYTES = 1 << 14


def shm_min_bytes() -> int:
    """The active shared-memory threshold (``REPRO_SHM_MIN_BYTES`` wins)."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES")
    if raw is None:
        return SHM_MIN_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return SHM_MIN_BYTES


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh segment, asking Python >= 3.13 not to double-track it.

    The creating side of this transport always unlinks its segments
    deterministically (either the receiver consumes them or
    :func:`release_segments` reclaims them), so the resource tracker's
    safety net is redundant; on 3.13+ opting out silences the spurious
    "leaked shared_memory objects" warning the tracker prints when a
    segment it registered was unlinked by the *other* process.
    """
    size = max(1, int(nbytes))
    try:
        return shared_memory.SharedMemory(create=True, size=size, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(create=True, size=size)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class ShmArrayHandle:
    """Picklable reference to a NumPy array parked in a shared segment.

    Attributes:
        name: Shared-memory segment name.
        shape: Array shape to rebuild on the receiving side.
        dtype: Array dtype string (``numpy.dtype.str``, endian-explicit).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def load(self, unlink: bool) -> np.ndarray:
        """Attach, copy the array out, close, optionally unlink."""
        segment = _attach_segment(self.name)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=segment.buf)
            return np.array(view, copy=True)
        finally:
            segment.close()
            if unlink:
                segment.unlink()


@dataclass(frozen=True)
class ShmBytesHandle:
    """Picklable reference to a byte string parked in a shared segment.

    Attributes:
        name: Shared-memory segment name.
        length: Payload length (the segment may be rounded up by the OS).
    """

    name: str
    length: int

    def load(self, unlink: bool) -> bytes:
        """Attach, copy the bytes out, close, optionally unlink."""
        segment = _attach_segment(self.name)
        try:
            return bytes(segment.buf[: self.length])
        finally:
            segment.close()
            if unlink:
                segment.unlink()


def _export_array(array: np.ndarray, segments: List[shared_memory.SharedMemory]) -> ShmArrayHandle:
    contiguous = np.ascontiguousarray(array)
    segment = _create_segment(contiguous.nbytes)
    segments.append(segment)
    target = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
    target[...] = contiguous
    return ShmArrayHandle(name=segment.name, shape=tuple(contiguous.shape), dtype=contiguous.dtype.str)


def _export_bytes(payload: bytes, segments: List[shared_memory.SharedMemory]) -> ShmBytesHandle:
    segment = _create_segment(len(payload))
    segments.append(segment)
    segment.buf[: len(payload)] = payload
    return ShmBytesHandle(name=segment.name, length=len(payload))


def export_value(value, segments: List[shared_memory.SharedMemory], threshold: int = -1):
    """Replace large arrays / byte strings in ``value`` with segment handles.

    Recurses through lists, tuples and dicts (the containers the executor's
    task arguments and results are built from); every other object is
    returned unchanged and travels through the ordinary pickle pipe.  Each
    created :class:`multiprocessing.shared_memory.SharedMemory` is appended
    to ``segments`` — the caller owns them until the receiver consumes the
    transfer (see the module docstring's lifecycle contract).

    Args:
        value: Arbitrary task argument or result.
        segments: Output list collecting the created segments.
        threshold: Minimum payload size in bytes; ``-1`` means "use
            :func:`shm_min_bytes`".
    """
    limit = shm_min_bytes() if threshold < 0 else threshold
    if isinstance(value, np.ndarray):
        if value.nbytes >= limit:
            return _export_array(value, segments)
        return value
    if isinstance(value, (bytes, bytearray)):
        if len(value) >= limit:
            return _export_bytes(bytes(value), segments)
        return value
    if isinstance(value, tuple):
        return tuple(export_value(item, segments, limit) for item in value)
    if isinstance(value, list):
        return [export_value(item, segments, limit) for item in value]
    if isinstance(value, dict):
        return {key: export_value(item, segments, limit) for key, item in value.items()}
    return value


def import_value(value, unlink: bool):
    """Inverse of :func:`export_value`: resolve handles back into payloads.

    With ``unlink=True`` (the final consumer) every visited segment is
    unlinked after its payload is copied out, ending its life; with
    ``unlink=False`` (an intermediate hop, e.g. the worker reading its
    arguments) the segment is left for the owner to reclaim.
    """
    if isinstance(value, (ShmArrayHandle, ShmBytesHandle)):
        return value.load(unlink)
    if isinstance(value, tuple):
        return tuple(import_value(item, unlink) for item in value)
    if isinstance(value, list):
        return [import_value(item, unlink) for item in value]
    if isinstance(value, dict):
        return {key: import_value(item, unlink) for key, item in value.items()}
    return value


def release_segments(segments: List[shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment, swallowing already-gone errors.

    Used by the sender to reclaim argument segments once the worker is done
    with them (or when a task is abandoned), and by error paths: unlinking
    twice or unlinking a segment the receiver already consumed must never
    mask the original failure.
    """
    for segment in segments:
        try:
            segment.close()
        except (OSError, ValueError):
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError, ValueError):
            pass
    segments.clear()


def discard_exported(value) -> None:
    """Unlink every segment referenced by an exported (packed) value.

    The receiver-side counterpart of :func:`release_segments`: when a
    completed task's packed *result* is never consumed (the pipeline was
    cancelled after the worker finished), the parent walks the packed value
    and unlinks the worker-created segments without paying for the copy.
    """
    if isinstance(value, (ShmArrayHandle, ShmBytesHandle)):
        try:
            segment = _attach_segment(value.name)
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            discard_exported(item)
        return
    if isinstance(value, dict):
        for item in value.values():
            discard_exported(item)
