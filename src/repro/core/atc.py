"""The ATC compressor facade: streaming single-pass compression to disk.

This is the reproduction of the paper's Section 6 API.  The C original
exposes four functions — ``atc_open``, ``atc_code``, ``atc_decode`` and
``atc_close`` — where the open mode selects lossy compression (``'k'``),
lossless compression (``'c'``) or decompression (``'d'``).  Here the same
workflow is expressed with two context-manager classes plus convenience
one-shot functions:

* :class:`AtcEncoder` — feed it 64-bit values one at a time (or in bulk);
  it buffers one interval (lossy mode) or one bytesort buffer (lossless
  mode) in memory, compresses at each boundary and writes chunk files and
  the INFO stream into a container directory.
* :class:`AtcDecoder` — iterate over the decoded values of a container, or
  read them all at once.
* :func:`atc_open` — literal translation of the paper's entry point for
  users who want the C-flavoured API.
* :func:`compress_trace` / :func:`decompress_trace` — one-shot helpers used
  by the benchmark harness and the CLI.

Lossless mode reuses the same container layout: every bytesort buffer
becomes its own chunk and the interval trace contains only "chunk" records,
so a lossless container is simply a lossy container that never imitates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.core.container import FORMAT_VERSION, AtcContainer
from repro.core.integrity import chunk_digest, parse_chunk_digests
from repro.core.intervals import IntervalRecord, materialize_interval
from repro.core.lossless import LosslessCodec
from repro.core.lossy import LossyConfig, LossyIntervalEncoder
from repro.core.parallel import Executor, OrderedChunkWriter, executor_scope, resolve_workers
from repro.errors import CodecError, ConfigurationError, IntegrityError
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, AddressTrace, as_address_array

__all__ = [
    "MODE_LOSSY",
    "MODE_LOSSLESS",
    "MODE_DECODE",
    "AtcEncoder",
    "AtcDecoder",
    "atc_open",
    "compress_trace",
    "decompress_trace",
    "compress_stream",
    "decompress_stream",
]

#: Paper's ``atc_open`` mode characters.
MODE_LOSSY = "k"
MODE_LOSSLESS = "c"
MODE_DECODE = "d"


class AtcEncoder:
    """Streaming single-pass ATC compressor writing a container directory.

    Args:
        directory: Container directory to create.
        mode: ``"k"`` for lossy compression, ``"c"`` for lossless.
        config: Lossy configuration (interval length, threshold, back-end).
            In lossless mode only ``chunk_buffer_addresses`` and ``backend``
            are used (each bytesort buffer becomes a chunk).
        suffix: Chunk file suffix; defaults to the back-end name.
        executor: Execution strategy for the chunk pipeline — a name
            (``"serial"``/``"thread"``/``"process"``) or a live
            :class:`~repro.core.executors.Executor` to share across
            encoders; overrides ``config.executor``.  Containers are
            byte-identical for every strategy.
        format_version: Container format to write — ``2`` (the default)
            records a digest per chunk plus an INFO footer digest so every
            decode path verifies the bytes it reads; ``1`` reproduces the
            original unchecked layout byte-for-byte (for interchange with
            pre-v2 readers).
    """

    def __init__(
        self,
        directory,
        mode: str = MODE_LOSSY,
        config: Optional[LossyConfig] = None,
        suffix: Optional[str] = None,
        executor=None,
        format_version: int = FORMAT_VERSION,
    ) -> None:
        if mode not in (MODE_LOSSY, MODE_LOSSLESS):
            raise ConfigurationError(f"encoder mode must be 'k' or 'c', got {mode!r}")
        if format_version not in (1, 2):
            raise ConfigurationError(
                f"container format_version must be 1 or 2, got {format_version!r}"
            )
        self.mode = mode
        self.format_version = int(format_version)
        self.config = config if config is not None else LossyConfig()
        self.container = AtcContainer(
            directory, backend=self.config.backend, suffix=suffix, create=True
        )
        self._records: List[IntervalRecord] = []
        self._total = 0
        self._closed = False
        if mode == MODE_LOSSY:
            self._interval_encoder = LossyIntervalEncoder(self.config)
            self._flush_threshold = self.config.interval_length
            self._chunk_codec = self._interval_encoder.chunk_codec
        else:
            self._interval_encoder = None
            self._chunk_codec = LosslessCodec(
                buffer_addresses=self.config.chunk_buffer_addresses, backend=self.config.backend
            )
            self._flush_threshold = self.config.chunk_buffer_addresses
        # Preallocated interval buffer: values fed one at a time accumulate
        # here, and every interval is encoded from a zero-copy view (of this
        # buffer, or of the caller's array in :meth:`code_many`).
        self._buffer = np.empty(self._flush_threshold, dtype=np.uint64)
        self._buffered = 0
        # Ordered parallel chunk pipeline: chunk payloads are compressed on
        # the selected executor (threads, or processes with shared-memory
        # chunk transport) and written back to the container in submission
        # order; on the serial default it runs inline.  The write callback
        # runs on the caller's thread regardless of executor, so digest
        # collection here is race-free.
        self._chunk_digests: Dict[int, str] = {}
        self._pipeline = OrderedChunkWriter(
            self._write_chunk,
            workers=self.config.workers,
            executor=executor if executor is not None else self.config.executor,
        )

    def _write_chunk(self, chunk_id: int, payload: bytes):
        if self.format_version >= 2:
            self._chunk_digests[chunk_id] = chunk_digest(payload)
        return self.container.write_chunk(chunk_id, payload)

    # -- context manager ------------------------------------------------------------------
    def __enter__(self) -> "AtcEncoder":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is None:
            self.close()
        else:
            # Mark the encoder closed before dropping in-flight chunks: a
            # later close() must not write an INFO stream that references
            # chunk files the cancel threw away.
            self._closed = True
            self._pipeline.cancel()

    # -- encoding --------------------------------------------------------------------------
    def code(self, value: int) -> None:
        """Feed one 64-bit value (the paper's ``atc_code``)."""
        if self._closed:
            raise CodecError("cannot code values after the encoder was closed")
        self._buffer[self._buffered] = value
        self._buffered += 1
        self._total += 1
        if self._buffered >= self._flush_threshold:
            self._flush_buffer()

    def code_many(self, values) -> None:
        """Feed many values at once (bulk variant of :meth:`code`).

        Full intervals are encoded directly from views of the input array
        (no per-interval copies); only the partial head and tail go through
        the preallocated interval buffer.
        """
        if self._closed:
            raise CodecError("cannot code values after the encoder was closed")
        array = as_address_array(values)
        size = int(array.size)
        self._total += size
        threshold = self._flush_threshold
        offset = 0
        if self._buffered:
            # Top up the partially filled buffer first.
            take = min(threshold - self._buffered, size)
            self._buffer[self._buffered : self._buffered + take] = array[:take]
            self._buffered += take
            offset = take
            if self._buffered >= threshold:
                self._flush_buffer()
        while size - offset >= threshold:
            self._encode_interval(array[offset : offset + threshold])
            offset += threshold
        tail = size - offset
        if tail:
            self._buffer[:tail] = array[offset:]
            self._buffered = tail

    def encode_stream(self, chunks) -> int:
        """Feed every chunk of an address-chunk stream to the encoder.

        ``chunks`` is any iterable of ``uint64`` arrays (the streaming
        pipeline's currency — see :mod:`repro.core.stream`).  Chunks are
        consumed lazily one at a time, so peak memory is bounded by the
        chunk size plus the encoder's interval buffer, never the trace
        length.  The resulting container is byte-identical to calling
        :meth:`code_many` on the concatenated chunks (and therefore to the
        fully in-memory path), for every chunking.

        Returns the number of addresses consumed from the stream.
        """
        before = self._total
        for chunk in chunks:
            self.code_many(chunk)
        return self._total - before

    def _flush_buffer(self) -> None:
        if not self._buffered:
            return
        interval = self._buffer[: self._buffered]
        self._encode_interval(interval)
        self._buffered = 0

    def _encode_interval(self, interval: np.ndarray) -> None:
        """Classify one interval and queue its chunk payload, if any.

        ``interval`` may be a view of the reusable buffer or of caller
        memory; when compression is deferred to the thread pool the interval
        is copied first, so the view can be reused immediately.
        """
        if self.mode == MODE_LOSSY:
            record, needs_payload = self._interval_encoder.plan_interval(interval)
            self._records.append(record)
            if not needs_payload:
                return
            chunk_id = record.chunk_id
        else:
            chunk_id = len(self._records)
            self._records.append(
                IntervalRecord(kind="chunk", chunk_id=chunk_id, length=int(interval.size))
            )
        if not self._pipeline.decouples_at_submit(interval.nbytes):
            # Thread pools (and sub-threshold process submissions) hold a
            # reference to the caller's memory past submit; the serial path
            # and large shared-memory exports are decoupled synchronously,
            # so only the paths that need an owned copy pay for one.
            interval = np.array(interval, dtype=np.uint64, copy=True)
        # Submitted as (fn, array) rather than a closure so the process
        # executor can pickle the codec's bound method and park the interval
        # array in shared memory.
        self._pipeline.submit(chunk_id, self._chunk_codec.compress, interval)

    def close(self) -> None:
        """Flush the pending interval, drain the pipeline, write INFO."""
        if self._closed:
            return
        self._flush_buffer()
        self._pipeline.close()
        metadata = {
            "format": "atc",
            "format_version": self.format_version,
            "mode": "lossy" if self.mode == MODE_LOSSY else "lossless",
            "backend": self.container.backend.name,
            "original_length": self._total,
            "interval_length": self.config.interval_length,
            "threshold": self.config.threshold,
            "chunk_buffer_addresses": self.config.chunk_buffer_addresses,
            "enable_translation": bool(self.config.enable_translation),
            "num_chunks": len(self.container.chunk_ids()),
        }
        if self.format_version >= 2:
            metadata["chunk_digests"] = {
                str(chunk_id): digest for chunk_id, digest in sorted(self._chunk_digests.items())
            }
        self.container.write_info(metadata, self._records)
        self._closed = True

    # -- diagnostics ---------------------------------------------------------------------
    @property
    def addresses_coded(self) -> int:
        """Number of values fed to the encoder so far."""
        return self._total


#: Per-process memo of (container handle, codec) pairs for chunk loading.
#: A process worker receives a freshly unpickled :class:`_ChunkLoader` per
#: task, so instance-level caching would rebuild the container every call;
#: this module-level cache (one per worker interpreter) makes the rebuild
#: once-per-worker.  Bounded so a long-lived worker touching many
#: containers cannot grow it without limit.
_CHUNK_LOADER_STATE: "OrderedDict[tuple, tuple]" = OrderedDict()
_CHUNK_LOADER_STATE_MAX = 8


def _chunk_loader_state(directory: str, backend: str, suffix, buffer_addresses: int) -> tuple:
    key = (directory, backend, suffix, buffer_addresses)
    state = _CHUNK_LOADER_STATE.get(key)
    if state is None:
        state = (
            AtcContainer(directory, backend=backend, suffix=suffix),
            LosslessCodec(buffer_addresses=buffer_addresses, backend=backend),
        )
        _CHUNK_LOADER_STATE[key] = state
        while len(_CHUNK_LOADER_STATE) > _CHUNK_LOADER_STATE_MAX:
            _CHUNK_LOADER_STATE.popitem(last=False)
    else:
        _CHUNK_LOADER_STATE.move_to_end(key)
    return state


def _load_verified_chunk(
    container: AtcContainer,
    codec: LosslessCodec,
    chunk_id: int,
    expected_digest: Optional[str],
) -> np.ndarray:
    """Read, digest-check and decompress one chunk.

    The single funnel for every decode path (LRU cache, prefetch, bulk
    ``read_all``, process workers): the raw bytes are checked against the
    recorded digest first, and a chunk that then still fails to decompress
    is reported as :class:`~repro.errors.IntegrityError` naming the file
    and chunk rather than leaking a codec exception.
    """
    payload = container.read_chunk(chunk_id, expected_digest=expected_digest)
    try:
        return codec.decompress(payload)
    except CodecError as exc:
        target = container.path / f"{chunk_id + 1}.{container.suffix}"
        raise IntegrityError(
            f"{target}: chunk {chunk_id + 1} is corrupt: {exc}",
            path=target,
            chunk_id=chunk_id,
        ) from exc


class _ChunkLoader:
    """Picklable read+verify+decompress task for one container's chunks.

    The decoder's prefetch fan-out ships this tiny object (directory,
    back-end name, suffix, bytesort buffer size, chunk-digest table)
    to its executor instead of the decoder itself; in a process worker the
    container handle and codec are memoised per interpreter
    (:func:`_chunk_loader_state`), and the decoded ``uint64`` arrays travel
    back through shared memory.  Digest verification rides along, so the
    parallel prefetch path checks exactly what the serial path checks.
    """

    def __init__(
        self,
        directory,
        backend: str,
        suffix: Optional[str],
        buffer_addresses: int,
        digests: Optional[Dict[int, str]] = None,
    ) -> None:
        self.directory = str(directory)
        self.backend = backend
        self.suffix = suffix
        self.buffer_addresses = int(buffer_addresses)
        self.digests = dict(digests) if digests else {}

    def __call__(self, chunk_id: int) -> np.ndarray:
        """Read, verify and decompress one chunk (pure; safe in any worker)."""
        container, codec = _chunk_loader_state(
            self.directory, self.backend, self.suffix, self.buffer_addresses
        )
        return _load_verified_chunk(container, codec, chunk_id, self.digests.get(chunk_id))


class AtcDecoder:
    """Decoder for ATC container directories (lossy or lossless).

    Args:
        directory: Container directory to read.
        backend: Byte-level back-end override (detected from the container
            when omitted).
        suffix: Chunk-file suffix override (detected when omitted).
        workers: Number of chunks prefetched (read + decompressed)
            concurrently while iterating; ``1`` is fully serial, ``0``/
            ``None`` means one worker per CPU.  The decoded output never
            depends on the worker count.
        cache_chunks: Capacity of the decoded-chunk LRU cache.  Lossy
            containers reference the same chunk from many imitation
            records, so a small bounded cache replaces re-decoding without
            the unbounded memory growth a plain dict would have.
        executor: Execution strategy for the prefetch/bulk-decode fan-out —
            a name or a live :class:`~repro.core.executors.Executor`;
            ``None`` falls back to ``REPRO_EXECUTOR``/auto.  The decoded
            output never depends on the strategy.
    """

    #: Default capacity of the decoded-chunk LRU cache.
    DEFAULT_CACHE_CHUNKS = 16

    def __init__(
        self,
        directory,
        backend: Optional[str] = None,
        suffix: Optional[str] = None,
        workers: int = 1,
        cache_chunks: int = DEFAULT_CACHE_CHUNKS,
        executor=None,
    ) -> None:
        # The chunk-file suffix names the back-end on disk (INFO.bz2,
        # INFO.zlib, ...), so an unspecified back-end is detected from it.
        detected_suffix = AtcContainer.detect_suffix(directory) if suffix is None else suffix
        probe = AtcContainer(
            directory, backend=backend or detected_suffix or "bz2", suffix=detected_suffix
        )
        metadata, records = probe.read_info()
        stored_backend = metadata.get("backend", "bz2")
        if backend is None and stored_backend != probe.backend.name:
            probe = AtcContainer(directory, backend=stored_backend, suffix=detected_suffix)
            metadata, records = probe.read_info()
        self.container = probe
        self.metadata = metadata
        self.records = records
        self._chunk_codec = LosslessCodec(
            buffer_addresses=int(metadata.get("chunk_buffer_addresses", 1_000_000)),
            backend=self.container.backend,
        )
        self._chunk_digests = parse_chunk_digests(metadata)
        self._workers = resolve_workers(workers)
        self._executor_spec = executor
        self._loader = _ChunkLoader(
            self.container.path,
            self.container.backend.name,
            self.container.suffix,
            int(metadata.get("chunk_buffer_addresses", 1_000_000)),
            digests=self._chunk_digests,
        )
        if cache_chunks < 1:
            raise ConfigurationError("cache_chunks must be >= 1")
        # The prefetch lookahead must fit in the cache, or a prefetched
        # chunk could be evicted before its interval is reached.
        self._lookahead = 2 * self._workers
        self._cache_capacity = max(int(cache_chunks), self._lookahead)
        self._chunk_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    # -- decoding ---------------------------------------------------------------------------
    def _load_chunk(self, chunk_id: int) -> np.ndarray:
        """Read, verify and decompress one chunk (pure; safe off-thread)."""
        return _load_verified_chunk(
            self.container, self._chunk_codec, chunk_id, self._chunk_digests.get(chunk_id)
        )

    def _store_chunk(self, chunk_id: int, decoded: np.ndarray) -> None:
        cache = self._chunk_cache
        cache[chunk_id] = decoded
        cache.move_to_end(chunk_id)
        while len(cache) > self._cache_capacity:
            cache.popitem(last=False)

    def _chunk_addresses(self, chunk_id: int) -> np.ndarray:
        cache = self._chunk_cache
        if chunk_id in cache:
            cache.move_to_end(chunk_id)
            return cache[chunk_id]
        decoded = self._load_chunk(chunk_id)
        self._store_chunk(chunk_id, decoded)
        return decoded

    def _interval_piece(self, record: IntervalRecord, source: np.ndarray) -> np.ndarray:
        return materialize_interval(record, source)

    def _prefetch_wanted(self) -> bool:
        """True when iteration should prefetch chunks on an executor.

        ``executor_kind`` consults ``REPRO_EXECUTOR`` for a ``None`` spec,
        so the environment knob enables prefetch here exactly like it does
        at every other fan-out site.
        """
        if len(self.records) <= 1:
            return False
        if self._workers > 1:
            return True
        from repro.core.parallel import executor_kind

        return executor_kind(self._executor_spec) in ("thread", "process")

    def _load_task(self, engine: "Executor"):
        """The chunk-load callable to ship to ``engine``.

        Thread and serial engines reuse this decoder's container handle and
        codec directly; the process engine gets the slim picklable
        :class:`_ChunkLoader` instead (the decoder itself holds an
        unbounded cache and open state that must not cross the pipe).
        """
        return self._loader if engine.name == "process" else self._load_chunk

    def iter_intervals(self) -> Iterator[np.ndarray]:
        """Yield the decoded address array of every interval, in order.

        With ``workers > 1`` (or a parallel ``executor``) the chunks of
        upcoming intervals are prefetched — read and decompressed — on the
        selected executor while earlier intervals are being consumed; the
        yielded sequence is identical to the serial one.
        """
        if self._prefetch_wanted():
            yield from self._iter_intervals_prefetch()
            return
        for record in self.records:
            yield self._interval_piece(record, self._chunk_addresses(record.chunk_id))

    def _iter_intervals_prefetch(self) -> Iterator[np.ndarray]:
        with executor_scope(self._executor_spec, self._workers) as engine:
            load = self._load_task(engine)
            handles = {}
            try:
                for index, record in enumerate(self.records):
                    for upcoming in self.records[index : index + self._lookahead]:
                        chunk_id = upcoming.chunk_id
                        if chunk_id not in handles and chunk_id not in self._chunk_cache:
                            handles[chunk_id] = engine.submit(load, chunk_id)
                    handle = handles.pop(record.chunk_id, None)
                    if handle is not None:
                        self._store_chunk(record.chunk_id, handle.result())
                    yield self._interval_piece(record, self._chunk_addresses(record.chunk_id))
            finally:
                for handle in handles.values():
                    handle.cancel()

    def iter_chunks(self, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[np.ndarray]:
        """Yield the decoded trace as fixed-size address chunks, in order.

        A bounded-memory re-chunking of :meth:`iter_intervals`: every chunk
        except possibly the last has exactly ``chunk_addresses`` addresses,
        and the concatenated chunks are byte-identical to :meth:`read_all`
        (for a lossy container, the approximate decoded trace) without ever
        materialising the whole trace.  Peak memory is bounded by the chunk
        size plus one decoded interval.

        Like :meth:`read_all`, the stream is checked against the INFO
        metadata: a container that decodes to a different number of
        addresses than it records raises :class:`CodecError` at
        exhaustion rather than ending a short stream silently.
        """
        from repro.core.stream import rechunk
        from repro.traces.trace import check_chunk_addresses

        chunk_addresses = check_chunk_addresses(chunk_addresses)

        def checked() -> Iterator[np.ndarray]:
            produced = 0
            for chunk in rechunk(self.iter_intervals(), chunk_addresses):
                produced += int(chunk.size)
                yield chunk
            expected = int(self.metadata.get("original_length", produced))
            if produced != expected:
                raise CodecError(
                    f"container decodes to {produced} addresses but INFO records {expected}"
                )

        return checked()

    def _read_all_pieces(self) -> List[np.ndarray]:
        """Bulk decode path: load (read + decompress) every referenced chunk
        exactly once, pipelined per chunk on the thread pool when
        ``workers > 1``, then replay the interval trace against the decoded
        chunks."""
        needed = list(dict.fromkeys(record.chunk_id for record in self.records))
        decoded = {
            chunk_id: self._chunk_cache[chunk_id]
            for chunk_id in needed
            if chunk_id in self._chunk_cache
        }
        missing = [chunk_id for chunk_id in needed if chunk_id not in decoded]
        if missing:
            with executor_scope(self._executor_spec, self._workers) as engine:
                loaded = engine.map_ordered(self._load_task(engine), missing)
            decoded.update(zip(missing, loaded))
        return [self._interval_piece(record, decoded[record.chunk_id]) for record in self.records]

    def __iter__(self) -> Iterator[int]:
        """Iterate over individual decoded values (the paper's ``atc_decode`` loop)."""
        for interval in self.iter_intervals():
            for value in interval.tolist():
                yield value

    def read_all(self) -> np.ndarray:
        """Decode the whole container into one address array.

        Every referenced chunk is loaded exactly once (in parallel with
        ``workers > 1``), bypassing the bounded LRU cache: ``read_all``
        materialises the whole trace anyway, so holding each decoded chunk
        for the duration of the call costs no extra asymptotic memory and
        avoids re-decoding when a container references more chunks than the
        cache holds.
        """
        intervals = self._read_all_pieces() if len(self.records) > 1 else list(self.iter_intervals())
        if not intervals:
            return np.empty(0, dtype=np.uint64)
        result = np.concatenate(intervals)
        expected = int(self.metadata.get("original_length", result.size))
        if int(result.size) != expected:
            raise CodecError(
                f"container decodes to {result.size} addresses but INFO records {expected}"
            )
        return result

    # -- diagnostics ---------------------------------------------------------------------
    @property
    def is_lossy(self) -> bool:
        """True when the container was written in lossy mode."""
        return self.metadata.get("mode") == "lossy"

    @property
    def format_version(self) -> int:
        """Container format version (1 = unchecked, 2 = digest-protected)."""
        return int(self.metadata.get("format_version", 1))

    @property
    def chunk_digests(self) -> Dict[int, str]:
        """Recorded per-chunk digests (empty for a v1 container)."""
        return dict(self._chunk_digests)

    def compressed_bytes(self) -> int:
        """Total on-disk size of the container."""
        return self.container.total_bytes()

    def bits_per_address(self) -> float:
        """On-disk bits per original address."""
        count = int(self.metadata.get("original_length", 0))
        if count == 0:
            return 0.0
        return 8.0 * self.compressed_bytes() / count


def atc_open(
    directory,
    mode: str,
    config: Optional[LossyConfig] = None,
    suffix: Optional[str] = None,
    workers: int = 1,
    executor=None,
) -> Union[AtcEncoder, AtcDecoder]:
    """Open an ATC container, mirroring the paper's ``atc_open`` entry point.

    Args:
        directory: Container directory.
        mode: ``"k"`` (lossy compression), ``"c"`` (lossless compression) or
            ``"d"`` (decompression).
        config: Codec configuration for the compression modes (its
            ``workers`` field controls encoder parallelism).
        suffix: Chunk file suffix override.
        workers: Chunk-prefetch parallelism for decode mode.
        executor: Execution strategy (name or instance) for either mode's
            fan-out; ``None`` = config / environment default.
    """
    if mode == MODE_DECODE:
        return AtcDecoder(directory, suffix=suffix, workers=workers, executor=executor)
    if mode in (MODE_LOSSY, MODE_LOSSLESS):
        return AtcEncoder(directory, mode=mode, config=config, suffix=suffix, executor=executor)
    raise ConfigurationError(f"atc_open mode must be 'k', 'c' or 'd', got {mode!r}")


def compress_trace(
    addresses,
    directory,
    mode: str = MODE_LOSSY,
    config: Optional[LossyConfig] = None,
) -> AtcDecoder:
    """Compress a whole trace to a container directory and return a decoder.

    Returning the decoder gives immediate access to the on-disk size and the
    decoded (possibly approximate) trace, which is what the benchmark
    harness needs after each compression run.

    Example:
        >>> import numpy as np, tempfile, os
        >>> trace = np.arange(5000, dtype=np.uint64) % 600
        >>> directory = os.path.join(tempfile.mkdtemp(), "container")
        >>> config = LossyConfig(interval_length=1000, chunk_buffer_addresses=1000)
        >>> decoder = compress_trace(trace, directory, mode="c", config=config)
        >>> bool(np.array_equal(decoder.read_all(), trace))      # "c" is lossless
        True
        >>> bool(np.array_equal(decompress_trace(directory), trace))
        True
    """
    values = addresses.addresses if isinstance(addresses, AddressTrace) else as_address_array(addresses)
    config = config if config is not None else LossyConfig()
    with AtcEncoder(directory, mode=mode, config=config) as encoder:
        encoder.code_many(values)
    return AtcDecoder(directory, workers=config.workers, executor=config.executor)


def decompress_trace(directory, workers: int = 1, executor=None) -> np.ndarray:
    """Decode an ATC container directory into an address array."""
    return AtcDecoder(directory, workers=workers, executor=executor).read_all()


def compress_stream(
    chunks,
    directory,
    mode: str = MODE_LOSSY,
    config: Optional[LossyConfig] = None,
) -> AtcDecoder:
    """Compress an address-chunk stream to a container and return a decoder.

    The streaming counterpart of :func:`compress_trace`: ``chunks`` is any
    iterable of ``uint64`` arrays, consumed one chunk at a time, so the
    whole trace is never materialised.  The container is byte-identical to
    ``compress_trace(concatenated_chunks, ...)`` for every chunking.
    """
    config = config if config is not None else LossyConfig()
    with AtcEncoder(directory, mode=mode, config=config) as encoder:
        encoder.encode_stream(chunks)
    return AtcDecoder(directory, workers=config.workers, executor=config.executor)


def decompress_stream(
    directory, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES, workers: int = 1, executor=None
) -> Iterator[np.ndarray]:
    """Decode an ATC container as a bounded-memory address-chunk stream.

    The streaming counterpart of :func:`decompress_trace`: the concatenated
    chunks equal ``decompress_trace(directory)`` exactly, but peak memory
    is bounded by the chunk size plus one decoded interval.
    """
    return AtcDecoder(directory, workers=workers, executor=executor).iter_chunks(chunk_addresses)
