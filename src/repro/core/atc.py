"""The ATC compressor facade: streaming single-pass compression to disk.

This is the reproduction of the paper's Section 6 API.  The C original
exposes four functions — ``atc_open``, ``atc_code``, ``atc_decode`` and
``atc_close`` — where the open mode selects lossy compression (``'k'``),
lossless compression (``'c'``) or decompression (``'d'``).  Here the same
workflow is expressed with two context-manager classes plus convenience
one-shot functions:

* :class:`AtcEncoder` — feed it 64-bit values one at a time (or in bulk);
  it buffers one interval (lossy mode) or one bytesort buffer (lossless
  mode) in memory, compresses at each boundary and writes chunk files and
  the INFO stream into a container directory.
* :class:`AtcDecoder` — iterate over the decoded values of a container, or
  read them all at once.
* :func:`atc_open` — literal translation of the paper's entry point for
  users who want the C-flavoured API.
* :func:`compress_trace` / :func:`decompress_trace` — one-shot helpers used
  by the benchmark harness and the CLI.

Lossless mode reuses the same container layout: every bytesort buffer
becomes its own chunk and the interval trace contains only "chunk" records,
so a lossless container is simply a lossy container that never imitates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.core.container import AtcContainer
from repro.core.histograms import apply_translation
from repro.core.intervals import IntervalRecord
from repro.core.lossless import LosslessCodec
from repro.core.lossy import LossyConfig, LossyIntervalEncoder
from repro.errors import CodecError, ConfigurationError
from repro.traces.trace import AddressTrace, as_address_array

__all__ = [
    "MODE_LOSSY",
    "MODE_LOSSLESS",
    "MODE_DECODE",
    "AtcEncoder",
    "AtcDecoder",
    "atc_open",
    "compress_trace",
    "decompress_trace",
]

#: Paper's ``atc_open`` mode characters.
MODE_LOSSY = "k"
MODE_LOSSLESS = "c"
MODE_DECODE = "d"


class AtcEncoder:
    """Streaming single-pass ATC compressor writing a container directory.

    Args:
        directory: Container directory to create.
        mode: ``"k"`` for lossy compression, ``"c"`` for lossless.
        config: Lossy configuration (interval length, threshold, back-end).
            In lossless mode only ``chunk_buffer_addresses`` and ``backend``
            are used (each bytesort buffer becomes a chunk).
        suffix: Chunk file suffix; defaults to the back-end name.
    """

    def __init__(
        self,
        directory,
        mode: str = MODE_LOSSY,
        config: Optional[LossyConfig] = None,
        suffix: Optional[str] = None,
    ) -> None:
        if mode not in (MODE_LOSSY, MODE_LOSSLESS):
            raise ConfigurationError(f"encoder mode must be 'k' or 'c', got {mode!r}")
        self.mode = mode
        self.config = config if config is not None else LossyConfig()
        self.container = AtcContainer(
            directory, backend=self.config.backend, suffix=suffix, create=True
        )
        self._records: List[IntervalRecord] = []
        self._buffer: List[int] = []
        self._total = 0
        self._closed = False
        if mode == MODE_LOSSY:
            self._interval_encoder = LossyIntervalEncoder(self.config)
            self._flush_threshold = self.config.interval_length
        else:
            self._interval_encoder = None
            self._lossless_codec = LosslessCodec(
                buffer_addresses=self.config.chunk_buffer_addresses, backend=self.config.backend
            )
            self._flush_threshold = self.config.chunk_buffer_addresses

    # -- context manager ------------------------------------------------------------------
    def __enter__(self) -> "AtcEncoder":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is None:
            self.close()

    # -- encoding --------------------------------------------------------------------------
    def code(self, value: int) -> None:
        """Feed one 64-bit value (the paper's ``atc_code``)."""
        if self._closed:
            raise CodecError("cannot code values after the encoder was closed")
        self._buffer.append(int(value))
        self._total += 1
        if len(self._buffer) >= self._flush_threshold:
            self._flush_buffer()

    def code_many(self, values) -> None:
        """Feed many values at once (bulk variant of :meth:`code`)."""
        if self._closed:
            raise CodecError("cannot code values after the encoder was closed")
        array = as_address_array(values)
        self._total += int(array.size)
        pending = self._buffer
        pending.extend(array.tolist())
        while len(pending) >= self._flush_threshold:
            self._buffer = pending[: self._flush_threshold]
            self._flush_buffer()
            pending = pending[self._flush_threshold :]
        self._buffer = pending

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        interval = np.array(self._buffer, dtype=np.uint64)
        self._buffer = []
        if self.mode == MODE_LOSSY:
            record, payload = self._interval_encoder.encode_interval(interval)
            if payload is not None:
                self.container.write_chunk(record.chunk_id, payload)
        else:
            chunk_id = len(self._records)
            payload = self._lossless_codec.compress(interval)
            self.container.write_chunk(chunk_id, payload)
            record = IntervalRecord(kind="chunk", chunk_id=chunk_id, length=int(interval.size))
        self._records.append(record)

    def close(self) -> None:
        """Flush the pending interval and write the INFO stream."""
        if self._closed:
            return
        self._flush_buffer()
        metadata = {
            "format": "atc",
            "format_version": 1,
            "mode": "lossy" if self.mode == MODE_LOSSY else "lossless",
            "backend": self.container.backend.name,
            "original_length": self._total,
            "interval_length": self.config.interval_length,
            "threshold": self.config.threshold,
            "chunk_buffer_addresses": self.config.chunk_buffer_addresses,
            "enable_translation": bool(self.config.enable_translation),
            "num_chunks": len(self.container.chunk_ids()),
        }
        self.container.write_info(metadata, self._records)
        self._closed = True

    # -- diagnostics ---------------------------------------------------------------------
    @property
    def addresses_coded(self) -> int:
        """Number of values fed to the encoder so far."""
        return self._total


class AtcDecoder:
    """Decoder for ATC container directories (lossy or lossless)."""

    def __init__(self, directory, backend: Optional[str] = None, suffix: Optional[str] = None) -> None:
        # The chunk-file suffix names the back-end on disk (INFO.bz2,
        # INFO.zlib, ...), so an unspecified back-end is detected from it.
        detected_suffix = AtcContainer.detect_suffix(directory) if suffix is None else suffix
        probe = AtcContainer(
            directory, backend=backend or detected_suffix or "bz2", suffix=detected_suffix
        )
        metadata, records = probe.read_info()
        stored_backend = metadata.get("backend", "bz2")
        if backend is None and stored_backend != probe.backend.name:
            probe = AtcContainer(directory, backend=stored_backend, suffix=detected_suffix)
            metadata, records = probe.read_info()
        self.container = probe
        self.metadata = metadata
        self.records = records
        self._chunk_codec = LosslessCodec(
            buffer_addresses=int(metadata.get("chunk_buffer_addresses", 1_000_000)),
            backend=self.container.backend,
        )
        self._chunk_cache = {}

    # -- decoding ---------------------------------------------------------------------------
    def _chunk_addresses(self, chunk_id: int) -> np.ndarray:
        if chunk_id not in self._chunk_cache:
            payload = self.container.read_chunk(chunk_id)
            self._chunk_cache[chunk_id] = self._chunk_codec.decompress(payload)
        return self._chunk_cache[chunk_id]

    def iter_intervals(self) -> Iterator[np.ndarray]:
        """Yield the decoded address array of every interval, in order."""
        for record in self.records:
            source = self._chunk_addresses(record.chunk_id)
            if record.length > source.size:
                raise CodecError(
                    f"interval of length {record.length} references a chunk with only "
                    f"{source.size} addresses"
                )
            piece = source[: record.length]
            if record.kind == "imitate":
                piece = apply_translation(piece, record.translations, record.active_bytes)
            yield piece

    def __iter__(self) -> Iterator[int]:
        """Iterate over individual decoded values (the paper's ``atc_decode`` loop)."""
        for interval in self.iter_intervals():
            for value in interval.tolist():
                yield value

    def read_all(self) -> np.ndarray:
        """Decode the whole container into one address array."""
        intervals = list(self.iter_intervals())
        if not intervals:
            return np.empty(0, dtype=np.uint64)
        result = np.concatenate(intervals)
        expected = int(self.metadata.get("original_length", result.size))
        if int(result.size) != expected:
            raise CodecError(
                f"container decodes to {result.size} addresses but INFO records {expected}"
            )
        return result

    # -- diagnostics ---------------------------------------------------------------------
    @property
    def is_lossy(self) -> bool:
        """True when the container was written in lossy mode."""
        return self.metadata.get("mode") == "lossy"

    def compressed_bytes(self) -> int:
        """Total on-disk size of the container."""
        return self.container.total_bytes()

    def bits_per_address(self) -> float:
        """On-disk bits per original address."""
        count = int(self.metadata.get("original_length", 0))
        if count == 0:
            return 0.0
        return 8.0 * self.compressed_bytes() / count


def atc_open(
    directory,
    mode: str,
    config: Optional[LossyConfig] = None,
    suffix: Optional[str] = None,
) -> Union[AtcEncoder, AtcDecoder]:
    """Open an ATC container, mirroring the paper's ``atc_open`` entry point.

    Args:
        directory: Container directory.
        mode: ``"k"`` (lossy compression), ``"c"`` (lossless compression) or
            ``"d"`` (decompression).
        config: Codec configuration for the compression modes.
        suffix: Chunk file suffix override.
    """
    if mode == MODE_DECODE:
        return AtcDecoder(directory, suffix=suffix)
    if mode in (MODE_LOSSY, MODE_LOSSLESS):
        return AtcEncoder(directory, mode=mode, config=config, suffix=suffix)
    raise ConfigurationError(f"atc_open mode must be 'k', 'c' or 'd', got {mode!r}")


def compress_trace(
    addresses,
    directory,
    mode: str = MODE_LOSSY,
    config: Optional[LossyConfig] = None,
) -> AtcDecoder:
    """Compress a whole trace to a container directory and return a decoder.

    Returning the decoder gives immediate access to the on-disk size and the
    decoded (possibly approximate) trace, which is what the benchmark
    harness needs after each compression run.
    """
    values = addresses.addresses if isinstance(addresses, AddressTrace) else as_address_array(addresses)
    with AtcEncoder(directory, mode=mode, config=config) as encoder:
        encoder.code_many(values)
    return AtcDecoder(directory)


def decompress_trace(directory) -> np.ndarray:
    """Decode an ATC container directory into an address array."""
    return AtcDecoder(directory).read_all()
