"""Interval bookkeeping for the lossy compression scheme (Section 5.2).

The online lossy scheme keeps a *histogram table* in memory: "Each time we
create a chunk, we record an entry for it in a histogram table in memory,
where we store the histograms for that chunk.  When the table is full, we
evict the entry belonging to the oldest chunk."  :class:`ChunkTable`
implements that FIFO-bounded table plus the nearest-chunk search used to
decide whether a new interval is stored as a chunk or imitated.

The interval descriptors that make up the compressed "interval trace" are
modelled by :class:`IntervalRecord`: an interval is either a reference to a
stored chunk (the chunk *is* the interval, compressed losslessly) or an
imitation of a chunk together with the byte translations needed to remap the
chunk's addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.histograms import IntervalSummary, apply_translation, interval_distance
from repro.errors import CodecError, ConfigurationError

__all__ = ["ChunkMatch", "ChunkTable", "IntervalRecord", "materialize_interval"]


def materialize_interval(record: "IntervalRecord", source: np.ndarray) -> np.ndarray:
    """Regenerate one interval from its (decoded) source chunk.

    This is the single replay step shared by the streaming decoder and the
    in-memory lossy codec: truncate the chunk to the interval length and,
    for imitation records, apply the stored byte translations.
    """
    if record.length > source.size:
        raise CodecError(
            f"interval of length {record.length} references a chunk with only "
            f"{source.size} addresses"
        )
    piece = source[: record.length]
    if record.kind == "imitate":
        piece = apply_translation(piece, record.translations, record.active_bytes)
    return piece


@dataclass(frozen=True)
class ChunkMatch:
    """Result of a nearest-chunk lookup."""

    chunk_id: int
    distance: float


class ChunkTable:
    """FIFO-bounded table of chunk interval summaries.

    Args:
        max_entries: Maximum number of chunk summaries kept in memory; when
            the table is full the oldest chunk's entry is evicted (the chunk
            itself stays on disk, it just can no longer be matched against).
            ``None`` means unbounded.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, IntervalSummary]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._entries

    @property
    def chunk_ids(self) -> Tuple[int, ...]:
        """Chunk ids currently resident, oldest first."""
        return tuple(self._entries)

    def add(self, chunk_id: int, summary: IntervalSummary) -> None:
        """Record the summary of a newly created chunk, evicting the oldest."""
        if chunk_id in self._entries:
            raise CodecError(f"chunk {chunk_id} is already in the table")
        self._entries[chunk_id] = summary
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get(self, chunk_id: int) -> IntervalSummary:
        """Return the stored summary of ``chunk_id``."""
        try:
            return self._entries[chunk_id]
        except KeyError:
            raise CodecError(f"chunk {chunk_id} is not in the table") from None

    def best_match(self, summary: IntervalSummary) -> Optional[ChunkMatch]:
        """Find the resident chunk with the smallest distance to ``summary``.

        Returns ``None`` when the table is empty.  When several chunks tie,
        the oldest one wins (deterministic, matches the insertion scan order
        of the paper's single-pass algorithm).
        """
        best: Optional[ChunkMatch] = None
        for chunk_id, chunk_summary in self._entries.items():
            distance = interval_distance(chunk_summary, summary)
            if best is None or distance < best.distance:
                best = ChunkMatch(chunk_id=chunk_id, distance=distance)
        return best


@dataclass(frozen=True)
class IntervalRecord:
    """One entry of the compressed interval trace.

    Attributes:
        kind: ``"chunk"`` when the interval was stored losslessly as a new
            chunk; ``"imitate"`` when it is regenerated from a stored chunk.
        chunk_id: The chunk that holds (or imitates) this interval.
        length: Number of addresses in the interval (the last interval of a
            trace may be shorter than the nominal interval length).
        active_bytes: For imitation records, the per-byte-order flags saying
            which byte orders are translated; ``None`` for chunk records.
        translations: For imitation records, the ``(8, 256)`` byte
            translation table; ``None`` for chunk records.
        distance: The interval distance to the imitated chunk (0 for chunk
            records); kept for diagnostics and reporting.
    """

    kind: str
    chunk_id: int
    length: int
    active_bytes: Optional[np.ndarray] = None
    translations: Optional[np.ndarray] = None
    distance: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("chunk", "imitate"):
            raise CodecError(f"invalid interval record kind {self.kind!r}")
        if self.length < 0:
            raise CodecError("interval length cannot be negative")
        if self.kind == "imitate":
            if self.translations is None or self.active_bytes is None:
                raise CodecError("imitation records need translations and an active mask")

    @property
    def is_chunk(self) -> bool:
        """True when the interval is stored as its own chunk."""
        return self.kind == "chunk"
