"""Array-native cache-simulation kernels: one stack engine for LRU and FIFO.

The cache filter is the pipeline's dominant stage — every reference the
paper compresses first passes through the L1 simulation — and the serial
simulators pay one Python iteration per reference.  This module replaces
that with a *set-parallel stack kernel* that executes whole batches as
NumPy array operations:

1. **Sort by set.**  Accesses to different cache sets never interact, so
   the batch is stably sorted by a caller-supplied *row* index (one row
   per ``(cache lane, set)`` pair; independent caches — e.g. the filter's
   L1I and L1D — fuse into one row space and simulate in a single call).
2. **Collapse repeat runs.**  A reference equal to the immediately
   preceding reference of the same row is a guaranteed depth-1 hit under
   both LRU and FIFO and leaves the replacement state untouched, so
   consecutive duplicates (the bulk of instruction streams) are resolved
   without simulating them.
3. **March rows in lock-step.**  The surviving references are packed into
   a column-major ``(rows, time)`` matrix, rows ordered by reference count
   so the rows still active at step ``t`` always form a leading prefix.
   One allocation-free vector step per set-local time index then advances
   *every* set's recency stack at once: an equality scan against the
   ``(rows, ways)`` stack matrix yields the per-row match depth, and a
   masked shift performs the LRU move-to-front (or FIFO fill) for all rows
   simultaneously.  Python cost is one iteration per *time step*, not per
   reference.
4. **Replay outliers.**  A row so much longer than the mean that it would
   stretch the matrix (or a degenerate single-set geometry, where no
   padding sentinel exists) is replayed exactly with per-reference list
   operations instead — the kernel's built-in semantics oracle.  Both
   paths are bit-identical to the serial simulators by construction and by
   the equivalence suite in ``tests/cache/test_kernels.py``.

Because a reference hits an ``A``-way LRU set iff its per-set stack
distance is at most ``A`` (Mattson's inclusion property), the same pass
yields the hit mask for any associativity, the exact capped stack-distance
of every reference (one pass gives the whole miss-ratio curve, consumed by
:class:`repro.cache.stackdist.LruStackSimulator`), and the miss streams
the cache filter and hierarchy emit.  Callers carry the returned per-row
stacks into the next batch, which is what makes chunked streaming
byte-identical to one-shot simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KernelBatchResult", "simulate_batch", "simulate_batch_sharded"]

#: Batches shorter than this run unsharded even when a parallel executor
#: is offered: below it the pool submission and shared-memory transport
#: cost more than the simulation they spread out.
SHARD_MIN_REFS = 8192

#: Rows with fewer references than this never take the replay path.
REPLAY_MIN_ROW_REFS = 64

#: The lock-step march pays a fixed cost per time step, so it stays ahead
#: of per-reference replay only while at least this many rows are still
#: active; rows longer than the ``MARCH_MIN_ACTIVE_ROWS``-th largest row
#: would march nearly alone through their tail and are replayed instead.
MARCH_MIN_ACTIVE_ROWS = 13

#: Hard cap on the march's time axis relative to the mean row length (it
#: bounds the padded step matrix's memory even when many rows are long).
REPLAY_SKEW_FACTOR = 8


@dataclass
class KernelBatchResult:
    """Outcome of one :func:`simulate_batch` call.

    Attributes:
        hits: Boolean hit mask, aligned with the input references.
        depths: Per-reference LRU stack depth (1-based), ``0`` when the
            block was beyond the tracked ``ways`` (a cold or deep miss).
            ``None`` unless depths were requested (LRU only).
        final_stacks: Per-touched-row replacement state after the batch:
            ``row id -> [(block, last_index), ...]`` ordered most recently
            used (LRU) / most recently filled (FIFO) first, trimmed to the
            row's associativity.  ``last_index`` is the position in the
            input batch of the reference that set the block's stamp (the
            last touch for LRU, the last fill for FIFO), or ``-1`` when
            the block survives from the initial state untouched (its old
            stamp still stands).  When stamp tracking is disabled every
            ``last_index`` is ``-1``.
    """

    hits: np.ndarray
    depths: Optional[np.ndarray]
    final_stacks: Dict[int, List[Tuple[int, int]]]


def _replay_row(
    row_blocks: np.ndarray,
    base: int,
    width: int,
    row_ways: int,
    policy: str,
    initial: Sequence[int],
    hits_out: np.ndarray,
    depths_out: Optional[np.ndarray],
    track_stamps: bool,
    last_touch: np.ndarray,
) -> List[Tuple[int, int]]:
    """Exact replay of one skewed row (the kernel's serial oracle).

    Operates on the collapsed reference array of a single row, mutating
    the ``hits_out`` / ``depths_out`` slices in place and returning the
    row's final ``(block, stamp_index)`` stack, newest first, with stamp
    indices already converted to input-batch positions via ``last_touch``.

    Three regimes, fastest applicable first:

    * a row whose distinct blocks all fit in its associativity (and that
      starts cold) can never evict, so only first occurrences miss — hit
      mask, stamps and final order come from :func:`numpy.unique` with no
      per-reference work at all (this is the tight-loop instruction-stream
      shape that routes rows here in the first place);
    * when depths are not required, a dict in recency/fill order replays
      with O(1) membership per reference;
    * otherwise a list replay reports the exact per-reference stack depth.
    """
    is_lru = policy == "lru"
    if depths_out is None and not initial:
        distinct, first_seen = np.unique(row_blocks, return_index=True)
        if int(distinct.size) <= row_ways:
            hits_out[:] = True
            hits_out[first_seen] = False
            if is_lru:
                reversed_first = np.unique(row_blocks[::-1], return_index=True)[1]
                stamp_at = int(row_blocks.size) - 1 - reversed_first
            else:
                stamp_at = first_seen
            newest_first = np.argsort(stamp_at, kind="stable")[::-1]
            return [
                (
                    int(distinct[i]),
                    int(last_touch[base + int(stamp_at[i])]) if track_stamps else -1,
                )
                for i in newest_first.tolist()
            ]
    if depths_out is None:
        # dict in stack order (oldest entry first); values are compressed
        # stamp indices, -1 while a seeded block remains untouched
        entries: Dict[int, int] = {block: -1 for block in reversed(list(initial))}
        for offset, block in enumerate(row_blocks.tolist()):
            if block in entries:
                hits_out[offset] = True
                if is_lru:
                    del entries[block]
                    entries[block] = base + offset
            else:
                hits_out[offset] = False
                entries[block] = base + offset
                if len(entries) > width:
                    del entries[next(iter(entries))]
        final = list(entries.items())[::-1][:row_ways]
        return [
            (block, int(last_touch[ci]) if track_stamps and ci >= 0 else -1)
            for block, ci in final
        ]
    # depth-reporting regime: only LRU ever needs depths (simulate_batch
    # rejects want_depths and per-row associativities for FIFO up front)
    assert is_lru, "depth replay is LRU-only by construction"
    stack = list(initial)
    last: Dict[int, int] = {}
    for offset, block in enumerate(row_blocks.tolist()):
        try:
            position = stack.index(block)
        except ValueError:
            position = -1
        if position >= 0:
            depth = position + 1
            del stack[position]
        else:
            depth = 0
        stack.insert(0, block)
        if len(stack) > width:
            stack.pop()
        hits_out[offset] = 0 < depth <= row_ways
        depths_out[offset] = depth
        if track_stamps:
            last[block] = base + offset
    return [
        (block, int(last_touch[last[block]]) if block in last else -1)
        for block in stack[:row_ways]
    ]


def simulate_batch(
    blocks: np.ndarray,
    rows: np.ndarray,
    set_mask: int,
    ways: Union[int, np.ndarray],
    policy: str = "lru",
    initial_stacks: Optional[Mapping[int, Sequence[int]]] = None,
    want_depths: bool = False,
    track_stamps: bool = True,
) -> KernelBatchResult:
    """Simulate one batch of references against per-row recency stacks.

    Args:
        blocks: ``uint64`` block addresses, in access order.
        rows: Row index per reference (``lane * num_sets + set``); all
            references of a row must share their set bits
            (``block & set_mask``), which is what makes a padding sentinel
            constructible.
        set_mask: The per-lane set-index mask (``num_sets - 1``).
        ways: Associativity — a scalar, or an integer array indexed by row
            id when fused lanes have different associativities (LRU only;
            FIFO has no inclusion property, so mixed widths would change
            its semantics).
        policy: ``"lru"`` or ``"fifo"``.
        initial_stacks: Replacement state carried in from earlier batches:
            ``row id -> blocks`` ordered most recently used (LRU) / most
            recently filled (FIFO) first.  Only rows present in this batch
            are consulted.
        want_depths: Also return per-reference stack depths (LRU only).
        track_stamps: Record the batch index behind each surviving
            block's stamp (disable when the caller does not keep stamps,
            e.g. the stack-distance simulator — it trims three array
            operations from every step).

    Returns:
        A :class:`KernelBatchResult`; see its attributes for layout.

    Example:
        >>> import numpy as np
        >>> blocks = np.array([8, 9, 8, 17, 9], dtype=np.uint64)
        >>> result = simulate_batch(blocks, (blocks & np.uint64(7)).astype(np.int64),
        ...                         set_mask=7, ways=2)
        >>> result.hits.tolist()            # 8 and 9 hit on reuse, 17 is cold
        [False, False, True, False, True]
        >>> sorted(result.final_stacks)     # sets 0 and 1 were touched
        [0, 1]
    """
    if policy not in ("lru", "fifo"):
        raise ConfigurationError(f"kernel supports lru/fifo policies, got {policy!r}")
    blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
    rows = np.ascontiguousarray(rows, dtype=np.int32)
    if blocks.shape != rows.shape or blocks.ndim != 1:
        raise ConfigurationError("blocks and rows must be 1-D arrays of equal length")
    if rows.size and int(rows.max()) < np.iinfo(np.int16).max:
        # NumPy's stable sort is a radix sort for 16-bit integers (an
        # order of magnitude faster than the 32-bit merge sort), and any
        # cache-filter row space fits easily
        rows = rows.astype(np.int16)
    count = int(blocks.size)
    uniform_ways = not isinstance(ways, np.ndarray)
    if policy == "fifo" and not uniform_ways:
        raise ConfigurationError("per-row associativities require LRU (Mattson inclusion)")
    if want_depths and policy != "lru":
        raise ConfigurationError("stack depths are only defined for LRU")
    initial_stacks = initial_stacks or {}
    if count == 0:
        return KernelBatchResult(np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64) if want_depths else None, {})

    order = np.argsort(rows, kind="stable")
    sorted_blocks = blocks[order]
    sorted_rows = rows[order]
    new_row = np.empty(count, dtype=bool)
    new_row[0] = True
    np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=new_row[1:])
    bounds = np.flatnonzero(new_row)
    row_ids = sorted_rows[bounds]
    groups = int(bounds.size)

    if uniform_ways:
        width = int(ways)
        ways_of_group = np.full(groups, width, dtype=np.int64)
    else:
        ways_of_group = ways[row_ids].astype(np.int64)
        width = int(ways_of_group.max())
    if width < 1:
        raise ConfigurationError(f"ways must be >= 1, got {width}")
    need_depths = want_depths or not uniform_ways

    # -- collapse consecutive duplicate references (guaranteed depth-1 hits)
    dup = np.zeros(count, dtype=bool)
    dup[1:] = ~new_row[1:] & (sorted_blocks[1:] == sorted_blocks[:-1])
    keep = np.flatnonzero(~dup)
    collapsed = int(keep.size)
    cblocks = sorted_blocks[keep]
    run_last = np.empty(collapsed, dtype=np.int64)
    run_last[:-1] = keep[1:] - 1
    run_last[-1] = count - 1
    # original-batch index behind each collapsed run's stamp: LRU stamps
    # record the run's *last* touch, FIFO stamps the fill itself (hits
    # inside the run never update a FIFO stamp)
    last_touch = order[run_last] if policy == "lru" else order[keep]
    cbounds = np.flatnonzero(new_row[keep])
    ccounts = np.diff(np.append(cbounds, collapsed))

    hits_c = np.zeros(collapsed, dtype=bool)
    depths_c = np.zeros(collapsed, dtype=np.int64) if need_depths else None
    final_stacks: Dict[int, List[Tuple[int, int]]] = {}

    # -- route rows: rows that would march nearly alone through their tail
    #    (or a maskless single-set geometry, where no sentinel value
    #    exists) take the exact replay instead
    if groups >= MARCH_MIN_ACTIVE_ROWS:
        tail_depth = int(np.partition(ccounts, -MARCH_MIN_ACTIVE_ROWS)[-MARCH_MIN_ACTIVE_ROWS])
    else:
        tail_depth = 0
    mean = max(1, collapsed // groups)
    limit = max(REPLAY_MIN_ROW_REFS, min(tail_depth, REPLAY_SKEW_FACTOR * mean))
    heavy = ccounts > limit
    if set_mask == 0:
        heavy = np.ones(groups, dtype=bool)
    for g in np.flatnonzero(heavy).tolist():
        start = int(cbounds[g])
        stop = start + int(ccounts[g])
        rid = int(row_ids[g])
        final_stacks[rid] = _replay_row(
            cblocks[start:stop],
            start,
            width,
            int(ways_of_group[g]),
            policy,
            initial_stacks.get(rid, ()),
            hits_c[start:stop],
            depths_c[start:stop] if depths_c is not None else None,
            track_stamps,
            last_touch,
        )

    light = np.flatnonzero(~heavy)
    if light.size:
        _march_light_rows(
            light,
            cbounds,
            ccounts,
            cblocks,
            row_ids,
            set_mask,
            width,
            ways_of_group,
            policy,
            initial_stacks,
            need_depths,
            track_stamps,
            hits_c,
            depths_c,
            final_stacks,
            last_touch,
        )

    hits_sorted = np.empty(count, dtype=bool)
    hits_sorted[keep] = hits_c
    hits_sorted[dup] = True
    hits = np.empty(count, dtype=bool)
    hits[order] = hits_sorted
    depths = None
    if need_depths:
        depths_sorted = np.empty(count, dtype=np.int64)
        depths_sorted[keep] = depths_c
        depths_sorted[dup] = 1
        depths = np.empty(count, dtype=np.int64)
        depths[order] = depths_sorted
    if not uniform_ways:
        # mixed associativities: the march records depths against the
        # widest stack; each reference hits iff it is within its own row's
        # associativity (Mattson inclusion)
        per_ref_ways = ways[rows]
        hits = (depths >= 1) & (depths <= per_ref_ways)
    return KernelBatchResult(hits, depths if want_depths else None, final_stacks)


def _simulate_shard(
    blocks: np.ndarray,
    rows: np.ndarray,
    set_mask: int,
    ways,
    policy: str,
    initial_items,
    want_depths: bool,
    track_stamps: bool,
):
    """Picklable per-shard cell: one :func:`simulate_batch` on a row subset.

    Runs in an executor worker (the process executor ships the block and
    row arrays through shared memory).  The result is returned as a plain
    ``(hits, depths, final_stack_items)`` tuple so the bulk hit/depth
    arrays ride shared memory back while the small per-row stacks travel
    the pickle pipe.  Stamp indices in the returned stacks are positions
    within *this shard's* sub-batch; the caller remaps them.
    """
    result = simulate_batch(
        blocks,
        rows,
        set_mask,
        ways,
        policy,
        dict(initial_items) if initial_items else None,
        want_depths,
        track_stamps,
    )
    return result.hits, result.depths, list(result.final_stacks.items())


def simulate_batch_sharded(
    blocks: np.ndarray,
    rows: np.ndarray,
    set_mask: int,
    ways: Union[int, np.ndarray],
    policy: str = "lru",
    initial_stacks: Optional[Mapping[int, Sequence[int]]] = None,
    want_depths: bool = False,
    track_stamps: bool = True,
    workers: Optional[int] = 1,
    executor=None,
) -> KernelBatchResult:
    """:func:`simulate_batch`, sharded across executor workers by row.

    Rows (``(lane, set)`` pairs) never interact, so the batch partitions
    cleanly: references are routed to ``workers`` shards by ``row %
    shards``, each shard simulates its row subset with an ordinary
    :func:`simulate_batch` call (on the process executor the sub-arrays
    move through the shared-memory transport), and the per-shard hit
    masks, depths and final stacks are scattered back into batch order.
    Because every row's reference subsequence is preserved and rows are
    disjoint across shards, the result is *bit-identical* to the
    unsharded call — the NumPy single-process kernel stays the oracle.

    Falls back to the plain kernel whenever sharding cannot pay for
    itself: a serial executor, a single worker, or a batch shorter than
    ``SHARD_MIN_REFS``.

    Args:
        blocks: ``uint64`` block addresses, in access order.
        rows: Row index per reference (see :func:`simulate_batch`).
        set_mask: The per-lane set-index mask.
        ways: Associativity (scalar, or per-row array for fused lanes).
        policy: ``"lru"`` or ``"fifo"``.
        initial_stacks: Replacement state carried in from earlier batches.
        want_depths: Also return per-reference stack depths (LRU only).
        track_stamps: Record batch indices behind surviving stamps.
        workers: Shard count (``0``/``None`` = one per CPU) when an
            executor is created here.
        executor: Strategy name, live :class:`~repro.core.executors.Executor`
            to borrow, or ``None`` for the environment/auto default.

    Example:
        >>> import numpy as np
        >>> blocks = np.arange(64, dtype=np.uint64)
        >>> rows = (blocks & np.uint64(7)).astype(np.int64)
        >>> sharded = simulate_batch_sharded(blocks, rows, 7, 2, executor="serial")
        >>> plain = simulate_batch(blocks, rows, 7, 2)
        >>> bool(np.array_equal(sharded.hits, plain.hits))
        True
    """
    from repro.core.executors import executor_scope

    blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
    row_ids = np.ascontiguousarray(rows, dtype=np.int64)
    count = int(blocks.size)
    with executor_scope(executor, workers) as engine:
        shards = int(engine.workers) if engine.is_async else 1
        if shards > 1 and count >= SHARD_MIN_REFS:
            shards = min(shards, max(1, count // (SHARD_MIN_REFS // 2)))
        if shards <= 1 or count < SHARD_MIN_REFS:
            return simulate_batch(
                blocks, rows, set_mask, ways, policy, initial_stacks, want_depths, track_stamps
            )
        initial_stacks = initial_stacks or {}
        shard_of = row_ids % shards
        pending = []
        for shard in range(shards):
            positions = np.flatnonzero(shard_of == shard)
            if positions.size == 0:
                continue
            seeds = [
                (rid, tuple(stack))
                for rid, stack in initial_stacks.items()
                if rid % shards == shard
            ]
            handle = engine.submit(
                _simulate_shard,
                blocks[positions],
                row_ids[positions],
                set_mask,
                ways,
                policy,
                seeds,
                want_depths,
                track_stamps,
            )
            pending.append((positions, handle))
        hits = np.empty(count, dtype=bool)
        depths = np.empty(count, dtype=np.int64) if want_depths else None
        final_stacks: Dict[int, List[Tuple[int, int]]] = {}
        for positions, handle in pending:
            shard_hits, shard_depths, stack_items = handle.result()
            hits[positions] = shard_hits
            if depths is not None:
                depths[positions] = shard_depths
            # remap shard-local stamp indices to input-batch positions
            for rid, stack in stack_items:
                final_stacks[rid] = [
                    (block, int(positions[last]) if last >= 0 else -1)
                    for block, last in stack
                ]
        return KernelBatchResult(hits, depths, final_stacks)


def _march_light_rows(
    light: np.ndarray,
    cbounds: np.ndarray,
    ccounts: np.ndarray,
    cblocks: np.ndarray,
    row_ids: np.ndarray,
    set_mask: int,
    width: int,
    ways_of_group: np.ndarray,
    policy: str,
    initial_stacks: Mapping[int, Sequence[int]],
    need_depths: bool,
    track_stamps: bool,
    hits_c: np.ndarray,
    depths_c: Optional[np.ndarray],
    final_stacks: Dict[int, List[Tuple[int, int]]],
    last_touch: np.ndarray,
) -> None:
    """Lock-step march of the non-skewed rows (the vectorised fast path).

    Packs the selected rows into a column-major reference matrix ordered
    by row length and advances every row's stack with one bounded set of
    array operations per time step.  Results land in the caller's
    collapsed-order output arrays; final stacks (with collapsed stamp
    indices) are merged into ``final_stacks``.
    """
    counts = ccounts[light]
    by_length = np.argsort(-counts, kind="stable")
    marched = light[by_length]
    starts = cbounds[marched]
    counts = counts[by_length]
    rows_m = int(marched.size)
    steps = int(counts[0])

    # per-row sentinel: differs from every block of the row in its set bits
    sentinel = (cblocks[starts] & np.uint64(set_mask)) ^ np.uint64(1)
    matrix = np.empty((rows_m, steps), dtype=np.uint64, order="F")
    matrix[:] = sentinel[:, None]
    rank = np.full(int(row_ids.size), -1, dtype=np.int64)
    rank[marched] = np.arange(rows_m)
    group_of = np.repeat(np.arange(int(row_ids.size)), ccounts)
    in_march = rank[group_of] >= 0
    flat_rows = rank[group_of][in_march]
    flat_cols = (np.arange(int(cblocks.size)) - cbounds[group_of])[in_march]
    matrix[flat_rows, flat_cols] = cblocks[in_march]

    stack = np.empty((rows_m, width), dtype=np.uint64)
    stack[:] = sentinel[:, None]
    for g in marched.tolist():
        rid = int(row_ids[g])
        seed = initial_stacks.get(rid)
        if seed:
            r = int(rank[g])
            seed = list(seed)[:width]
            stack[r, : len(seed)] = np.array(seed, dtype=np.uint64)

    miss_mat = np.zeros((rows_m, steps), dtype=bool, order="F")
    depth_mat = np.zeros((rows_m, steps), dtype=np.int64, order="F") if need_depths else None
    active = np.searchsorted(-counts, -np.arange(1, steps + 1), side="right")
    scan = np.empty((rows_m, width), dtype=bool)
    shift = np.empty((rows_m, width - 1), dtype=np.uint64) if width > 1 else None
    is_lru = policy == "lru"
    # the active-row count only ever shrinks, so the time axis splits into
    # segments of constant row count; hoisting every view out of the inner
    # loop leaves ~5 array operations per step
    segment_ends = np.append(np.flatnonzero(active[1:] != active[:-1]), steps - 1)
    segment_start = 0
    for segment_end in segment_ends.tolist():
        a = int(active[segment_start])
        mat_a = matrix[:a]
        st = stack[:a]
        ne = scan[:a]
        ne_head = ne[:, :-1]
        miss = ne[:, -1]
        st_tail = st[:, 1:]
        st_head = st[:, :-1]
        shift_a = shift[:a] if width > 1 else None
        miss_a = miss_mat[:a]
        depth_a = depth_mat[:a] if depth_mat is not None else None
        for t in range(segment_start, segment_end + 1):
            current = mat_a[:, t]
            np.not_equal(st, current[:, None], out=ne)
            # prefix-AND: True while the block has not yet matched, so
            # column k-1 says "match is at depth > k" — the shift condition
            np.logical_and.accumulate(ne, axis=1, out=ne)
            if depth_a is not None:
                np.sum(ne, axis=1, out=depth_a[:, t])
            if is_lru:
                if width > 1:
                    np.copyto(shift_a, st_head)
                    np.copyto(st_tail, shift_a, where=ne_head)
                st[:, 0] = current
            else:
                if width > 1:
                    np.copyto(shift_a, st_head)
                    np.copyto(st_tail, shift_a, where=miss[:, None])
                np.copyto(st[:, 0], current, where=miss)
            miss_a[:, t] = miss
        segment_start = segment_end + 1

    flat_hits = ~miss_mat[flat_rows, flat_cols]
    hits_c[in_march] = flat_hits
    if depths_c is not None:
        # the march recorded the 0-based match position (or ``width`` when
        # absent); 1-based depth with 0 marking "deeper than tracked"
        raw = depth_mat[flat_rows, flat_cols] + 1
        raw[raw > width] = 0
        depths_c[in_march] = raw
    if track_stamps:
        # recover each surviving block's stamp source after the fact: its
        # last matching column in the reference matrix (for FIFO, its last
        # *missing* column — hits never update a FIFO stamp).  One
        # (rows, ways, time) tensor pass replaces per-step stamp shifting.
        reversed_matrix = matrix[:, ::-1]
        matches = stack[:, :, None] == reversed_matrix[:, None, :]
        if not is_lru:
            matches &= miss_mat[:, ::-1][:, None, :]
        reversed_col = matches.argmax(axis=2)
        touched = np.take_along_axis(matches, reversed_col[:, :, None], axis=2)[:, :, 0]
        compressed_idx = starts[:, None] + (steps - 1 - reversed_col)
        # convert compressed indices to input-batch stamp positions in one
        # vectorised gather (run continuations carry the stamp for LRU);
        # untouched slots hold garbage indices into the padding region, so
        # clip before gathering and mask after
        np.clip(compressed_idx, 0, int(last_touch.size) - 1, out=compressed_idx)
        last_idx = np.where(touched, last_touch[compressed_idx], -1)
    else:
        last_idx = np.full((rows_m, width), -1, dtype=np.int64)
    occupancy = (stack != sentinel[:, None]).sum(axis=1)
    for g in marched.tolist():
        r = int(rank[g])
        rid = int(row_ids[g])
        depth = min(int(occupancy[r]), int(ways_of_group[g]))
        final_stacks[rid] = list(
            zip(stack[r, :depth].tolist(), last_idx[r, :depth].tolist())
        )
