"""Digest helpers for the ATC format-v2 integrity layer.

Format v2 (see ``docs/atc-format.md``) protects a container end to end
with two kinds of digest, both derived from SHA-256 (the stdlib has no
CRC32C and the repository adds no dependencies):

* a **chunk digest** — the first 16 hex characters (64 bits) of the
  SHA-256 of a chunk file's raw on-disk bytes, recorded per chunk in the
  INFO metadata under ``"chunk_digests"``;
* a **footer digest** — the full 32-byte SHA-256 of the uncompressed INFO
  body, appended to the body before compression, protecting the metadata
  (and therefore the chunk-digest table) itself.

64 truncated bits make an undetected random corruption a ~2**-64 event
while keeping the metadata small; the footer is kept full-width because
one 32-byte field per container is free.

The same truncated digest doubles as the self-check embedded in
:class:`~repro.experiments.store.ResultStore` entries and the service's
:class:`~repro.service.cache.ContainerCache` index
(:func:`json_digest`), so every storage layer shares one notion of
"these bytes are what was written".
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

from repro.errors import IntegrityError

__all__ = [
    "CHUNK_DIGEST_HEX",
    "ENTRY_DIGEST_KEY",
    "FOOTER_BYTES",
    "chunk_digest",
    "footer_digest",
    "json_digest",
    "parse_chunk_digests",
    "verify_chunk_payload",
]

#: Hex characters kept of a chunk's SHA-256 (64 bits).
CHUNK_DIGEST_HEX = 16

#: Size of the format-v2 INFO footer digest (full SHA-256).
FOOTER_BYTES = 32

#: Key under which a JSON store entry (``ResultStore``, the service cache
#: index) embeds the digest of the rest of itself.
ENTRY_DIGEST_KEY = "entry_digest"


def chunk_digest(payload: bytes) -> str:
    """Truncated SHA-256 of raw chunk-file bytes, as lowercase hex."""
    return hashlib.sha256(payload).hexdigest()[:CHUNK_DIGEST_HEX]


def footer_digest(body: bytes) -> bytes:
    """Full 32-byte SHA-256 appended to a v2 INFO body before compression."""
    return hashlib.sha256(body).digest()


def json_digest(mapping: Mapping) -> str:
    """Truncated SHA-256 of a JSON object's canonical encoding.

    Canonical means ``json.dumps`` with sorted keys and no whitespace —
    the same bytes regardless of insertion order — so a digest stored
    inside the object (after removal) verifies the rest of it.
    """
    canonical = json.dumps(mapping, sort_keys=True, separators=(",", ":"))
    return chunk_digest(canonical.encode("utf-8"))


def parse_chunk_digests(metadata: Mapping) -> Dict[int, str]:
    """Extract the ``chunk_digests`` table from INFO metadata.

    Returns ``{}`` for v1 containers (no table).  A malformed table — the
    wrong type, non-integer keys — raises :class:`IntegrityError` rather
    than silently disabling verification.
    """
    raw = metadata.get("chunk_digests")
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise IntegrityError("chunk_digests metadata is not a table")
    digests: Dict[int, str] = {}
    for key, value in raw.items():
        try:
            chunk_id = int(key)
        except (TypeError, ValueError):
            raise IntegrityError(f"chunk_digests has a non-integer chunk id {key!r}") from None
        if not isinstance(value, str):
            raise IntegrityError(f"chunk_digests entry for chunk {key} is not a digest string")
        digests[chunk_id] = value
    return digests


def verify_chunk_payload(
    payload: bytes,
    expected: Optional[str],
    path=None,
    chunk_id: Optional[int] = None,
) -> bytes:
    """Check raw chunk bytes against their recorded digest.

    Passes the payload through when ``expected`` is ``None`` (a v1
    container records no digests); raises :class:`IntegrityError` naming
    the file and chunk on mismatch.  Verification happens on the raw
    on-disk bytes — before any decompression — so damage anywhere in the
    file, including the chunk-stream header, is caught deterministically.
    """
    if expected is None:
        return payload
    actual = chunk_digest(payload)
    if actual != expected:
        where = f"chunk {chunk_id + 1}" if chunk_id is not None else "chunk"
        name = str(path) if path is not None else where
        raise IntegrityError(
            f"{name}: {where} digest mismatch (recorded {expected}, found {actual})",
            path=path,
            chunk_id=chunk_id,
        )
    return payload
