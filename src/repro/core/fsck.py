"""Integrity scrubbing and salvage for on-disk ATC storage (``repro fsck``).

Every durable artifact this library writes can be checked and, where
possible, healed:

* **Containers** — :func:`scrub_container` verifies the INFO footer and
  every chunk digest of a format-v2 container (and attempts decompression
  for digestless v1 chunks), localising damage to chunk granularity;
  :func:`repair_container` salvages every intact chunk into a new, valid
  partial container whose metadata carries a damage report.
* **Result stores** — :func:`scrub_store` verifies the embedded
  self-digest of every ``ResultStore`` entry.
* **Cache roots** — :func:`scrub_cache_root` walks a service
  ``ContainerCache`` (an ``index/`` store plus ``containers/`` of packed
  containers) and scrubs both halves.

:func:`scrub_path` dispatches on what the path looks like, and the CLI's
``repro fsck`` subcommand is a thin formatter over these functions.
Scrubbing is strictly read-only; only an explicit repair mutates anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.backend import canonical_backend_name
from repro.core.container import AtcContainer
from repro.core.integrity import ENTRY_DIGEST_KEY, chunk_digest, parse_chunk_digests
from repro.core.lossless import LosslessCodec
from repro.errors import CodecError, ContainerError, IntegrityError, ReproError

__all__ = [
    "ChunkStatus",
    "ContainerScrub",
    "EntryStatus",
    "StoreScrub",
    "ScrubReport",
    "RepairReport",
    "scrub_container",
    "repair_container",
    "scrub_store",
    "scrub_cache_root",
    "scrub_path",
]

#: Key under which a ``ResultStore`` entry embeds its own digest
#: (re-exported from :mod:`repro.core.integrity` for callers of the
#: scrubbers that want to strip or inspect it).
STORE_DIGEST_KEY = ENTRY_DIGEST_KEY


@dataclass(frozen=True)
class ChunkStatus:
    """Verdict for one chunk file of a scrubbed container.

    ``status`` is one of ``ok``, ``digest-mismatch``, ``corrupt`` (fails to
    decompress), ``unreadable`` (I/O error) or ``missing``; ``detail``
    carries the human-readable specifics (expected/found digests, the
    codec error, ...).
    """

    chunk_id: int
    file: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ContainerScrub:
    """Result of scrubbing one container: INFO verdict + per-chunk verdicts."""

    path: str
    format_version: int = 0
    info_status: str = "ok"
    info_detail: str = ""
    chunks: List[ChunkStatus] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.info_status == "ok" and all(chunk.ok for chunk in self.chunks)

    @property
    def damaged_chunks(self) -> List[ChunkStatus]:
        return [chunk for chunk in self.chunks if not chunk.ok]

    def to_json(self) -> Dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "format_version": self.format_version,
            "info": {"status": self.info_status, "detail": self.info_detail},
            "chunks": [
                {
                    "chunk_id": chunk.chunk_id,
                    "file": chunk.file,
                    "status": chunk.status,
                    "detail": chunk.detail,
                }
                for chunk in self.chunks
            ],
        }


@dataclass(frozen=True)
class EntryStatus:
    """Verdict for one ``ResultStore`` entry (``ok``/``legacy``/``corrupt``/
    ``digest-mismatch``; legacy = a pre-integrity entry with no digest)."""

    file: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "legacy")


@dataclass
class StoreScrub:
    """Result of scrubbing a ``ResultStore`` directory."""

    path: str
    entries: List[EntryStatus] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def damaged_entries(self) -> List[EntryStatus]:
        return [entry for entry in self.entries if not entry.ok]

    def to_json(self) -> Dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "entries": [
                {"file": entry.file, "status": entry.status, "detail": entry.detail}
                for entry in self.entries
            ],
        }


@dataclass
class ScrubReport:
    """Top-level ``repro fsck`` result: what the path was, and every verdict."""

    path: str
    kind: str  # "container" | "store" | "cache"
    containers: List[ContainerScrub] = field(default_factory=list)
    stores: List[StoreScrub] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.containers) and all(s.ok for s in self.stores)

    def to_json(self) -> Dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "ok": self.ok,
            "containers": [c.to_json() for c in self.containers],
            "stores": [s.to_json() for s in self.stores],
        }


@dataclass
class RepairReport:
    """What :func:`repair_container` salvaged and what it had to drop."""

    source: str
    destination: str
    salvaged_chunks: List[int]
    dropped_chunks: List[int]
    records_kept: int
    records_dropped: int
    salvaged_addresses: int
    original_addresses: int

    def to_json(self) -> Dict:
        return {
            "source": self.source,
            "destination": self.destination,
            "salvaged_chunks": self.salvaged_chunks,
            "dropped_chunks": self.dropped_chunks,
            "records_kept": self.records_kept,
            "records_dropped": self.records_dropped,
            "salvaged_addresses": self.salvaged_addresses,
            "original_addresses": self.original_addresses,
        }


def _open_container(path: Path) -> AtcContainer:
    """Open an existing container, detecting its suffix/back-end.

    Raises :class:`ContainerError` (exit code 2 territory) when the path
    is not a container directory at all.
    """
    suffix = AtcContainer.detect_suffix(path)
    if suffix is None:
        raise ContainerError(f"{path} is not an ATC container (no INFO.<backend> stream)")
    try:
        backend = canonical_backend_name(suffix)
    except ReproError:
        backend = "bz2"
    return AtcContainer(path, backend=backend, suffix=suffix)


def scrub_container(path) -> ContainerScrub:
    """Verify one container end to end without decoding it.

    The INFO stream is read (which for v2 verifies the footer digest), then
    every chunk file is checked: against its recorded digest for v2, by
    attempted decompression for digestless v1 chunks.  Damage never raises
    — it is localised into the returned :class:`ContainerScrub` — but a
    path that is not a container at all raises :class:`ContainerError`.
    """
    path = Path(path)
    container = _open_container(path)
    scrub = ContainerScrub(path=str(path))
    try:
        metadata, records = container.read_info()
    except IntegrityError as exc:
        scrub.info_status = "corrupt"
        scrub.info_detail = str(exc)
        return scrub
    except ContainerError as exc:
        scrub.info_status = "malformed"
        scrub.info_detail = str(exc)
        return scrub
    scrub.format_version = int(metadata.get("format_version", 1))
    digests = parse_chunk_digests(metadata)
    codec = LosslessCodec(
        buffer_addresses=int(metadata.get("chunk_buffer_addresses", 1_000_000)),
        backend=container.backend,
    )
    referenced = sorted(
        {record.chunk_id for record in records}
        | set(container.chunk_ids())
        | set(digests)
    )
    for chunk_id in referenced:
        file_name = f"{chunk_id + 1}.{container.suffix}"
        target = path / file_name
        if not target.exists():
            scrub.chunks.append(ChunkStatus(chunk_id, file_name, "missing"))
            continue
        try:
            payload = target.read_bytes()
        except OSError as exc:
            scrub.chunks.append(ChunkStatus(chunk_id, file_name, "unreadable", str(exc)))
            continue
        expected = digests.get(chunk_id)
        if expected is not None:
            actual = chunk_digest(payload)
            if actual != expected:
                scrub.chunks.append(
                    ChunkStatus(
                        chunk_id,
                        file_name,
                        "digest-mismatch",
                        f"recorded {expected}, found {actual}",
                    )
                )
                continue
            scrub.chunks.append(ChunkStatus(chunk_id, file_name, "ok"))
            continue
        # v1 chunk: no digest recorded, so decompression is the only check.
        try:
            codec.decompress(payload)
        except CodecError as exc:
            scrub.chunks.append(ChunkStatus(chunk_id, file_name, "corrupt", str(exc)))
            continue
        scrub.chunks.append(ChunkStatus(chunk_id, file_name, "ok"))
    return scrub


def repair_container(source, destination) -> RepairReport:
    """Salvage every intact chunk of a damaged container into a new one.

    The destination is a *valid* partial container: all intact chunk files
    are copied verbatim, and the interval trace keeps its longest prefix of
    records whose chunks survived — so the salvaged container decodes to
    exactly the intact prefix of the original trace, byte-identically.  The
    rewritten INFO is format v2 with fresh digests, and its metadata gains
    a ``"salvage"`` damage report (readers ignore unknown keys).

    Raises :class:`IntegrityError` when the INFO stream itself is damaged
    (there is nothing to guide a salvage) and :class:`ContainerError` when
    the source is not a container.
    """
    source = Path(source)
    destination = Path(destination)
    scrub = scrub_container(source)
    if scrub.info_status != "ok":
        raise IntegrityError(
            f"{source}: INFO stream is damaged ({scrub.info_detail}); nothing can be salvaged",
            path=source,
        )
    container = _open_container(source)
    metadata, records = container.read_info()
    good = {chunk.chunk_id for chunk in scrub.chunks if chunk.ok}
    bad = sorted({chunk.chunk_id for chunk in scrub.chunks if not chunk.ok})

    kept = []
    for record in records:
        if record.chunk_id not in good:
            break
        kept.append(record)
    salvaged_addresses = sum(record.length for record in kept)

    out = AtcContainer(
        destination, backend=container.backend.name, suffix=container.suffix, create=True
    )
    digests: Dict[int, str] = {}
    for chunk_id in sorted(good):
        payload = container.read_chunk(chunk_id)
        out.write_chunk(chunk_id, payload)
        digests[chunk_id] = chunk_digest(payload)

    new_metadata = dict(metadata)
    new_metadata["format_version"] = 2
    new_metadata["original_length"] = salvaged_addresses
    new_metadata["num_chunks"] = len(digests)
    new_metadata["chunk_digests"] = {
        str(chunk_id): digest for chunk_id, digest in sorted(digests.items())
    }
    new_metadata["salvage"] = {
        "source": str(source),
        "original_length": int(metadata.get("original_length", 0)),
        "damaged_chunks": bad,
        "records_dropped": len(records) - len(kept),
    }
    out.write_info(new_metadata, kept)
    return RepairReport(
        source=str(source),
        destination=str(destination),
        salvaged_chunks=sorted(good),
        dropped_chunks=bad,
        records_kept=len(kept),
        records_dropped=len(records) - len(kept),
        salvaged_addresses=int(salvaged_addresses),
        original_addresses=int(metadata.get("original_length", 0)),
    )


def scrub_store(path) -> StoreScrub:
    """Verify every ``<sha256>.json`` entry of a ``ResultStore`` directory.

    Entries written since the integrity layer embed a self-digest
    (:data:`STORE_DIGEST_KEY`) over their canonical JSON encoding; older
    entries without one are reported as ``legacy`` (readable, unverified).
    """
    from repro.core.integrity import json_digest

    path = Path(path)
    scrub = StoreScrub(path=str(path))
    for entry in sorted(path.glob("*.json")):
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            scrub.entries.append(EntryStatus(entry.name, "corrupt", str(exc)))
            continue
        if not isinstance(payload, dict):
            scrub.entries.append(EntryStatus(entry.name, "corrupt", "entry is not an object"))
            continue
        expected = payload.pop(STORE_DIGEST_KEY, None)
        if expected is None:
            scrub.entries.append(EntryStatus(entry.name, "legacy"))
            continue
        actual = json_digest(payload)
        if actual != expected:
            scrub.entries.append(
                EntryStatus(entry.name, "digest-mismatch", f"recorded {expected}, found {actual}")
            )
            continue
        scrub.entries.append(EntryStatus(entry.name, "ok"))
    return scrub


def scrub_cache_root(path) -> ScrubReport:
    """Scrub a service ``ContainerCache`` root (``index/`` + ``containers/``)."""
    path = Path(path)
    report = ScrubReport(path=str(path), kind="cache")
    index = path / "index"
    if index.is_dir():
        report.stores.append(scrub_store(index))
    containers = path / "containers"
    if containers.is_dir():
        for entry in sorted(containers.iterdir()):
            if entry.is_dir() and AtcContainer.detect_suffix(entry) is not None:
                report.containers.append(scrub_container(entry))
    return report


def scrub_path(path) -> ScrubReport:
    """Scrub whatever ``path`` is: a container, a store, or a cache root.

    Dispatch: a directory holding an ``INFO.<backend>`` stream is a
    container; one with ``index/`` and ``containers/`` subdirectories is a
    service cache root; one holding ``<hash>.json`` entries (or nothing
    but container subdirectories) is a result store.  Anything else raises
    :class:`ContainerError`.
    """
    path = Path(path)
    if not path.is_dir():
        raise ContainerError(f"{path} is not an ATC container (not a directory)")
    if AtcContainer.detect_suffix(path) is not None:
        report = ScrubReport(path=str(path), kind="container")
        report.containers.append(scrub_container(path))
        return report
    if (path / "index").is_dir() and (path / "containers").is_dir():
        return scrub_cache_root(path)
    json_entries = any(path.glob("*.json"))
    sub_containers = [
        entry
        for entry in sorted(path.iterdir())
        if entry.is_dir() and AtcContainer.detect_suffix(entry) is not None
    ]
    if json_entries or sub_containers:
        report = ScrubReport(path=str(path), kind="store")
        if json_entries:
            report.stores.append(scrub_store(path))
        for entry in sub_containers:
            report.containers.append(scrub_container(entry))
        return report
    raise ContainerError(
        f"{path} is not an ATC container, result store or cache directory"
    )
