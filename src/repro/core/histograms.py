"""Byte histograms, sorted byte-histograms and byte translations (Section 5.1).

The lossy half of ATC summarises each interval of ``L`` consecutive 64-bit
addresses by eight *byte histograms*: ``h[j](i)`` is the number of addresses
in the interval whose byte of order ``j`` equals ``i``.  Sorting each
histogram in decreasing order (stably, so ties are broken by byte value)
yields the *sorted byte-histograms* ``h'[j]`` and the permutations ``p[j]``
such that ``h'[j](i) = h[j](p[j](i))``.

Two intervals "look like each other" when the distance

    D(A, B) = max_j  (1/L) * sum_i | h'_A[j](i) - h'_B[j](i) |

is below a threshold ``eps``.  When interval ``B`` is imitated by a stored
chunk ``A``, the byte translation ``t[j](p_A[j](i)) = p_B[j](i)`` remaps
``A``'s byte values onto ``B``'s: the most frequent byte value of order
``j`` in ``A`` becomes the most frequent byte value of order ``j`` in ``B``,
the second most frequent maps to the second most frequent, and so on.
Because each ``t[j]`` is a permutation of ``[0, 255]``, distinct addresses
of ``A`` stay distinct after translation, which preserves the temporal
structure (and in particular the number of distinct addresses — the fix for
the "myopic interval" problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.traces.trace import ADDRESS_BYTES, as_address_array

__all__ = [
    "byte_histograms",
    "sort_histograms",
    "histogram_distance",
    "sorted_histogram_distance",
    "IntervalSummary",
    "interval_distance",
    "byte_translation",
    "translation_active_mask",
    "apply_translation",
    "identity_translation",
]


def byte_histograms(addresses) -> np.ndarray:
    """Return the ``(8, 256)`` array of byte-value counts of an interval.

    Row ``j`` is the histogram of byte order ``j`` (``j = 0`` is the least
    significant byte), so ``histograms[j].sum() == len(addresses)``.
    """
    values = as_address_array(addresses)
    histograms = np.zeros((ADDRESS_BYTES, 256), dtype=np.int64)
    if values.size == 0:
        return histograms
    columns = values.view(np.uint8).reshape(values.size, ADDRESS_BYTES)
    for j in range(ADDRESS_BYTES):
        histograms[j] = np.bincount(columns[:, j], minlength=256)
    return histograms


def sort_histograms(histograms: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort each byte histogram in decreasing order.

    Returns ``(sorted_histograms, permutations)`` where
    ``sorted_histograms[j, i] == histograms[j, permutations[j, i]]`` and
    ``permutations[j]`` is the paper's ``p[j]``: byte values ordered by
    decreasing count, ties broken by increasing byte value (the stable-sort
    requirement of equation (1)).
    """
    if histograms.shape != (ADDRESS_BYTES, 256):
        raise CodecError(f"expected an (8, 256) histogram array, got {histograms.shape}")
    permutations = np.argsort(-histograms, axis=1, kind="stable").astype(np.int64)
    sorted_histograms = np.take_along_axis(histograms, permutations, axis=1)
    return sorted_histograms, permutations


def histogram_distance(histogram_a: np.ndarray, histogram_b: np.ndarray) -> float:
    """Normalised L1 distance between two byte histograms.

    The paper defines ``d(hA, hB) = (1/L) * sum |hA(i) - hB(i)|`` for two
    intervals of the same length ``L``; here each histogram is normalised by
    its own total so the definition extends to a short tail interval, and
    coincides with the paper's for equal lengths.  The result lies in
    ``[0, 2]``.
    """
    total_a = float(histogram_a.sum())
    total_b = float(histogram_b.sum())
    if total_a == 0.0 and total_b == 0.0:
        return 0.0
    normalised_a = histogram_a / total_a if total_a else np.zeros_like(histogram_a, dtype=float)
    normalised_b = histogram_b / total_b if total_b else np.zeros_like(histogram_b, dtype=float)
    return float(np.abs(normalised_a - normalised_b).sum())


def sorted_histogram_distance(sorted_a: np.ndarray, sorted_b: np.ndarray) -> float:
    """Alias of :func:`histogram_distance` for already-sorted histograms."""
    return histogram_distance(sorted_a, sorted_b)


@dataclass(frozen=True)
class IntervalSummary:
    """All the per-interval state the lossy codec keeps about an interval.

    Attributes:
        length: Number of addresses in the interval.
        histograms: ``(8, 256)`` raw byte histograms.
        sorted_histograms: ``(8, 256)`` histograms sorted in decreasing order.
        permutations: ``(8, 256)`` byte-value permutations ``p[j]``.
    """

    length: int
    histograms: np.ndarray
    sorted_histograms: np.ndarray
    permutations: np.ndarray

    @classmethod
    def from_addresses(cls, addresses) -> "IntervalSummary":
        """Summarise one interval of addresses."""
        values = as_address_array(addresses)
        histograms = byte_histograms(values)
        sorted_histograms, permutations = sort_histograms(histograms)
        return cls(
            length=int(values.size),
            histograms=histograms,
            sorted_histograms=sorted_histograms,
            permutations=permutations,
        )

    def distance(self, other: "IntervalSummary") -> float:
        """The paper's interval distance ``D`` (equation (2))."""
        return interval_distance(self, other)


def interval_distance(summary_a: IntervalSummary, summary_b: IntervalSummary) -> float:
    """``D(A, B) = max_j d(h'_A[j], h'_B[j])`` over the eight byte orders."""
    worst = 0.0
    for j in range(ADDRESS_BYTES):
        worst = max(
            worst,
            histogram_distance(summary_a.sorted_histograms[j], summary_b.sorted_histograms[j]),
        )
    return worst


def byte_translation(source: IntervalSummary, target: IntervalSummary) -> np.ndarray:
    """Byte translations ``t[j]`` mapping chunk A's bytes onto interval B's.

    ``t[j][p_A[j](i)] = p_B[j](i)``: the i-th most frequent byte value of
    order ``j`` in the source (the stored chunk) is replaced with the i-th
    most frequent byte value of order ``j`` in the target (the interval
    being imitated).  Each row is a permutation of 0..255.
    """
    translations = np.empty((ADDRESS_BYTES, 256), dtype=np.uint8)
    for j in range(ADDRESS_BYTES):
        translations[j, source.permutations[j]] = target.permutations[j]
    return translations


def identity_translation() -> np.ndarray:
    """The no-op byte translation (used when translation is disabled)."""
    return np.tile(np.arange(256, dtype=np.uint8), (ADDRESS_BYTES, 1))


def translation_active_mask(
    source: IntervalSummary, target: IntervalSummary, threshold: float
) -> np.ndarray:
    """Which byte orders actually need translating.

    The paper translates byte order ``j`` "only if the distance
    ``d(hA[j], hB[j])`` between the non-sorted histograms ... is greater
    than the threshold", which minimises distortion when a byte order
    already matches.
    """
    mask = np.zeros(ADDRESS_BYTES, dtype=bool)
    for j in range(ADDRESS_BYTES):
        mask[j] = histogram_distance(source.histograms[j], target.histograms[j]) > threshold
    return mask


def apply_translation(
    addresses, translations: np.ndarray, active: Optional[Sequence[bool]] = None
) -> np.ndarray:
    """Apply byte translations ``t[j]`` to every address of a chunk.

    Args:
        addresses: The chunk's addresses (the imitating interval ``A``).
        translations: ``(8, 256)`` byte translation table.
        active: Optional per-byte-order mask; inactive orders are untouched.

    Returns:
        The translated addresses (same length, dtype ``uint64``).
    """
    values = as_address_array(addresses)
    if values.size == 0:
        return values.copy()
    if translations.shape != (ADDRESS_BYTES, 256):
        raise CodecError(f"expected an (8, 256) translation table, got {translations.shape}")
    columns = values.view(np.uint8).reshape(values.size, ADDRESS_BYTES).copy()
    active_mask = np.ones(ADDRESS_BYTES, dtype=bool) if active is None else np.asarray(active, dtype=bool)
    if active_mask.shape != (ADDRESS_BYTES,):
        raise CodecError("active mask must have one flag per byte order")
    translation_table = translations.astype(np.uint8, copy=False)
    for j in range(ADDRESS_BYTES):
        if active_mask[j]:
            columns[:, j] = translation_table[j][columns[:, j]]
    return np.ascontiguousarray(columns).view("<u8").reshape(values.size).copy()
