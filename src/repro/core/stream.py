"""Bounded-memory chunk plumbing for the streaming trace pipeline.

The paper's whole point is that cache-filtered address traces are far too
large to hold raw; a billion-reference trace is 8 GB before compression.
Every streaming entry point in this library therefore speaks one common
currency: an *address-chunk stream*, i.e. a plain Python iterable of
contiguous ``uint64`` NumPy arrays whose concatenation is the trace.  Peak
memory of a pipeline built from chunk streams is bounded by the chunk size
(times the worker count for parallel stages), never by the trace length.

This module holds the generic plumbing shared by every stage:

* :func:`chunk_array` — slice an in-memory array into fixed-size chunk
  views (the bridge from the materialised world into the streaming one);
* :func:`rechunk` — regroup an arbitrary chunk stream into fixed-size
  chunks (the bridge between stages with different natural chunk sizes,
  e.g. decoder intervals -> fixed output chunks);
* :func:`concat_chunks` — materialise a chunk stream (the bridge back,
  used by in-memory wrappers and equivalence tests);
* :func:`count_addresses` — drain a chunk stream into a sink, returning
  the address count.

Byte-identity guarantee: all helpers preserve the concatenated address
sequence exactly — re-chunking never reorders, drops or duplicates a
value, so any pipeline stage may re-chunk freely without changing results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

import numpy as np

# repro.traces.trace is a leaf module (it imports only repro.errors), so
# this is the one core -> traces module-level import that cannot cycle; it
# also makes trace.py the single home of the pipeline's chunk-size default.
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, as_address_array, check_chunk_addresses

__all__ = [
    "DEFAULT_CHUNK_ADDRESSES",
    "check_chunk_addresses",
    "chunk_array",
    "map_chunks",
    "rechunk",
    "concat_chunks",
    "count_addresses",
    "stream_digest",
]

_U64 = np.dtype("<u8")


def _as_chunk(values) -> np.ndarray:
    """Convert one chunk to a ``uint64`` array without copying when possible."""
    return as_address_array(values)


def chunk_array(array, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[np.ndarray]:
    """Yield consecutive fixed-size views of an in-memory address array.

    The final chunk may be shorter.  Chunks are *views* (no copies), so the
    concatenation of the yielded chunks is byte-identical to ``array``.

    Example:
        >>> import numpy as np
        >>> [chunk.tolist() for chunk in chunk_array(np.arange(5, dtype=np.uint64), 2)]
        [[0, 1], [2, 3], [4]]
    """
    chunk_addresses = check_chunk_addresses(chunk_addresses)
    array = _as_chunk(array)
    for start in range(0, int(array.size), chunk_addresses):
        yield array[start : start + chunk_addresses]


def map_chunks(chunks: Iterable, transform: Callable) -> Iterator:
    """Lazily apply a (possibly stateful) per-chunk transform to a stream.

    The generic plumbing behind every chunked simulation stage: the cache
    filter and the hierarchy replay are *stateful* transforms (simulator
    state carries from one chunk to the next inside ``transform``), and
    mapping them over a chunk stream one chunk at a time is exactly what
    keeps their peak memory bounded by the chunk size.  Chunks are pulled
    only as the consumer iterates, so upstream laziness is preserved —
    this is :func:`map` under its pipeline-stage name, documented here so
    chunked stages share one idiom instead of ad-hoc generators.

    Example:
        >>> import numpy as np
        >>> doubled = map_chunks(chunk_array(np.arange(4, dtype=np.uint64), 2),
        ...                      lambda chunk: chunk * np.uint64(2))
        >>> [chunk.tolist() for chunk in doubled]
        [[0, 2], [4, 6]]
    """
    return map(transform, chunks)


def rechunk(
    chunks: Iterable[np.ndarray], chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES
) -> Iterator[np.ndarray]:
    """Regroup a chunk stream into chunks of exactly ``chunk_addresses``.

    Every yielded chunk except possibly the last has exactly
    ``chunk_addresses`` addresses; empty input chunks are absorbed.  The
    concatenated output is byte-identical to the concatenated input, and
    peak memory is bounded by ``chunk_addresses`` plus the largest input
    chunk (never by the stream length).  Yielded chunks own their memory,
    so producers are free to reuse their buffers and consumers are free to
    retain chunks across iterations.

    Example:
        >>> import numpy as np
        >>> ragged = [np.array([0, 1, 2], dtype=np.uint64), np.array([3], dtype=np.uint64)]
        >>> [chunk.tolist() for chunk in rechunk(ragged, 2)]
        [[0, 1], [2, 3]]
    """
    chunk_addresses = check_chunk_addresses(chunk_addresses)
    spill: List[np.ndarray] = []
    buffered = 0
    for chunk in chunks:
        chunk = _as_chunk(chunk)
        offset = 0
        size = int(chunk.size)
        while buffered + (size - offset) >= chunk_addresses:
            take = chunk_addresses - buffered
            spill.append(chunk[offset : offset + take])
            offset += take
            if len(spill) == 1:
                # Copy: the producer may reuse its buffer after the yield.
                yield np.array(spill[0], dtype=_U64, copy=True)
            else:
                yield np.concatenate(spill)
            spill = []
            buffered = 0
        if offset < size:
            # Copy the tail for the same reason: spilled pieces must own
            # their memory across producer iterations.
            spill.append(np.array(chunk[offset:], dtype=_U64, copy=True))
            buffered += size - offset
    if spill:
        yield spill[0] if len(spill) == 1 else np.concatenate(spill)


def concat_chunks(chunks: Iterable[np.ndarray]) -> np.ndarray:
    """Materialise a chunk stream into one contiguous address array.

    All chunks are collected before concatenating, so the producer must
    not mutate a chunk after yielding it (every chunk stream this library
    produces satisfies that: :func:`rechunk` yields owned chunks, and the
    other sources yield views of arrays that are never written again).  A
    buffer-reusing producer should be wrapped in :func:`rechunk` first.
    With a single non-empty chunk, that chunk is returned as-is (no copy).

    Example:
        >>> import numpy as np
        >>> concat_chunks(chunk_array(np.arange(5, dtype=np.uint64), 2)).tolist()
        [0, 1, 2, 3, 4]
    """
    pieces = [_as_chunk(chunk) for chunk in chunks]
    pieces = [piece for piece in pieces if piece.size]
    if not pieces:
        return np.empty(0, dtype=_U64)
    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces)


def count_addresses(
    chunks: Iterable[np.ndarray], sink: Optional[Callable[[np.ndarray], object]] = None
) -> int:
    """Drain a chunk stream, optionally passing every chunk to ``sink``.

    Returns the total number of addresses seen.  This is a convenience
    terminal stage for write-side pipelines (pass the writer as ``sink``).

    Example:
        >>> import numpy as np
        >>> count_addresses(chunk_array(np.arange(5, dtype=np.uint64), 2))
        5
    """
    total = 0
    for chunk in chunks:
        chunk = _as_chunk(chunk)
        total += int(chunk.size)
        if sink is not None:
            sink(chunk)
    return total


def stream_digest(chunks: Iterable[np.ndarray]) -> "tuple[int, str]":
    """Drain a chunk stream, returning ``(address_count, sha256_hex)``.

    The digest covers the little-endian 8-byte encoding of every address
    in order, independent of chunking (re-chunking a stream never changes
    its digest), so two decode paths can be compared for byte-identity at
    flat memory — this is how ``repro fsck`` and the chaos harness assert
    "decodes to exactly the same trace" without materialising either side.

    Example:
        >>> import numpy as np
        >>> a = stream_digest(chunk_array(np.arange(5, dtype=np.uint64), 2))
        >>> b = stream_digest(chunk_array(np.arange(5, dtype=np.uint64), 3))
        >>> a == b and a[0] == 5
        True
    """
    import hashlib

    digest = hashlib.sha256()
    total = 0
    for chunk in chunks:
        chunk = np.ascontiguousarray(_as_chunk(chunk), dtype=_U64)
        total += int(chunk.size)
        digest.update(chunk.tobytes())
    return total, digest.hexdigest()
