"""Diagnostics for lossy-compressed traces.

The compression ratio and fidelity of ATC's lossy mode depend on how often
intervals can be imitated, which chunks get reused, and how much of the
compressed size each component (chunks vs interval trace) accounts for.
This module computes those statistics from an in-memory
:class:`~repro.core.lossy.LossyCompressed` or from an on-disk container, so
users can answer "why is my trace not compressing?" without reverse
engineering the format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.atc import AtcDecoder
from repro.core.container import serialize_interval_trace
from repro.core.backend import get_backend
from repro.core.intervals import IntervalRecord
from repro.core.lossy import LossyCompressed

__all__ = ["LossyTraceReport", "analyze_lossy", "analyze_container"]


@dataclass(frozen=True)
class LossyTraceReport:
    """Summary statistics of a lossy-compressed trace.

    Attributes:
        num_intervals: Total intervals in the trace.
        num_chunks: Intervals stored losslessly as chunks.
        num_imitations: Intervals regenerated from a chunk.
        chunk_reuse_counts: How many intervals each chunk serves (including
            itself), keyed by chunk id.
        imitation_distances: Interval distance of every imitation record
            (empty when the trace was decoded from disk, where distances are
            not stored).
        translated_byte_histogram: For each byte order j, the number of
            imitation records that actually translated byte j.
        chunk_bytes: Compressed bytes spent on chunk payloads.
        interval_trace_bytes: Compressed bytes spent on the interval trace.
        original_length: Number of addresses in the original trace.
    """

    num_intervals: int
    num_chunks: int
    num_imitations: int
    chunk_reuse_counts: Dict[int, int]
    imitation_distances: List[float]
    translated_byte_histogram: List[int]
    chunk_bytes: int
    interval_trace_bytes: int
    original_length: int

    @property
    def imitation_fraction(self) -> float:
        """Fraction of intervals that were imitated rather than stored."""
        if self.num_intervals == 0:
            return 0.0
        return self.num_imitations / self.num_intervals

    @property
    def compressed_bytes(self) -> int:
        """Total compressed size (chunks + interval trace)."""
        return self.chunk_bytes + self.interval_trace_bytes

    @property
    def bits_per_address(self) -> float:
        """Compressed bits per original address."""
        if self.original_length == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / self.original_length

    @property
    def most_reused_chunk(self) -> Optional[int]:
        """Chunk id serving the most intervals (None for an empty trace)."""
        if not self.chunk_reuse_counts:
            return None
        return max(self.chunk_reuse_counts, key=self.chunk_reuse_counts.get)

    def summary_lines(self) -> List[str]:
        """Human-readable multi-line summary (used by ``atc-inspect``-style tools)."""
        lines = [
            f"intervals          : {self.num_intervals}",
            f"chunks stored      : {self.num_chunks}",
            f"imitated intervals : {self.num_imitations} ({self.imitation_fraction:.0%})",
            f"chunk bytes        : {self.chunk_bytes}",
            f"interval-trace b.  : {self.interval_trace_bytes}",
            f"bits per address   : {self.bits_per_address:.3f}",
        ]
        if self.most_reused_chunk is not None:
            lines.append(
                f"most reused chunk  : #{self.most_reused_chunk} "
                f"({self.chunk_reuse_counts[self.most_reused_chunk]} intervals)"
            )
        return lines


def _report_from_records(
    records: List[IntervalRecord],
    chunk_bytes: int,
    interval_trace_bytes: int,
    original_length: int,
) -> LossyTraceReport:
    reuse: Dict[int, int] = {}
    distances: List[float] = []
    translated = [0] * 8
    num_chunks = 0
    num_imitations = 0
    for record in records:
        reuse[record.chunk_id] = reuse.get(record.chunk_id, 0) + 1
        if record.kind == "chunk":
            num_chunks += 1
            continue
        num_imitations += 1
        distances.append(record.distance)
        active = np.asarray(record.active_bytes, dtype=bool)
        for j in range(8):
            if active[j]:
                translated[j] += 1
    return LossyTraceReport(
        num_intervals=len(records),
        num_chunks=num_chunks,
        num_imitations=num_imitations,
        chunk_reuse_counts=reuse,
        imitation_distances=distances,
        translated_byte_histogram=translated,
        chunk_bytes=chunk_bytes,
        interval_trace_bytes=interval_trace_bytes,
        original_length=original_length,
    )


def analyze_lossy(compressed: LossyCompressed) -> LossyTraceReport:
    """Build a report from an in-memory lossy compression result."""
    backend = get_backend(compressed.config.backend)
    interval_trace_bytes = len(backend.compress(serialize_interval_trace(compressed.records)))
    chunk_bytes = sum(len(chunk) for chunk in compressed.chunks)
    return _report_from_records(
        compressed.records, chunk_bytes, interval_trace_bytes, compressed.original_length
    )


def analyze_container(directory) -> LossyTraceReport:
    """Build a report from an on-disk ATC container (lossy or lossless)."""
    decoder = AtcDecoder(directory)
    chunk_bytes = sum(
        len(decoder.container.read_chunk(chunk_id)) for chunk_id in decoder.container.chunk_ids()
    )
    interval_trace_bytes = decoder.compressed_bytes() - chunk_bytes
    return _report_from_records(
        decoder.records,
        chunk_bytes,
        max(interval_trace_bytes, 0),
        int(decoder.metadata.get("original_length", 0)),
    )
