"""Optional compiled fast paths behind the NumPy kernels.

The NumPy implementations in :mod:`repro.core.bytesort` and
:mod:`repro.core.kernels` are the repository's *bit-identity oracles*:
every other execution strategy — threads, processes, and the compiled
backend selected here — must reproduce their output byte for byte (the
golden ``.atc`` fixtures pin this).  This module adds the detection layer
for an optional `numba <https://numba.pydata.org>`_ backend:

* :func:`resolve_kernel_backend` resolves the ``REPRO_KERNEL_BACKEND``
  environment variable (``auto`` | ``numpy`` | ``numba``) to the backend
  that will actually run.  ``auto`` (the default) probes for numba and
  *silently* falls back to NumPy when it is absent — installing numba is
  an optimisation, never a requirement.  Requesting ``numba`` explicitly
  on a machine without it is a configuration error.
* :func:`compiled_bytesort` returns the jitted forward/inverse bytesort
  window kernels when the resolved backend is ``numba`` (compiling them
  on first use), else ``None`` — callers keep the NumPy path as the
  fallback and the oracle.

The compiled kernels are written as plain ``nopython``-compatible Python
(:func:`_bytesort_forward` / :func:`_bytesort_backward`): an explicit
counting sort per byte position, which is exactly the stable
``argsort``/gather sequence of the NumPy path expressed as one fused
O(8·n) loop nest.  Because the functions are importable without numba,
the equivalence suite exercises the *algorithm* against the oracle even
on machines where no JIT is available.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_BACKEND_NAMES",
    "resolve_kernel_backend",
    "numba_available",
    "compiled_bytesort",
]

#: Backend names accepted by ``REPRO_KERNEL_BACKEND`` and
#: :func:`resolve_kernel_backend`.
KERNEL_BACKEND_NAMES = ("auto", "numpy", "numba")

_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Cached probe result: ``None`` until first checked, then True/False.
_NUMBA_PROBE: Optional[bool] = None

#: Cached jitted (forward, backward) pair once compiled.
_COMPILED: Optional[Tuple[Callable, Callable]] = None


def numba_available() -> bool:
    """True when the optional numba JIT can be imported on this machine.

    The probe runs once per process and is cached; the import itself is
    the only check (a numba that imports but fails to compile surfaces as
    a normal exception at first compile, not silently wrong results).
    """
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_PROBE = True
        except Exception:  # noqa: BLE001 - any import failure means "absent"
            _NUMBA_PROBE = False
    return _NUMBA_PROBE


def resolve_kernel_backend(spec: Optional[str] = None) -> str:
    """Resolve a backend request to the backend that will actually run.

    Args:
        spec: ``"auto"``, ``"numpy"``, ``"numba"`` or ``None`` to consult
            the ``REPRO_KERNEL_BACKEND`` environment variable (default
            ``auto``).

    Returns:
        ``"numpy"`` or ``"numba"``.  ``auto`` resolves to ``numba`` only
        when it is importable, falling back to ``numpy`` silently;
        requesting ``numba`` explicitly without it installed raises
        :class:`~repro.errors.ConfigurationError`.

    Example:
        >>> resolve_kernel_backend("numpy")
        'numpy'
        >>> resolve_kernel_backend("auto") in ("numpy", "numba")
        True
    """
    name = (spec or os.environ.get(_BACKEND_ENV) or "auto").strip().lower()
    if name not in KERNEL_BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; choose from {KERNEL_BACKEND_NAMES}"
        )
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise ConfigurationError(
            "REPRO_KERNEL_BACKEND=numba was requested but numba is not installed; "
            "install numba or use the 'auto'/'numpy' backends"
        )
    return name


def _bytesort_forward(columns: np.ndarray, out: np.ndarray) -> None:
    """Forward bytesort of one window, as one fused counting-sort loop nest.

    ``columns`` is the ``(count, 8)`` little-endian byte view of the
    window's ``uint64`` addresses; ``out`` receives the eight emitted byte
    blocks as rows, most significant byte block first.  The stable
    counting sort replayed per position is *definitionally* the same
    permutation as the NumPy oracle's stable ``argsort`` — the outputs
    are byte-identical.  Written nopython-style so numba can compile it
    unchanged; also runnable (slowly) as plain Python for the tests.
    """
    count = columns.shape[0]
    order = np.arange(count, dtype=np.int64)
    next_order = np.empty(count, dtype=np.int64)
    counts = np.empty(256, dtype=np.int64)
    offsets = np.empty(256, dtype=np.int64)
    for block_index in range(8):
        position = 7 - block_index
        row = out[block_index]
        for k in range(count):
            row[k] = columns[order[k], position]
        if position == 0:
            break
        for v in range(256):
            counts[v] = 0
        for k in range(count):
            counts[row[k]] += 1
        total = 0
        for v in range(256):
            offsets[v] = total
            total += counts[v]
        for k in range(count):
            value = row[k]
            next_order[offsets[value]] = order[k]
            offsets[value] += 1
        order, next_order = next_order, order


def _bytesort_backward(blocks: np.ndarray, columns: np.ndarray) -> None:
    """Inverse bytesort of one window (the forward pass replayed).

    ``blocks`` holds the eight emitted byte blocks as rows (MSB block
    first); ``columns`` receives the ``(count, 8)`` little-endian byte
    view of the reconstructed addresses.  Mirrors
    :func:`_bytesort_forward`: scatter the block back to original address
    indices through the current order, then counting-sort the block to
    reproduce the encoder's next permutation.
    """
    count = blocks.shape[1]
    order = np.arange(count, dtype=np.int64)
    next_order = np.empty(count, dtype=np.int64)
    counts = np.empty(256, dtype=np.int64)
    offsets = np.empty(256, dtype=np.int64)
    for block_index in range(8):
        position = 7 - block_index
        row = blocks[block_index]
        for k in range(count):
            columns[order[k], position] = row[k]
        if position == 0:
            break
        for v in range(256):
            counts[v] = 0
        for k in range(count):
            counts[row[k]] += 1
        total = 0
        for v in range(256):
            offsets[v] = total
            total += counts[v]
        for k in range(count):
            value = row[k]
            next_order[offsets[value]] = order[k]
            offsets[value] += 1
        order, next_order = next_order, order


def compiled_bytesort(spec: Optional[str] = None):
    """The jitted ``(forward, backward)`` bytesort kernels, or ``None``.

    Returns ``None`` whenever the resolved backend is ``numpy`` — the
    caller's NumPy path is both the fallback and the oracle.  With the
    ``numba`` backend the two loop nests are compiled once per process
    (``nopython``, ``nogil`` so threaded encoders overlap) and cached.

    Example:
        >>> compiled_bytesort("numpy") is None
        True
    """
    if resolve_kernel_backend(spec) != "numba":
        return None
    global _COMPILED
    if _COMPILED is None:
        import numba

        jit = numba.njit(cache=False, nogil=True)
        _COMPILED = (jit(_bytesort_forward), jit(_bytesort_backward))
    return _COMPILED
