"""Pluggable executor engine behind every parallel fan-out in the library.

The paper's throughput claims are multi-core claims: ATC exists so that
cache-filtered traces can be (de)compressed at hundreds of MB/s by
overlapping compression with trace generation on other cores.  A Python
thread pool only reproduces that overlap for code that releases the GIL
(the stdlib byte codecs); the numpy-light hot loops — the lossy encoder's
interval state machine, cache simulation, sweep cells — serialise on the
GIL.  This module abstracts "where work runs" behind one small interface so
every fan-out site can be switched between three strategies:

* :class:`SerialExecutor` — runs tasks inline at submission time; the
  reference behaviour every other executor must be byte-identical to.
* :class:`ThreadExecutor` — a thread pool; best for GIL-releasing work
  (bz2/zlib/lzma compression, large-array numpy kernels, file I/O).
* :class:`ProcessExecutor` — a process pool with bulk arguments and
  results moved through :mod:`multiprocessing.shared_memory`
  (:mod:`repro.core.shmem`), giving true multi-core execution for
  pure-Python hot loops at near-zero pickle cost for the bulk data.

Selection is centralised in :func:`resolve_executor`: every CLI ``--executor``
flag and the ``REPRO_EXECUTOR`` environment variable funnel through it, and
the ``auto`` default keeps single-worker paths free of any pool overhead.

Correctness contract: an executor never reorders results —
:meth:`Executor.map_ordered` and :meth:`Executor.imap_ordered` return
results in input order, and :meth:`Executor.submit` hands back per-task
handles the caller drains in its own order — so the chunk pipeline's hard
invariant (parallel output byte-identical to serial output) holds by
construction for every executor.

Failure contract: a task exception propagates to the caller unchanged; a
*crashed* worker process (killed, segfaulted, broken pipe) surfaces as one
clear :class:`~repro.errors.ParallelExecutionError` instead of the raw
``BrokenProcessPool``, and closing an executor always reaps its workers and
reclaims any shared-memory segments still in flight.
"""

from __future__ import annotations

import abc
import itertools
import os
from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError, ParallelExecutionError

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskHandle",
    "resolve_workers",
    "resolve_executor",
    "resolved_kind",
    "executor_scope",
    "executor_kind",
    "default_mp_context",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: The executor strategies selectable by name (CLI ``--executor`` and the
#: ``REPRO_EXECUTOR`` environment variable accept exactly these plus ``auto``).
EXECUTOR_NAMES = ("serial", "thread", "process")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob to a concrete positive integer.

    ``None`` and ``0`` mean "one worker per available CPU"; any positive
    integer is taken literally; negative values are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if not isinstance(workers, int) or workers < 0:
        raise ConfigurationError(f"workers must be a non-negative integer or None, got {workers!r}")
    return workers


class TaskHandle(abc.ABC):
    """A single submitted task; :meth:`result` blocks until it finishes."""

    @abc.abstractmethod
    def result(self):
        """Return the task's result, raising the task's exception if any."""

    def cancel(self) -> bool:
        """Try to prevent the task from running; True when it never will."""
        return False


class _ImmediateHandle(TaskHandle):
    """Handle of a task that already ran inline (serial executor)."""

    def __init__(self, value, error: Optional[BaseException]) -> None:
        self._value = value
        self._error = error

    def result(self):
        """Return the inline result (or re-raise the inline exception)."""
        if self._error is not None:
            raise self._error
        return self._value


class Executor(abc.ABC):
    """The engine interface every fan-out site in the library runs on.

    Implementations guarantee input-order results and full worker cleanup
    on :meth:`close`; see the module docstring for the exact contracts.
    """

    #: Strategy name ("serial", "thread" or "process").
    name: str = "abstract"

    def __init__(self, workers: int = 1) -> None:
        self.workers = resolve_workers(workers)

    #: True when submitted tasks may run after :meth:`submit` returns, in
    #: which case callers must not mutate (or reuse the buffers of)
    #: submitted arguments.  Serial execution runs tasks inline, so buffer
    #: reuse is safe there — the encoder relies on this to skip copies.
    is_async: bool = True

    def decouples_at_submit(self, nbytes: int) -> bool:
        """True when an ``nbytes`` array argument is decoupled from the
        caller's buffer before :meth:`submit` returns.

        Serial execution runs the task inline (nothing outlives submit);
        the process executor copies large payloads into shared memory
        synchronously at submission.  When this returns False the caller
        must hand over an owned copy — the encoder uses it to copy
        interval views exactly once, on exactly the paths that need it.
        """
        return not self.is_async

    @abc.abstractmethod
    def submit(self, fn: Callable[..., _R], *args) -> TaskHandle:
        """Schedule ``fn(*args)``; returns a handle to collect the result."""

    def map_ordered(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply ``fn`` to every item, returning results in input order."""
        return list(self.imap_ordered(fn, items))

    def imap_ordered(
        self, fn: Callable[[_T], _R], items: Iterable[_T], lookahead: Optional[int] = None
    ) -> Iterator[_R]:
        """Lazily yield ``fn(item)`` results in input order.

        At most ``lookahead`` tasks (default ``2 * workers``) are in flight
        ahead of the consumer, bounding memory for long streams.
        """
        window = max(1, 2 * self.workers if lookahead is None else lookahead)
        pending: Deque[TaskHandle] = deque()
        iterator = iter(items)
        try:
            for item in itertools.islice(iterator, window):
                pending.append(self.submit(fn, item))
            while pending:
                handle = pending.popleft()
                for item in itertools.islice(iterator, 1):
                    pending.append(self.submit(fn, item))
                yield handle.result()
        finally:
            for handle in pending:
                handle.cancel()

    def close(self, cancel: bool = False) -> None:
        """Shut the executor down, reaping workers.

        With ``cancel=True`` queued-but-unstarted tasks are dropped (error
        path); otherwise they are allowed to finish.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close(cancel=exc_type is not None)


class SerialExecutor(Executor):
    """Inline execution: ``submit`` runs the task before returning.

    The zero-overhead reference implementation — no pool, no queues, no
    copies — whose output every parallel executor is compared against.

    Example:
        >>> with SerialExecutor() as executor:
        ...     executor.map_ordered(lambda value: value * 2, [1, 2, 3])
        [2, 4, 6]
    """

    name = "serial"
    is_async = False

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers=1)

    def submit(self, fn: Callable[..., _R], *args) -> TaskHandle:
        """Run ``fn(*args)`` immediately; the handle replays the outcome."""
        try:
            return _ImmediateHandle(fn(*args), None)
        except Exception as error:  # noqa: BLE001 - replayed by result()
            return _ImmediateHandle(None, error)

    def map_ordered(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Plain list comprehension (exceptions propagate eagerly)."""
        return [fn(item) for item in items]


class _FutureHandle(TaskHandle):
    """Handle wrapping a ``concurrent.futures.Future`` (thread executor)."""

    def __init__(self, future) -> None:
        self._future = future

    def result(self):
        """Block for and return the future's result."""
        return self._future.result()

    def cancel(self) -> bool:
        """Forward to ``Future.cancel``."""
        return self._future.cancel()


class ThreadExecutor(Executor):
    """Thread-pool execution for GIL-releasing work.

    The stdlib byte codecs (``bz2``, ``zlib``, ``lzma``) and large-array
    numpy kernels release the GIL, so a small thread pool overlaps chunk
    compression with trace consumption exactly like the paper's external
    ``bzip2 -c`` process overlaps with the tracer — with zero serialisation
    cost, because threads share the address space.
    """

    name = "thread"

    def __init__(self, workers: int = 2) -> None:
        from concurrent.futures import ThreadPoolExecutor

        super().__init__(workers)
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def submit(self, fn: Callable[..., _R], *args) -> TaskHandle:
        """Schedule ``fn(*args)`` on the pool."""
        if self._pool is None:
            raise ConfigurationError("cannot submit tasks to a closed executor")
        return _FutureHandle(self._pool.submit(fn, *args))

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down; with ``cancel=True`` drop unstarted tasks."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None


def default_mp_context() -> str:
    """The start method the process executor uses on this platform.

    ``forkserver`` where available (Linux): workers fork from a clean
    single-threaded server process, so pools are cheap to start *and* safe
    to create from a threaded parent (plain ``fork`` in a multi-threaded
    process is deprecated from Python 3.12); ``spawn`` everywhere else.
    The ``REPRO_MP_CONTEXT`` environment variable overrides the choice.
    """
    import multiprocessing

    override = os.environ.get("REPRO_MP_CONTEXT")
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ConfigurationError(
                f"REPRO_MP_CONTEXT={override!r} is not available here (choices: {methods})"
            )
        return override
    return "forkserver" if "forkserver" in methods else "spawn"


def _process_invoke(fn: Callable[..., _R], packed_args):
    """Worker-side trampoline: unpack shm arguments, run, pack the result.

    Runs in the worker process.  Arguments are copied out of their segments
    without unlinking (the parent owns argument segments); the result's
    bulk payloads are parked in fresh segments the parent will consume and
    unlink.
    """
    from repro.core import shmem

    args = shmem.import_value(packed_args, unlink=False)
    result = fn(*args)
    segments: list = []
    try:
        packed = shmem.export_value(result, segments)
    except BaseException:
        shmem.release_segments(segments)
        raise
    for segment in segments:
        segment.close()  # drop the worker's mapping; the data stays until unlinked
    return packed


class _ProcessHandle(TaskHandle):
    """Handle of a process task: owns the argument segments, unpacks results.

    Exactly-once consumption: the first :meth:`result` (or the executor's
    close-time sweep) imports the packed result and unlinks the worker's
    segments; later calls replay the cached outcome.
    """

    def __init__(self, executor: "ProcessExecutor", future, arg_segments: list) -> None:
        self._executor = executor
        self._future = future
        self._arg_segments = arg_segments
        self._consumed = False
        self._value = None
        self._error: Optional[BaseException] = None
        # Reclaim the argument segments the moment the worker is done with
        # them (also fires on cancellation), so cancelled pipelines do not
        # hold segments until close().
        future.add_done_callback(self._release_args)

    def _release_args(self, _future) -> None:
        from repro.core import shmem

        shmem.release_segments(self._arg_segments)

    def result(self):
        """Return the unpacked result (or raise the task/crash error)."""
        if self._consumed:
            if self._error is not None:
                raise self._error
            return self._value
        from concurrent.futures.process import BrokenProcessPool

        from repro.core import shmem

        self._consumed = True
        self._executor._forget(self)
        try:
            packed = self._future.result()
            self._value = shmem.import_value(packed, unlink=True)
        except BrokenProcessPool as error:
            self._error = ParallelExecutionError(
                "a worker process died unexpectedly (crash, kill or broken pipe); "
                "the pool has been shut down and its children reaped"
            )
            raise self._error from error
        except BaseException as error:
            self._error = error
            raise
        return self._value

    def cancel(self) -> bool:
        """Abandon the task: cancel if possible, reclaim results regardless.

        Argument segments are reclaimed by the done callback either way.
        A task that already finished (or finishes later despite the cancel
        attempt) has its parked result segments discarded as soon as they
        exist — the caller is walking away, so waiting for the executor's
        close() would hold shared memory for the lifetime of a borrowed
        pool.
        """
        cancelled = self._future.cancel()
        if not self._consumed:
            # Fires immediately when the future is already done (including
            # just-cancelled), later when a running task completes.
            self._future.add_done_callback(self._discard_callback)
        return cancelled

    def _discard_callback(self, _future) -> None:
        self._executor._forget(self)
        self.discard()

    def discard(self) -> None:
        """Drop a finished-but-unconsumed result, unlinking its segments."""
        if self._consumed:
            return
        self._consumed = True
        if not self._future.done():
            return
        from repro.core import shmem

        try:
            packed = self._future.result()
        except BaseException:  # noqa: BLE001 - nothing to reclaim on failure
            return
        shmem.discard_exported(packed)


class ProcessExecutor(Executor):
    """Process-pool execution with shared-memory bulk transport.

    True multi-core execution for pure-Python hot loops: each task's
    function and small arguments travel through the ordinary pickle pipe,
    while ``uint64`` address chunks and compressed blobs ride
    :mod:`multiprocessing.shared_memory` segments (one copy in, one copy
    out, nothing through the pipe — see :mod:`repro.core.shmem`).

    The pool is created lazily on first submission, uses the
    :func:`default_mp_context` start method, and :meth:`close` always
    drains in-flight segments and joins every child, so no orphan
    processes or leaked segments survive the executor.
    """

    name = "process"

    def __init__(self, workers: int = 0, mp_context: Optional[str] = None) -> None:
        super().__init__(workers)
        self._mp_context = mp_context
        self._pool = None
        self._closed = False
        self._outstanding: List[_ProcessHandle] = []

    def _ensure_pool(self):
        if self._closed:
            raise ConfigurationError("cannot submit tasks to a closed executor")
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = multiprocessing.get_context(self._mp_context or default_mp_context())
            self._pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=context)
        return self._pool

    def _forget(self, handle: _ProcessHandle) -> None:
        try:
            self._outstanding.remove(handle)
        except ValueError:
            pass

    def decouples_at_submit(self, nbytes: int) -> bool:
        """Large arrays are copied into shared memory inside :meth:`submit`
        (synchronously), so the caller's buffer is free immediately; small
        arrays ride the pickle pipe, which serialises later on the pool's
        feeder thread — those still need an owned copy from the caller."""
        from repro.core import shmem

        return nbytes >= shmem.shm_min_bytes()

    def submit(self, fn: Callable[..., _R], *args) -> TaskHandle:
        """Schedule ``fn(*args)``, parking bulk arguments in shared memory.

        ``fn`` and its non-bulk arguments must be picklable (module-level
        functions, bound methods of picklable objects).  Bulk payloads are
        copied into segments *before* this returns, so callers may reuse
        argument buffers immediately only when they sent copies — the
        pipeline copies interval views first, exactly as for threads.
        """
        from repro.core import shmem

        pool = self._ensure_pool()
        segments: list = []
        try:
            packed = shmem.export_value(tuple(args), segments)
            future = pool.submit(_process_invoke, fn, packed)
        except BaseException:
            shmem.release_segments(segments)
            raise
        handle = _ProcessHandle(self, future, segments)
        self._outstanding.append(handle)
        return handle

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down, reap children, reclaim in-flight segments.

        Safe after worker crashes and double closes; with ``cancel=True``
        queued tasks are dropped first.  Results that finished but were
        never consumed (a cancelled pipeline) have their shared-memory
        segments unlinked here, so abandoning work never leaks segments.
        """
        if self._closed and self._pool is None:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            # One shutdown call only: it drops the pool's internal
            # references at the end, so a second call could no longer join
            # the workers.  ``wait=True`` joins every child (a no-op on
            # already-dead children after a BrokenProcessPool); with
            # ``cancel`` the queued-but-unstarted tasks are dropped first.
            pool.shutdown(wait=True, cancel_futures=cancel)
        finally:
            leftovers, self._outstanding = self._outstanding, []
            for handle in leftovers:
                handle.discard()


def _executor_from_name(name: str, workers: int) -> Executor:
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "process":
        return ProcessExecutor(workers)
    raise ConfigurationError(
        f"unknown executor {name!r}; choose from {('auto',) + EXECUTOR_NAMES}"
    )


def resolved_kind(spec=None, workers: Optional[int] = 1) -> str:
    """The concrete strategy a (spec, workers) pair resolves to, by name.

    The single home of the ``auto`` rule: serial for one worker, threads
    beyond.  :func:`resolve_executor` applies it when building executors,
    and reporting call sites (e.g. the bench report's ``executor`` field)
    reuse it so recorded provenance can never drift from what actually ran.

    Example:
        >>> resolved_kind("process", workers=1)
        'process'
        >>> resolved_kind(None, workers=4)   # auto, no REPRO_EXECUTOR set
        'thread'
    """
    kind = executor_kind(spec)
    if kind == "auto":
        kind = "serial" if resolve_workers(workers) <= 1 else "thread"
    return kind


def resolve_executor(spec=None, workers: Optional[int] = 1) -> Executor:
    """Resolve an executor selection to a live :class:`Executor`.

    The single funnel behind every ``--executor`` CLI flag and config knob:

    * an :class:`Executor` instance passes through unchanged (the caller
      owns its lifecycle — see :func:`executor_scope`);
    * ``"serial"`` / ``"thread"`` / ``"process"`` select a strategy
      explicitly (``workers`` sizes the pool; ``0``/``None`` = CPU count);
    * ``None`` consults the ``REPRO_EXECUTOR`` environment variable, then
      falls back to ``"auto"``;
    * ``"auto"`` picks serial for a single worker (no pool overhead on the
      default path) and threads otherwise (the safe choice: correct for
      closures and shared state, fast for the GIL-releasing codecs).

    Example:
        >>> resolve_executor("serial").name
        'serial'
        >>> resolve_executor(None, workers=1).name     # auto: 1 worker
        'serial'
        >>> with resolve_executor("thread", workers=2) as executor:
        ...     executor.name, executor.workers
        ('thread', 2)
    """
    if isinstance(spec, Executor):
        return spec
    if spec is not None and not isinstance(spec, str):
        raise ConfigurationError(f"executor must be a name or Executor instance, got {spec!r}")
    return _executor_from_name(resolved_kind(spec, workers), resolve_workers(workers))


class executor_scope:
    """Context manager resolving a spec and closing only owned executors.

    ``with executor_scope(spec, workers) as executor`` yields a live
    executor; if ``spec`` was already an :class:`Executor` instance it is
    borrowed (the caller keeps it open for reuse), otherwise the scope
    created it and closes it on exit — the pattern every fan-out site uses.
    """

    def __init__(self, spec=None, workers: Optional[int] = 1) -> None:
        self._spec = spec
        self._workers = workers
        self._executor: Optional[Executor] = None
        self._owned = False

    def __enter__(self) -> Executor:
        self._executor = resolve_executor(self._spec, self._workers)
        self._owned = not isinstance(self._spec, Executor)
        return self._executor

    def __exit__(self, exc_type, exc, traceback) -> None:
        if self._owned and self._executor is not None:
            self._executor.close(cancel=exc_type is not None)


def executor_kind(spec) -> str:
    """The strategy name a spec would resolve to, without creating a pool.

    Used by call sites that must refuse (or downgrade) process execution —
    e.g. a sweep with an in-process ``trace_provider`` callback cannot ship
    its closure to another interpreter.
    """
    if isinstance(spec, Executor):
        return spec.name
    name = (spec or os.environ.get("REPRO_EXECUTOR") or "auto").strip().lower()
    if name not in ("auto",) + EXECUTOR_NAMES:
        raise ConfigurationError(
            f"unknown executor {name!r}; choose from {('auto',) + EXECUTOR_NAMES}"
        )
    return name
