"""Lossy phase-based ATC compression (paper, Section 5).

The trace is cut into intervals of ``interval_length`` addresses.  The first
interval always becomes a *chunk* (stored losslessly with bytesort).  Every
subsequent interval is summarised by its sorted byte-histograms and compared
against the chunks recorded in the in-memory histogram table:

* if the closest chunk is within ``threshold`` (the paper's ``eps = 0.1``),
  the interval is *not* stored; the interval trace only records "imitate
  chunk ``k``" together with the byte translations ``t[j]`` that remap the
  chunk's byte values onto the interval's (only for byte orders whose
  non-sorted histograms actually differ by more than the threshold);
* otherwise a new chunk is created from the interval and added to the table
  (evicting the oldest entry when the table is full).

Decompression walks the interval trace: chunk records decode the chunk,
imitation records decode the referenced chunk and apply the stored byte
translations.  The output has exactly the same number of addresses as the
original trace, and (by construction of the translations) closely matching
spatiotemporal structure, but it is *not* bit-identical — that is the
``lossy`` in lossy compression.

``enable_translation=False`` reproduces the Figure 4 ablation: imitated
intervals are then regenerated as verbatim copies of the chunk, which makes
the apparent working set of random-access traces look much smaller than it
really is (the myopic interval problem the translations exist to fix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backend import get_backend
from repro.core.histograms import (
    IntervalSummary,
    byte_translation,
    translation_active_mask,
)
from repro.core.intervals import ChunkTable, IntervalRecord, materialize_interval
from repro.core.lossless import LosslessCodec
from repro.errors import CodecError, ConfigurationError
from repro.traces.trace import as_address_array

__all__ = [
    "LossyConfig",
    "LossyCompressed",
    "LossyCodec",
    "LossyIntervalEncoder",
    "lossy_compress",
    "lossy_decompress",
    "PAPER_INTERVAL_LENGTH",
    "PAPER_THRESHOLD",
]

#: Interval length used in the paper's Table 3 / Figures 3-5 (10 M addresses).
PAPER_INTERVAL_LENGTH = 10_000_000

#: Threshold the paper found to balance ratio and fidelity.
PAPER_THRESHOLD = 0.1


@dataclass(frozen=True)
class LossyConfig:
    """Configuration of the lossy codec.

    Attributes:
        interval_length: Interval length ``L`` in addresses.
        threshold: Interval-distance threshold ``eps``.
        chunk_buffer_addresses: Bytesort buffer used to compress chunks (the
            paper uses 1 M addresses for chunks regardless of ``L``).
        max_table_entries: Capacity of the in-memory histogram table
            (``None`` = unbounded, the effective setting for the paper's
            experiments where traces have at most a few hundred chunks).
        backend: Byte-level compression back-end for chunks.
        enable_translation: Apply byte translations when imitating (True in
            the paper; False reproduces the Figure 4 ablation).
        workers: Number of chunks compressed concurrently by the streaming
            encoder (and prefetched by the decoder).  ``1`` is fully serial;
            ``0``/``None`` means one worker per CPU.  Output is
            byte-identical for every worker count; the knob only changes
            wall-clock time and peak memory (bounded at roughly
            ``2 * workers`` in-flight chunks).
        executor: Execution strategy for the chunk pipeline: ``"serial"``,
            ``"thread"`` (the stdlib codecs release the GIL, overlapping
            chunk compression with trace consumption the same way the
            paper's external ``bzip2 -c`` process overlaps with the
            tracer), ``"process"`` (true multi-core with shared-memory
            chunk transport), or ``None`` for the ``REPRO_EXECUTOR``
            environment variable / auto default.  Containers are
            byte-identical across strategies by construction.
    """

    interval_length: int = 20_000
    threshold: float = PAPER_THRESHOLD
    chunk_buffer_addresses: int = 1_000_000
    max_table_entries: Optional[int] = None
    backend: object = "bz2"
    enable_translation: bool = True
    workers: int = 1
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.core.parallel import executor_kind, resolve_workers

        if self.interval_length <= 0:
            raise ConfigurationError("interval_length must be positive")
        if not 0.0 <= self.threshold <= 2.0:
            raise ConfigurationError("threshold must lie in [0, 2] (histogram distances do)")
        if self.chunk_buffer_addresses <= 0:
            raise ConfigurationError("chunk_buffer_addresses must be positive")
        # Normalise 0/None to the CPU count once, at construction time.
        object.__setattr__(self, "workers", resolve_workers(self.workers))
        if self.executor is not None:
            executor_kind(self.executor)  # validate the name eagerly
        get_backend(self.backend)

    @classmethod
    def paper_defaults(cls, **overrides) -> "LossyConfig":
        """The paper's configuration (L = 10 M, eps = 0.1); override freely."""
        values = dict(
            interval_length=PAPER_INTERVAL_LENGTH,
            threshold=PAPER_THRESHOLD,
            chunk_buffer_addresses=1_000_000,
        )
        values.update(overrides)
        return cls(**values)


@dataclass
class LossyCompressed:
    """In-memory result of lossy compression.

    Attributes:
        config: The configuration the trace was compressed with.
        chunks: Losslessly compressed chunk payloads, indexed by chunk id.
        records: The interval trace, one record per original interval.
        original_length: Number of addresses in the original trace.
    """

    config: LossyConfig
    chunks: List[bytes]
    records: List[IntervalRecord]
    original_length: int

    @property
    def num_chunks(self) -> int:
        """Number of chunks that had to be stored."""
        return len(self.chunks)

    @property
    def num_intervals(self) -> int:
        """Number of intervals in the original trace."""
        return len(self.records)

    def compressed_bytes(self) -> int:
        """Total compressed size: chunk payloads plus the interval trace.

        The interval trace is accounted for with the same representation the
        on-disk container uses (serialised and compressed with the chunk
        back-end), so in-memory sizes and container sizes agree.
        """
        from repro.core.container import serialize_interval_trace

        backend = get_backend(self.config.backend)
        interval_payload = backend.compress(serialize_interval_trace(self.records))
        return sum(len(chunk) for chunk in self.chunks) + len(interval_payload)

    def bits_per_address(self) -> float:
        """Compressed bits per original trace address."""
        if self.original_length == 0:
            return 0.0
        return 8.0 * self.compressed_bytes() / self.original_length


class LossyIntervalEncoder:
    """Incremental interval-by-interval encoder shared by the in-memory codec
    and the streaming :class:`~repro.core.atc.AtcEncoder`.

    Call :meth:`encode_interval` once per interval, in trace order; it
    returns the interval record and, for newly created chunks, the chunk's
    losslessly compressed payload (``None`` for imitated intervals).
    """

    def __init__(self, config: LossyConfig) -> None:
        self.config = config
        self.chunk_codec = LosslessCodec(
            buffer_addresses=config.chunk_buffer_addresses, backend=config.backend
        )
        self._table = ChunkTable(max_entries=config.max_table_entries)
        self._chunk_summaries: Dict[int, IntervalSummary] = {}
        self._next_chunk_id = 0

    @property
    def num_chunks(self) -> int:
        """Number of chunks created so far."""
        return self._next_chunk_id

    def plan_interval(self, interval: np.ndarray) -> Tuple[IntervalRecord, bool]:
        """Classify one interval without compressing it.

        Returns ``(record, needs_payload)``.  ``needs_payload`` is True when
        the interval became a new chunk whose payload still has to be
        produced (``chunk_codec.compress(interval)``); the caller is free to
        run that compression asynchronously, because the classification of
        later intervals only depends on the histogram summaries recorded
        here, never on the compressed bytes.
        """
        config = self.config
        summary = IntervalSummary.from_addresses(interval)
        match = self._table.best_match(summary)
        if match is not None and match.distance <= config.threshold:
            source_summary = self._chunk_summaries[match.chunk_id]
            translations = byte_translation(source_summary, summary)
            active = translation_active_mask(source_summary, summary, config.threshold)
            if not config.enable_translation:
                active = np.zeros_like(active)
            record = IntervalRecord(
                kind="imitate",
                chunk_id=match.chunk_id,
                length=int(interval.size),
                active_bytes=active,
                translations=translations,
                distance=match.distance,
            )
            return record, False
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        self._chunk_summaries[chunk_id] = summary
        self._table.add(chunk_id, summary)
        record = IntervalRecord(kind="chunk", chunk_id=chunk_id, length=int(interval.size))
        return record, True

    def encode_interval(self, interval: np.ndarray) -> Tuple[IntervalRecord, Optional[bytes]]:
        """Encode one interval; returns ``(record, chunk_payload_or_None)``."""
        record, needs_payload = self.plan_interval(interval)
        if not needs_payload:
            return record, None
        return record, self.chunk_codec.compress(interval)


class LossyCodec:
    """Phase-based lossy codec (compression and decompression)."""

    def __init__(self, config: LossyConfig = LossyConfig()) -> None:
        self.config = config
        self._chunk_codec = LosslessCodec(
            buffer_addresses=config.chunk_buffer_addresses, backend=config.backend
        )

    # -- compression -------------------------------------------------------------------
    def compress(self, addresses) -> LossyCompressed:
        """Compress a trace; returns the chunks and the interval trace.

        Interval classification is inherently sequential (each decision
        depends on the chunk table built so far), but chunk payload
        compression is not: the chunk intervals are collected during the
        classification pass and compressed together afterwards, on
        ``config.workers`` threads when more than one is configured.
        """
        values = as_address_array(addresses)
        config = self.config
        encoder = LossyIntervalEncoder(config)
        chunk_intervals: List[np.ndarray] = []
        records: List[IntervalRecord] = []
        for start in range(0, values.size, config.interval_length):
            interval = values[start : start + config.interval_length]
            record, needs_payload = encoder.plan_interval(interval)
            if needs_payload:
                chunk_intervals.append(interval)
            records.append(record)
        chunks = encoder.chunk_codec.compress_many(
            chunk_intervals, workers=config.workers, executor=config.executor
        )
        return LossyCompressed(
            config=config, chunks=chunks, records=records, original_length=int(values.size)
        )

    # -- decompression -------------------------------------------------------------------
    def decompress(self, compressed: LossyCompressed) -> np.ndarray:
        """Regenerate an (approximate) trace from a :class:`LossyCompressed`.

        Chunk payloads are decompressed up front (in parallel when
        ``config.workers > 1``), each exactly once, then the interval trace
        is replayed against the decoded chunks.
        """
        needed = list(dict.fromkeys(record.chunk_id for record in compressed.records))
        for chunk_id in needed:
            if not 0 <= chunk_id < len(compressed.chunks):
                raise CodecError(f"interval trace references unknown chunk {chunk_id}")
        decoded = self._chunk_codec.decompress_many(
            [compressed.chunks[chunk_id] for chunk_id in needed],
            workers=self.config.workers,
            executor=self.config.executor,
        )
        decoded_chunks: Dict[int, np.ndarray] = dict(zip(needed, decoded))

        pieces: List[np.ndarray] = [
            materialize_interval(record, decoded_chunks[record.chunk_id])
            for record in compressed.records
        ]
        if not pieces:
            return np.empty(0, dtype=np.uint64)
        result = np.concatenate(pieces)
        if int(result.size) != compressed.original_length:
            raise CodecError(
                "decompressed length does not match the recorded original length "
                f"({result.size} vs {compressed.original_length})"
            )
        return result


def lossy_compress(addresses, config: LossyConfig = LossyConfig()) -> LossyCompressed:
    """One-shot lossy compression.

    Example:
        >>> import numpy as np
        >>> trace = np.arange(6000, dtype=np.uint64) % 800      # stationary stream
        >>> config = LossyConfig(interval_length=2000, chunk_buffer_addresses=2000)
        >>> compressed = lossy_compress(trace, config)
        >>> compressed.num_chunks, compressed.num_intervals     # later intervals imitate
        (1, 3)
        >>> len(lossy_decompress(compressed)) == len(trace)     # length always preserved
        True
    """
    return LossyCodec(config).compress(addresses)


def lossy_decompress(compressed: LossyCompressed) -> np.ndarray:
    """One-shot lossy decompression.

    See :func:`lossy_compress` for a round-trip example; the output has the
    original length but is only structurally, not bit-, exact.
    """
    return LossyCodec(compressed.config).decompress(compressed)
