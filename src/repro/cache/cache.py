"""Set-associative cache simulator.

This is the substrate the paper relies on in two places:

* the *cache filter* that turns a full reference stream into a
  cache-filtered address trace (Section 4.2 uses 32 KB, 4-way, 64-byte
  blocks, LRU for both the L1 instruction and L1 data cache), and
* the cache configurations simulated from exact and lossy traces to check
  that miss ratios are preserved (Figure 3).

The simulator models tags only (no data), which is all that is needed to
count hits and misses and to emit the miss address stream.  Replacement
policies: LRU (the paper's policy), FIFO and RANDOM are provided so the
ablation benches can vary the policy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


def _as_block_array(blocks) -> np.ndarray:
    """Convert a block-address iterable to a ``uint64`` array.

    Deferred import: ``repro.traces`` imports this module (via the cache
    filter), so importing ``as_address_array`` at module level would be
    circular.
    """
    from repro.traces.trace import as_address_array

    return as_address_array(blocks)

__all__ = ["CacheConfig", "CacheStats", "SetAssociativeCache"]

_POLICIES = ("lru", "fifo", "random")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Attributes:
        num_sets: Number of cache sets (power of two).
        associativity: Ways per set (>= 1).
        block_bytes: Cache block (line) size in bytes (power of two).
        policy: Replacement policy, one of ``"lru"``, ``"fifo"``, ``"random"``.
        name: Optional label used in reports (e.g. ``"L1D"``).
    """

    num_sets: int
    associativity: int
    block_bytes: int = 64
    policy: str = "lru"
    name: str = ""

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(f"num_sets must be a power of two, got {self.num_sets}")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if not _is_power_of_two(self.block_bytes):
            raise ConfigurationError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.policy not in _POLICIES:
            raise ConfigurationError(f"unknown replacement policy {self.policy!r}")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the cache in bytes."""
        return self.num_sets * self.associativity * self.block_bytes

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks (tags) the cache can hold."""
        return self.num_sets * self.associativity

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        associativity: int,
        block_bytes: int = 64,
        policy: str = "lru",
        name: str = "",
    ) -> "CacheConfig":
        """Build a config from a capacity instead of a set count.

        This matches how the paper describes its filter caches ("capacity of
        32 Kbytes and ... 4-way set-associative").

        Example:
            >>> config = CacheConfig.from_capacity(32 * 1024, associativity=4)
            >>> config.num_sets, config.capacity_bytes
            (128, 32768)
        """
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not divisible into {associativity}-way sets"
            )
        return cls(
            num_sets=blocks // associativity,
            associativity=associativity,
            block_bytes=block_bytes,
            policy=policy,
            name=name,
        )


@dataclass
class CacheStats:
    """Hit/miss counters accumulated by a :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed (0.0 when nothing was accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two counters (used when merging I and D stats)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU/FIFO/RANDOM replacement.

    The cache operates on *block addresses* internally.  :meth:`access`
    takes byte addresses (like a real cache port) while
    :meth:`access_block` takes block addresses directly, which is what the
    trace-driven simulations in Figure 3 use (the trace already stores block
    addresses).
    """

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # One dict per set mapping block address -> monotonically increasing
        # stamp.  For LRU the stamp is updated on every touch, for FIFO only
        # on fill, so the victim (min stamp) implements either policy.
        self._sets: List[dict] = [dict() for _ in range(config.num_sets)]
        # Dirty blocks per set (written blocks that will cause a write-back
        # when evicted); parallel to ``_sets`` and always a subset of it.
        self._dirty: List[set] = [set() for _ in range(config.num_sets)]
        self._clock = 0
        self._rng = np.random.default_rng(seed)

    # -- access paths ---------------------------------------------------------------
    def access(self, byte_address: int) -> bool:
        """Access a byte address; returns ``True`` on hit, ``False`` on miss."""
        return self.access_block(int(byte_address) >> self._set_shift)

    def access_block(self, block: int) -> bool:
        """Access a block address; returns ``True`` on hit, ``False`` on miss."""
        hit, _ = self.access_block_rw(block, is_write=False)
        return hit

    def access_block_rw(self, block: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a block, optionally as a write (write-allocate, write-back).

        Returns ``(hit, writeback_block)`` where ``writeback_block`` is the
        address of the dirty block evicted by this access, or ``None`` when
        no write-back happened.  This is what the paper's cache filter needs
        to emit write-back records tagged in the spare address bits.
        """
        block = int(block)
        config = self.config
        index = block & self._set_mask
        cache_set = self._sets[index]
        dirty_set = self._dirty[index]
        self.stats.accesses += 1
        self._clock += 1
        if block in cache_set:
            self.stats.hits += 1
            if config.policy == "lru":
                cache_set[block] = self._clock
            if is_write:
                dirty_set.add(block)
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= config.associativity:
            victim = self._evict(cache_set)
            if victim in dirty_set:
                dirty_set.discard(victim)
                self.stats.writebacks += 1
                writeback = victim
        cache_set[block] = self._clock
        if is_write:
            dirty_set.add(block)
        return False, writeback

    def access_trace(self, blocks: Iterable[int]) -> CacheStats:
        """Access every block address in ``blocks`` and return the stats."""
        self.access_batch(blocks)
        return self.stats

    def miss_stream(self, blocks: Iterable[int]) -> np.ndarray:
        """Return the block addresses that miss, in access order.

        This is the "cache filter" operation: the output is exactly the
        cache-filtered trace the paper's compressor consumes.
        """
        array = _as_block_array(blocks)
        hits = self.access_batch(array)
        return array[~hits]

    # -- batch access ----------------------------------------------------------------
    def access_batch(self, blocks: Iterable[int]) -> np.ndarray:
        """Access many block addresses at once; returns the boolean hit mask.

        Semantically identical to calling :meth:`access_block` on every
        element in order — counters, resident blocks and replacement stamps
        end up exactly the same — but accesses are grouped by cache set, so
        the simulation runs on arrays instead of one Python-level cache
        probe per reference:

        * direct-mapped caches take a fully vectorised NumPy path (a hit is
          an access equal to the previous access of the same set);
        * LRU and FIFO set-associative caches replay each set's subsequence
          against an :class:`~collections.OrderedDict`, making eviction
          O(1) instead of the generic path's O(ways) ``min`` scan;
        * RANDOM replacement (whose RNG draws depend on global access
          order) and caches holding dirty blocks (whose evictions must
          count write-backs) fall back to the exact serial loop.
        """
        array = _as_block_array(blocks)
        count = int(array.size)
        if count == 0:
            return np.zeros(0, dtype=bool)
        if self.config.policy == "random" or any(self._dirty):
            # Exact serial fallback; convert to Python ints in bounded
            # slices so a huge batch does not materialise one giant list.
            hits = np.empty(count, dtype=bool)
            access_block = self.access_block
            for start in range(0, count, 65536):
                chunk = array[start : start + 65536].tolist()
                for offset, block in enumerate(chunk):
                    hits[start + offset] = access_block(block)
            return hits
        if self.config.associativity == 1:
            return self._access_batch_direct(array)
        return self._access_batch_grouped(array)

    def _access_batch_direct(self, array: np.ndarray) -> np.ndarray:
        """Vectorised batch access for direct-mapped caches.

        With one way per set the resident block is simply the last block
        accessed in that set, so after a stable sort by set index a hit is
        "equal to the previous access of the same set" — no per-access
        Python at all.  Only the per-set boundary work (seeding the first
        access of each touched set with the resident block, and writing the
        final state back) runs in a Python loop over *touched sets*.
        """
        count = int(array.size)
        set_index = (array & np.uint64(self._set_mask)).astype(np.int64)
        order = np.argsort(set_index, kind="stable")
        sorted_sets = set_index[order]
        sorted_blocks = array[order]
        same_set = np.zeros(count, dtype=bool)
        same_set[1:] = sorted_sets[1:] == sorted_sets[:-1]
        hits_sorted = np.zeros(count, dtype=bool)
        hits_sorted[1:] = same_set[1:] & (sorted_blocks[1:] == sorted_blocks[:-1])
        group_starts = np.flatnonzero(~same_set)
        group_bounds = np.append(group_starts, count)
        clock_start = self._clock
        is_lru = self.config.policy == "lru"
        newly_filled = 0
        for group in range(group_starts.size):
            start = int(group_starts[group])
            end = int(group_bounds[group + 1])
            cache_set = self._sets[int(sorted_sets[start])]
            if cache_set:
                (resident,) = cache_set
                hits_sorted[start] = int(sorted_blocks[start]) == resident
            else:
                newly_filled += 1
            final_block = int(sorted_blocks[end - 1])
            if is_lru:
                # LRU stamp = clock at the last touch of the set.
                stamp_position = int(order[end - 1])
            else:
                # FIFO stamp = clock at the last fill (miss) of the set.
                group_misses = np.flatnonzero(~hits_sorted[start:end])
                if group_misses.size == 0:
                    continue  # all hits: resident block and stamp unchanged
                stamp_position = int(order[start + int(group_misses[-1])])
            cache_set.clear()
            cache_set[final_block] = clock_start + stamp_position + 1
        hit_count = int(np.count_nonzero(hits_sorted))
        miss_count = count - hit_count
        self.stats.accesses += count
        self.stats.hits += hit_count
        self.stats.misses += miss_count
        self.stats.evictions += miss_count - newly_filled
        self._clock += count
        hits = np.empty(count, dtype=bool)
        hits[order] = hits_sorted
        return hits

    def _access_batch_grouped(self, array: np.ndarray) -> np.ndarray:
        """Grouped batch access for LRU/FIFO set-associative caches.

        Accesses to different sets never interact, so the batch is sorted
        by set index (stable, preserving per-set order) and each set's
        subsequence is replayed against an OrderedDict kept in recency
        (LRU) or fill (FIFO) order; the victim is always the first entry.
        Stamps are reconstructed from each access's global position, which
        makes the final state bit-identical to the serial loop.
        """
        count = int(array.size)
        set_index = (array & np.uint64(self._set_mask)).astype(np.int64)
        order = np.argsort(set_index, kind="stable")
        sorted_sets = set_index[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_sets[1:] != sorted_sets[:-1]))
        )
        group_bounds = np.append(group_starts, count)
        clock_start = self._clock
        ways = self.config.associativity
        is_lru = self.config.policy == "lru"
        hits = np.empty(count, dtype=bool)
        hit_count = 0
        eviction_count = 0
        for group in range(group_starts.size):
            start = int(group_starts[group])
            end = int(group_bounds[group + 1])
            cache_set = self._sets[int(sorted_sets[start])]
            # Existing stamps are unique clock values, so sorting by stamp
            # recovers the recency/fill order the serial loop maintains.
            entries = OrderedDict(sorted(cache_set.items(), key=lambda item: item[1]))
            group_blocks = array[order[start:end]].tolist()
            group_positions = order[start:end].tolist()
            for block, position in zip(group_blocks, group_positions):
                if block in entries:
                    hits[position] = True
                    hit_count += 1
                    if is_lru:
                        entries[block] = clock_start + position + 1
                        entries.move_to_end(block)
                else:
                    hits[position] = False
                    if len(entries) >= ways:
                        entries.popitem(last=False)
                        eviction_count += 1
                    entries[block] = clock_start + position + 1
            cache_set.clear()
            cache_set.update(entries)
        self.stats.accesses += count
        self.stats.hits += hit_count
        self.stats.misses += count - hit_count
        self.stats.evictions += eviction_count
        self._clock += count
        return hits

    # -- internals ------------------------------------------------------------------
    def _evict(self, cache_set: dict) -> int:
        if self.config.policy == "random":
            victim = list(cache_set)[int(self._rng.integers(len(cache_set)))]
        else:
            victim = min(cache_set, key=cache_set.get)
        del cache_set[victim]
        self.stats.evictions += 1
        return victim

    # -- introspection ---------------------------------------------------------------
    def resident_blocks(self) -> set:
        """Return the set of block addresses currently cached."""
        resident = set()
        for cache_set in self._sets:
            resident.update(cache_set)
        return resident

    def contains_block(self, block: int) -> bool:
        """Return True when ``block`` is resident (does not update LRU state)."""
        block = int(block)
        return block in self._sets[block & self._set_mask]

    def dirty_blocks(self) -> set:
        """Return the set of block addresses currently dirty."""
        dirty = set()
        for dirty_set in self._dirty:
            dirty.update(dirty_set)
        return dirty

    def flush(self) -> None:
        """Invalidate every block and reset the internal clock (stats kept)."""
        for cache_set in self._sets:
            cache_set.clear()
        for dirty_set in self._dirty:
            dirty_set.clear()
        self._clock = 0

    def reset(self) -> None:
        """Flush the cache and clear the statistics."""
        self.flush()
        self.stats = CacheStats()
