"""Set-associative cache simulator.

This is the substrate the paper relies on in two places:

* the *cache filter* that turns a full reference stream into a
  cache-filtered address trace (Section 4.2 uses 32 KB, 4-way, 64-byte
  blocks, LRU for both the L1 instruction and L1 data cache), and
* the cache configurations simulated from exact and lossy traces to check
  that miss ratios are preserved (Figure 3).

The simulator models tags only (no data), which is all that is needed to
count hits and misses and to emit the miss address stream.  Replacement
policies: LRU (the paper's policy), FIFO and RANDOM are provided so the
ablation benches can vary the policy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


def _as_block_array(blocks) -> np.ndarray:
    """Convert a block-address iterable to a ``uint64`` array.

    Deferred import: ``repro.traces`` imports this module (via the cache
    filter), so importing ``as_address_array`` at module level would be
    circular.
    """
    from repro.traces.trace import as_address_array

    return as_address_array(blocks)

__all__ = ["CacheConfig", "CacheStats", "SetAssociativeCache", "access_batches"]

_POLICIES = ("lru", "fifo", "random")

#: Slice length (in blocks) of the exact serial fallback taken by
#: :meth:`SetAssociativeCache.access_batch` for RANDOM replacement and
#: dirty caches: big enough that per-slice overhead is negligible, small
#: enough that a huge batch never materialises one giant Python list.
SERIAL_FALLBACK_BLOCKS = 65536

#: Batches shorter than this skip the array kernel: below a few hundred
#: references the kernel's sort/pack setup costs more than the grouped
#: per-reference replay it replaces.
KERNEL_MIN_BATCH = 192

#: Kernel batches are simulated in slices of this many blocks (state
#: carries across slices, so results are bit-identical to one shot); the
#: kernel's scratch matrices then stay a few megabytes no matter how large
#: the caller's batch is.
KERNEL_SLICE_BLOCKS = 65536

#: Geometries up to this many sets seed the kernel by scanning every
#: non-empty set (cheaper than sorting the batch's set indices); larger
#: geometries pay one :func:`numpy.unique` to seed only the touched sets.
#: Shared with the stack-distance simulator's seeding heuristic.
KERNEL_SEED_SCAN_SETS = 4096


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Attributes:
        num_sets: Number of cache sets (power of two).
        associativity: Ways per set (>= 1).
        block_bytes: Cache block (line) size in bytes (power of two).
        policy: Replacement policy, one of ``"lru"``, ``"fifo"``, ``"random"``.
        name: Optional label used in reports (e.g. ``"L1D"``).
    """

    num_sets: int
    associativity: int
    block_bytes: int = 64
    policy: str = "lru"
    name: str = ""

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(f"num_sets must be a power of two, got {self.num_sets}")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if not _is_power_of_two(self.block_bytes):
            raise ConfigurationError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.policy not in _POLICIES:
            raise ConfigurationError(f"unknown replacement policy {self.policy!r}")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the cache in bytes."""
        return self.num_sets * self.associativity * self.block_bytes

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks (tags) the cache can hold."""
        return self.num_sets * self.associativity

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        associativity: int,
        block_bytes: int = 64,
        policy: str = "lru",
        name: str = "",
    ) -> "CacheConfig":
        """Build a config from a capacity instead of a set count.

        This matches how the paper describes its filter caches ("capacity of
        32 Kbytes and ... 4-way set-associative").

        Example:
            >>> config = CacheConfig.from_capacity(32 * 1024, associativity=4)
            >>> config.num_sets, config.capacity_bytes
            (128, 32768)
        """
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not divisible into {associativity}-way sets"
            )
        return cls(
            num_sets=blocks // associativity,
            associativity=associativity,
            block_bytes=block_bytes,
            policy=policy,
            name=name,
        )


@dataclass
class CacheStats:
    """Hit/miss counters accumulated by a :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed (0.0 when nothing was accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two counters (used when merging I and D stats)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU/FIFO/RANDOM replacement.

    The cache operates on *block addresses* internally.  :meth:`access`
    takes byte addresses (like a real cache port) while
    :meth:`access_block` takes block addresses directly, which is what the
    trace-driven simulations in Figure 3 use (the trace already stores block
    addresses).
    """

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # One dict per set mapping block address -> monotonically increasing
        # stamp.  For LRU the stamp is updated on every touch, for FIFO only
        # on fill, so the victim (min stamp) implements either policy.
        self._sets: List[dict] = [dict() for _ in range(config.num_sets)]
        # Dirty blocks per set (written blocks that will cause a write-back
        # when evicted); parallel to ``_sets`` and always a subset of it.
        # The total count is maintained incrementally so the batch paths
        # can test "any dirty block?" in O(1) instead of scanning all sets.
        self._dirty: List[set] = [set() for _ in range(config.num_sets)]
        self._dirty_block_count = 0
        self._clock = 0
        self._rng = np.random.default_rng(seed)

    # -- access paths ---------------------------------------------------------------
    def access(self, byte_address: int) -> bool:
        """Access a byte address; returns ``True`` on hit, ``False`` on miss."""
        return self.access_block(int(byte_address) >> self._set_shift)

    def access_block(self, block: int) -> bool:
        """Access a block address; returns ``True`` on hit, ``False`` on miss."""
        hit, _ = self.access_block_rw(block, is_write=False)
        return hit

    def access_block_rw(self, block: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a block, optionally as a write (write-allocate, write-back).

        Returns ``(hit, writeback_block)`` where ``writeback_block`` is the
        address of the dirty block evicted by this access, or ``None`` when
        no write-back happened.  This is what the paper's cache filter needs
        to emit write-back records tagged in the spare address bits.
        """
        block = int(block)
        config = self.config
        index = block & self._set_mask
        cache_set = self._sets[index]
        dirty_set = self._dirty[index]
        self.stats.accesses += 1
        self._clock += 1
        if block in cache_set:
            self.stats.hits += 1
            if config.policy == "lru":
                cache_set[block] = self._clock
            if is_write and block not in dirty_set:
                dirty_set.add(block)
                self._dirty_block_count += 1
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= config.associativity:
            victim = self._evict(cache_set)
            if victim in dirty_set:
                dirty_set.discard(victim)
                self._dirty_block_count -= 1
                self.stats.writebacks += 1
                writeback = victim
        cache_set[block] = self._clock
        if is_write:
            dirty_set.add(block)
            self._dirty_block_count += 1
        return False, writeback

    def access_trace(self, blocks: Iterable[int]) -> CacheStats:
        """Access every block address in ``blocks`` and return the stats."""
        self.access_batch(blocks)
        return self.stats

    def miss_stream(self, blocks: Iterable[int]) -> np.ndarray:
        """Return the block addresses that miss, in access order.

        This is the "cache filter" operation: the output is exactly the
        cache-filtered trace the paper's compressor consumes.
        """
        array = _as_block_array(blocks)
        hits = self.access_batch(array)
        return array[~hits]

    # -- batch access ----------------------------------------------------------------
    def access_batch(self, blocks: Iterable[int]) -> np.ndarray:
        """Access many block addresses at once; returns the boolean hit mask.

        Semantically identical to calling :meth:`access_block` on every
        element in order — counters, resident blocks and replacement stamps
        end up exactly the same — but accesses are grouped by cache set, so
        the simulation runs on arrays instead of one Python-level cache
        probe per reference:

        * direct-mapped caches take a fully vectorised NumPy path (a hit is
          an access equal to the previous access of the same set);
        * LRU and FIFO set-associative caches run on the set-parallel
          stack kernel (:mod:`repro.core.kernels`), which advances every
          set's recency stack with whole-array operations; very small
          batches instead replay each set's subsequence against an
          :class:`~collections.OrderedDict` (:meth:`_access_batch_grouped`,
          the pre-kernel path, kept as the grouped reference
          implementation);
        * RANDOM replacement (whose RNG draws depend on global access
          order) and caches holding dirty blocks (whose evictions must
          count write-backs) fall back to the exact serial loop.
        """
        array = _as_block_array(blocks)
        count = int(array.size)
        if count == 0:
            return np.zeros(0, dtype=bool)
        if self.config.policy == "random" or self._dirty_block_count:
            # Exact serial fallback; convert to Python ints in bounded
            # slices so a huge batch does not materialise one giant list.
            hits = np.empty(count, dtype=bool)
            access_block = self.access_block
            for start in range(0, count, SERIAL_FALLBACK_BLOCKS):
                chunk = array[start : start + SERIAL_FALLBACK_BLOCKS].tolist()
                for offset, block in enumerate(chunk):
                    hits[start + offset] = access_block(block)
            return hits
        if self.config.associativity == 1:
            return self._access_batch_direct(array)
        if count < KERNEL_MIN_BATCH:
            return self._access_batch_grouped(array)
        return self._access_batch_kernel(array)

    def _access_batch_direct(self, array: np.ndarray) -> np.ndarray:
        """Vectorised batch access for direct-mapped caches.

        With one way per set the resident block is simply the last block
        accessed in that set, so after a stable sort by set index a hit is
        "equal to the previous access of the same set" — no per-access
        Python at all.  Only the per-set boundary work (seeding the first
        access of each touched set with the resident block, and writing the
        final state back) runs in a Python loop over *touched sets*.
        """
        count = int(array.size)
        set_index = (array & np.uint64(self._set_mask)).astype(np.int64)
        order = np.argsort(set_index, kind="stable")
        sorted_sets = set_index[order]
        sorted_blocks = array[order]
        same_set = np.zeros(count, dtype=bool)
        same_set[1:] = sorted_sets[1:] == sorted_sets[:-1]
        hits_sorted = np.zeros(count, dtype=bool)
        hits_sorted[1:] = same_set[1:] & (sorted_blocks[1:] == sorted_blocks[:-1])
        group_starts = np.flatnonzero(~same_set)
        group_bounds = np.append(group_starts, count)
        clock_start = self._clock
        is_lru = self.config.policy == "lru"
        newly_filled = 0
        for group in range(group_starts.size):
            start = int(group_starts[group])
            end = int(group_bounds[group + 1])
            cache_set = self._sets[int(sorted_sets[start])]
            if cache_set:
                (resident,) = cache_set
                hits_sorted[start] = int(sorted_blocks[start]) == resident
            else:
                newly_filled += 1
            final_block = int(sorted_blocks[end - 1])
            if is_lru:
                # LRU stamp = clock at the last touch of the set.
                stamp_position = int(order[end - 1])
            else:
                # FIFO stamp = clock at the last fill (miss) of the set.
                group_misses = np.flatnonzero(~hits_sorted[start:end])
                if group_misses.size == 0:
                    continue  # all hits: resident block and stamp unchanged
                stamp_position = int(order[start + int(group_misses[-1])])
            cache_set.clear()
            cache_set[final_block] = clock_start + stamp_position + 1
        hit_count = int(np.count_nonzero(hits_sorted))
        miss_count = count - hit_count
        self.stats.accesses += count
        self.stats.hits += hit_count
        self.stats.misses += miss_count
        self.stats.evictions += miss_count - newly_filled
        self._clock += count
        hits = np.empty(count, dtype=bool)
        hits[order] = hits_sorted
        return hits

    def _access_batch_grouped(self, array: np.ndarray) -> np.ndarray:
        """Grouped batch access for LRU/FIFO set-associative caches.

        Accesses to different sets never interact, so the batch is sorted
        by set index (stable, preserving per-set order) and each set's
        subsequence is replayed against an OrderedDict kept in recency
        (LRU) or fill (FIFO) order; the victim is always the first entry.
        Stamps are reconstructed from each access's global position, which
        makes the final state bit-identical to the serial loop.
        """
        count = int(array.size)
        set_index = (array & np.uint64(self._set_mask)).astype(np.int64)
        order = np.argsort(set_index, kind="stable")
        sorted_sets = set_index[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_sets[1:] != sorted_sets[:-1]))
        )
        group_bounds = np.append(group_starts, count)
        clock_start = self._clock
        ways = self.config.associativity
        is_lru = self.config.policy == "lru"
        hits = np.empty(count, dtype=bool)
        hit_count = 0
        eviction_count = 0
        for group in range(group_starts.size):
            start = int(group_starts[group])
            end = int(group_bounds[group + 1])
            cache_set = self._sets[int(sorted_sets[start])]
            # Existing stamps are unique clock values, so sorting by stamp
            # recovers the recency/fill order the serial loop maintains.
            entries = OrderedDict(sorted(cache_set.items(), key=lambda item: item[1]))
            group_blocks = array[order[start:end]].tolist()
            group_positions = order[start:end].tolist()
            for block, position in zip(group_blocks, group_positions):
                if block in entries:
                    hits[position] = True
                    hit_count += 1
                    if is_lru:
                        entries[block] = clock_start + position + 1
                        entries.move_to_end(block)
                else:
                    hits[position] = False
                    if len(entries) >= ways:
                        entries.popitem(last=False)
                        eviction_count += 1
                    entries[block] = clock_start + position + 1
            cache_set.clear()
            cache_set.update(entries)
        self.stats.accesses += count
        self.stats.hits += hit_count
        self.stats.misses += count - hit_count
        self.stats.evictions += eviction_count
        self._clock += count
        return hits

    def _access_batch_kernel(self, array: np.ndarray) -> np.ndarray:
        """Batch access on the set-parallel array kernel (LRU/FIFO, clean).

        Delegates the simulation to :func:`repro.core.kernels.simulate_batch`
        and converts between the cache's per-set stamp dictionaries and the
        kernel's recency-stack state.  Bit-identical to the serial loop:
        hit mask, counters, resident blocks and stamps all match exactly.
        """
        from repro.core.kernels import simulate_batch

        count = int(array.size)
        hits = np.empty(count, dtype=bool)
        for start in range(0, count, KERNEL_SLICE_BLOCKS):
            piece = array[start : start + KERNEL_SLICE_BLOCKS]
            size = int(piece.size)
            set_index = (piece & np.uint64(self._set_mask)).astype(np.int32)
            result = simulate_batch(
                piece,
                set_index,
                self._set_mask,
                self.config.associativity,
                self.config.policy,
                self._kernel_seed_stacks(set_index),
            )
            growth = self._kernel_apply_state(result.final_stacks.items(), self._clock)
            piece_hits = result.hits
            hit_count = int(np.count_nonzero(piece_hits))
            self.stats.accesses += size
            self.stats.hits += hit_count
            self.stats.misses += size - hit_count
            self.stats.evictions += (size - hit_count) - growth
            self._clock += size
            hits[start : start + size] = piece_hits
        return hits

    def _kernel_seed_stacks(self, set_index: np.ndarray) -> dict:
        """Kernel-facing state: blocks of each touched set, MRU/newest first.

        Stamps are unique clock values, so sorting by stamp descending
        recovers the recency (LRU) or fill (FIFO) order the kernel's
        stacks encode.  For small geometries every non-empty set is
        offered (the kernel ignores rows absent from the batch); large
        ones pay one :func:`numpy.unique` to seed only the touched sets.
        """
        if self.config.num_sets <= KERNEL_SEED_SCAN_SETS:
            touched = range(self.config.num_sets)
        else:
            touched = np.unique(set_index).tolist()
        initial = {}
        for index in touched:
            cache_set = self._sets[index]
            if cache_set:
                initial[index] = sorted(cache_set, key=cache_set.get, reverse=True)
        return initial

    def _kernel_apply_state(self, stack_items, clock_start: int) -> int:
        """Write kernel result stacks back into the per-set stamp dicts.

        ``stack_items`` yields ``(set_index, [(block, last_position), ...])``
        with positions relative to this cache's batch (``-1`` = untouched,
        keep the old stamp).  Returns the total occupancy growth, which
        turns the batch's miss count into its eviction count.
        """
        growth = 0
        for index, stack in stack_items:
            cache_set = self._sets[index]
            rebuilt = {}
            for block, last in reversed(stack):
                rebuilt[block] = clock_start + last + 1 if last >= 0 else cache_set[block]
            growth += len(rebuilt) - len(cache_set)
            cache_set.clear()
            cache_set.update(rebuilt)
        return growth

    # -- internals ------------------------------------------------------------------
    def _evict(self, cache_set: dict) -> int:
        if self.config.policy == "random":
            victim = list(cache_set)[int(self._rng.integers(len(cache_set)))]
        else:
            victim = min(cache_set, key=cache_set.get)
        del cache_set[victim]
        self.stats.evictions += 1
        return victim

    # -- introspection ---------------------------------------------------------------
    def resident_blocks(self) -> set:
        """Return the set of block addresses currently cached."""
        resident = set()
        for cache_set in self._sets:
            resident.update(cache_set)
        return resident

    def contains_block(self, block: int) -> bool:
        """Return True when ``block`` is resident (does not update LRU state)."""
        block = int(block)
        return block in self._sets[block & self._set_mask]

    def dirty_blocks(self) -> set:
        """Return the set of block addresses currently dirty."""
        dirty = set()
        for dirty_set in self._dirty:
            dirty.update(dirty_set)
        return dirty

    def flush(self) -> None:
        """Invalidate every block and reset the internal clock (stats kept)."""
        for cache_set in self._sets:
            cache_set.clear()
        for dirty_set in self._dirty:
            dirty_set.clear()
        self._dirty_block_count = 0
        self._clock = 0

    def reset(self) -> None:
        """Flush the cache and clear the statistics."""
        self.flush()
        self.stats = CacheStats()


def access_batches(caches, block_batches, workers: int = 1, executor=None) -> List[np.ndarray]:
    """Batch-access several *independent* caches in one fused kernel call.

    The set-parallel kernel amortises its per-time-step cost over every
    simulated set, so independent caches — the filter's L1I and L1D pair,
    per-core filter caches — simulate fastest when their sets share one
    row space and march together.  Each cache's counters, stamps, resident
    blocks and hit mask come out exactly as if ``cache.access_batch(blocks)``
    had been called per cache (the fallback this function takes whenever a
    cache is ineligible for the kernel: RANDOM replacement, dirty blocks,
    direct-mapped or single-set geometry, or a tiny total batch).

    With ``workers > 1`` (or an explicit ``executor``) each fused slice is
    additionally sharded across executor workers by row index —
    :func:`repro.core.kernels.simulate_batch_sharded` — which on the
    process executor puts the simulation on real cores.  Results stay
    bit-identical to the serial call for every strategy.

    Args:
        caches: The :class:`SetAssociativeCache` instances to access.
        block_batches: One block-address iterable per cache, in the same
            order.
        workers: Kernel shard count (``0``/``None`` = one per CPU) for
            executors created here; ``1`` keeps the serial inline path.
        executor: Strategy name, live executor to borrow, or ``None`` for
            the environment/auto default.

    Returns:
        One boolean hit mask per cache, aligned with its input order.

    Example:
        >>> config = CacheConfig(num_sets=4, associativity=2)
        >>> pair = [SetAssociativeCache(config), SetAssociativeCache(config)]
        >>> import numpy as np
        >>> masks = access_batches(pair, [np.array([1, 1], dtype=np.uint64),
        ...                               np.array([2], dtype=np.uint64)])
        >>> [mask.tolist() for mask in masks]
        [[False, True], [False]]
    """
    caches = list(caches)
    arrays = [_as_block_array(batch) for batch in block_batches]
    if len(caches) != len(arrays):
        raise ConfigurationError(
            f"got {len(caches)} caches but {len(arrays)} block batches"
        )
    total = sum(int(array.size) for array in arrays)
    fusable = (
        len(caches) >= 2
        and total >= KERNEL_MIN_BATCH
        and all(
            cache.config.policy == "lru"
            and cache.config.associativity >= 2
            and cache.config.num_sets >= 2
            and not cache._dirty_block_count
            for cache in caches
        )
    )
    if not fusable:
        return [cache.access_batch(array) for cache, array in zip(caches, arrays)]
    row_bases: List[int] = []
    base = 0
    for cache in caches:
        row_bases.append(base)
        base += cache.config.num_sets
    associativities = {cache.config.associativity for cache in caches}
    if len(associativities) == 1:
        ways = caches[0].config.associativity
    else:
        ways = np.concatenate(
            [
                np.full(cache.config.num_sets, cache.config.associativity, dtype=np.int64)
                for cache in caches
            ]
        )
    set_mask = max(cache._set_mask for cache in caches)
    # march in bounded joint slices: each cache's replacement state carries
    # from one slice to the next, so the result is identical to one shot
    # while the kernel's scratch matrices stay slice-sized
    from contextlib import nullcontext

    from repro.core.executors import executor_kind, executor_scope, resolve_workers

    inline = (
        executor is None and resolve_workers(workers) <= 1 and executor_kind(None) == "auto"
    )
    # resolve the executor once so every slice shares one pool instead of
    # paying a pool start-up per KERNEL_SLICE_BLOCKS slice
    scope = nullcontext(None) if inline else executor_scope(executor, workers)
    masks = [np.empty(int(array.size), dtype=bool) for array in arrays]
    with scope as engine:
        for start in range(0, max(int(array.size) for array in arrays), KERNEL_SLICE_BLOCKS):
            pieces = [array[start : start + KERNEL_SLICE_BLOCKS] for array in arrays]
            slice_hits = _fused_kernel_slice(caches, pieces, row_bases, ways, set_mask, engine)
            for mask, piece_hits in zip(masks, slice_hits):
                mask[start : start + piece_hits.size] = piece_hits
    return masks


def _fused_kernel_slice(caches, pieces, row_bases, ways, set_mask, engine=None) -> List[np.ndarray]:
    """One fused kernel pass over aligned per-cache batch slices.

    With a live ``engine`` the slice is sharded across its workers by row
    index (:func:`repro.core.kernels.simulate_batch_sharded`); without one
    the plain single-process kernel runs — both produce identical results.
    """
    from repro.core.kernels import simulate_batch, simulate_batch_sharded

    offsets: List[int] = []
    offset = 0
    for piece in pieces:
        offsets.append(offset)
        offset += int(piece.size)
    set_indices = [
        (piece & np.uint64(cache._set_mask)).astype(np.int32)
        for cache, piece in zip(caches, pieces)
    ]
    rows = np.concatenate(
        [
            set_index + row_base
            for set_index, row_base in zip(set_indices, row_bases)
        ]
    )
    blocks = np.concatenate(pieces)
    initial = {}
    for cache, set_index, row_base in zip(caches, set_indices, row_bases):
        for index, stack in cache._kernel_seed_stacks(set_index).items():
            initial[index + row_base] = stack
    if engine is None:
        result = simulate_batch(blocks, rows, set_mask, ways, "lru", initial)
    else:
        result = simulate_batch_sharded(
            blocks, rows, set_mask, ways, "lru", initial, executor=engine
        )
    # one pass over the touched rows, routed to their owning lane
    from bisect import bisect_right

    lane_items: List[List] = [[] for _ in caches]
    for rid, stack in result.final_stacks.items():
        lane = bisect_right(row_bases, rid) - 1
        lane_items[lane].append(
            (
                rid - row_bases[lane],
                [
                    (block, last - offsets[lane] if last >= 0 else -1)
                    for block, last in stack
                ],
            )
        )
    slice_hits: List[np.ndarray] = []
    for lane, (cache, piece) in enumerate(zip(caches, pieces)):
        count = int(piece.size)
        lane_hits = result.hits[offsets[lane] : offsets[lane] + count]
        growth = cache._kernel_apply_state(lane_items[lane], cache._clock)
        hit_count = int(np.count_nonzero(lane_hits))
        cache.stats.accesses += count
        cache.stats.hits += hit_count
        cache.stats.misses += count - hit_count
        cache.stats.evictions += (count - hit_count) - growth
        cache._clock += count
        slice_hits.append(lane_hits)
    return slice_hits
