"""Set-associative cache simulator.

This is the substrate the paper relies on in two places:

* the *cache filter* that turns a full reference stream into a
  cache-filtered address trace (Section 4.2 uses 32 KB, 4-way, 64-byte
  blocks, LRU for both the L1 instruction and L1 data cache), and
* the cache configurations simulated from exact and lossy traces to check
  that miss ratios are preserved (Figure 3).

The simulator models tags only (no data), which is all that is needed to
count hits and misses and to emit the miss address stream.  Replacement
policies: LRU (the paper's policy), FIFO and RANDOM are provided so the
ablation benches can vary the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CacheConfig", "CacheStats", "SetAssociativeCache"]

_POLICIES = ("lru", "fifo", "random")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Attributes:
        num_sets: Number of cache sets (power of two).
        associativity: Ways per set (>= 1).
        block_bytes: Cache block (line) size in bytes (power of two).
        policy: Replacement policy, one of ``"lru"``, ``"fifo"``, ``"random"``.
        name: Optional label used in reports (e.g. ``"L1D"``).
    """

    num_sets: int
    associativity: int
    block_bytes: int = 64
    policy: str = "lru"
    name: str = ""

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(f"num_sets must be a power of two, got {self.num_sets}")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if not _is_power_of_two(self.block_bytes):
            raise ConfigurationError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.policy not in _POLICIES:
            raise ConfigurationError(f"unknown replacement policy {self.policy!r}")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the cache in bytes."""
        return self.num_sets * self.associativity * self.block_bytes

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks (tags) the cache can hold."""
        return self.num_sets * self.associativity

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        associativity: int,
        block_bytes: int = 64,
        policy: str = "lru",
        name: str = "",
    ) -> "CacheConfig":
        """Build a config from a capacity instead of a set count.

        This matches how the paper describes its filter caches ("capacity of
        32 Kbytes and ... 4-way set-associative").
        """
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError(
                f"capacity {capacity_bytes} is not divisible into {associativity}-way sets"
            )
        return cls(
            num_sets=blocks // associativity,
            associativity=associativity,
            block_bytes=block_bytes,
            policy=policy,
            name=name,
        )


@dataclass
class CacheStats:
    """Hit/miss counters accumulated by a :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed (0.0 when nothing was accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two counters (used when merging I and D stats)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU/FIFO/RANDOM replacement.

    The cache operates on *block addresses* internally.  :meth:`access`
    takes byte addresses (like a real cache port) while
    :meth:`access_block` takes block addresses directly, which is what the
    trace-driven simulations in Figure 3 use (the trace already stores block
    addresses).
    """

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # One dict per set mapping block address -> monotonically increasing
        # stamp.  For LRU the stamp is updated on every touch, for FIFO only
        # on fill, so the victim (min stamp) implements either policy.
        self._sets: List[dict] = [dict() for _ in range(config.num_sets)]
        # Dirty blocks per set (written blocks that will cause a write-back
        # when evicted); parallel to ``_sets`` and always a subset of it.
        self._dirty: List[set] = [set() for _ in range(config.num_sets)]
        self._clock = 0
        self._rng = np.random.default_rng(seed)

    # -- access paths ---------------------------------------------------------------
    def access(self, byte_address: int) -> bool:
        """Access a byte address; returns ``True`` on hit, ``False`` on miss."""
        return self.access_block(int(byte_address) >> self._set_shift)

    def access_block(self, block: int) -> bool:
        """Access a block address; returns ``True`` on hit, ``False`` on miss."""
        hit, _ = self.access_block_rw(block, is_write=False)
        return hit

    def access_block_rw(self, block: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a block, optionally as a write (write-allocate, write-back).

        Returns ``(hit, writeback_block)`` where ``writeback_block`` is the
        address of the dirty block evicted by this access, or ``None`` when
        no write-back happened.  This is what the paper's cache filter needs
        to emit write-back records tagged in the spare address bits.
        """
        block = int(block)
        config = self.config
        index = block & self._set_mask
        cache_set = self._sets[index]
        dirty_set = self._dirty[index]
        self.stats.accesses += 1
        self._clock += 1
        if block in cache_set:
            self.stats.hits += 1
            if config.policy == "lru":
                cache_set[block] = self._clock
            if is_write:
                dirty_set.add(block)
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= config.associativity:
            victim = self._evict(cache_set)
            if victim in dirty_set:
                dirty_set.discard(victim)
                self.stats.writebacks += 1
                writeback = victim
        cache_set[block] = self._clock
        if is_write:
            dirty_set.add(block)
        return False, writeback

    def access_trace(self, blocks: Iterable[int]) -> CacheStats:
        """Access every block address in ``blocks`` and return the stats."""
        for block in blocks:
            self.access_block(int(block))
        return self.stats

    def miss_stream(self, blocks: Iterable[int]) -> np.ndarray:
        """Return the block addresses that miss, in access order.

        This is the "cache filter" operation: the output is exactly the
        cache-filtered trace the paper's compressor consumes.
        """
        misses: List[int] = []
        for block in blocks:
            if not self.access_block(int(block)):
                misses.append(int(block))
        return np.array(misses, dtype=np.uint64)

    # -- internals ------------------------------------------------------------------
    def _evict(self, cache_set: dict) -> int:
        if self.config.policy == "random":
            victim = list(cache_set)[int(self._rng.integers(len(cache_set)))]
        else:
            victim = min(cache_set, key=cache_set.get)
        del cache_set[victim]
        self.stats.evictions += 1
        return victim

    # -- introspection ---------------------------------------------------------------
    def resident_blocks(self) -> set:
        """Return the set of block addresses currently cached."""
        resident = set()
        for cache_set in self._sets:
            resident.update(cache_set)
        return resident

    def contains_block(self, block: int) -> bool:
        """Return True when ``block`` is resident (does not update LRU state)."""
        block = int(block)
        return block in self._sets[block & self._set_mask]

    def dirty_blocks(self) -> set:
        """Return the set of block addresses currently dirty."""
        dirty = set()
        for dirty_set in self._dirty:
            dirty.update(dirty_set)
        return dirty

    def flush(self) -> None:
        """Invalidate every block and reset the internal clock (stats kept)."""
        for cache_set in self._sets:
            cache_set.clear()
        for dirty_set in self._dirty:
            dirty_set.clear()
        self._clock = 0

    def reset(self) -> None:
        """Flush the cache and clear the statistics."""
        self.flush()
        self.stats = CacheStats()
